//! Equivalence guarantees of the sharded trainer (`bns_core::parallel`).
//!
//! Two contracts, matching the `Determinism` switch:
//!
//! 1. **Bit-exact**: a 1-thread `ParallelTrainer` in `BitExact` mode must
//!    reproduce the serial engine's run *exactly* — same stats, same
//!    per-epoch probe losses, same final rankings, bitwise-equal scores.
//! 2. **Statistical**: multi-thread hogwild training must reach final
//!    ranking quality within tolerance of the serial engine on the
//!    synthetic dataset — hogwild write races perturb individual updates
//!    but must not degrade convergence. (Tolerances unchanged by the
//!    fused-kernel PR: both engines share `bns_model::kernel`, so the
//!    serial/hogwild comparison re-pinned itself with the new summation
//!    order.)

use bns::core::parallel::{ParallelConfig, ParallelTrainer};
use bns::core::{build_sampler, train, NoopObserver, SamplerConfig, TrainConfig};
use bns::data::synthetic::{generate, SyntheticConfig};
use bns::data::{split_random, Dataset, SplitConfig};
use bns::eval::evaluate_ranking;
use bns::model::{MatrixFactorization, Scorer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n_users: u32, n_items: u32, interactions: usize, seed: u64) -> Dataset {
    let cfg = SyntheticConfig {
        n_users,
        n_items,
        target_interactions: interactions,
        seed,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEA5E);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    Dataset::new("parallel-equivalence", train_set, test_set).expect("valid dataset")
}

fn model(seed: u64, d: &Dataset) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(seed);
    MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut rng).expect("valid model")
}

#[test]
fn one_thread_bit_exact_reproduces_serial_trainer() {
    let d = dataset(40, 80, 1_200, 3);
    let cfg = TrainConfig::paper_mf(5, 77);
    for sampler_cfg in [
        SamplerConfig::Rns,
        SamplerConfig::Bns {
            config: bns::core::BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        },
    ] {
        let mut serial = model(9, &d);
        let mut s = build_sampler(&sampler_cfg, &d, None).expect("valid sampler");
        let serial_stats =
            train(&mut serial, &d, s.as_mut(), &cfg, &mut NoopObserver).expect("serial run");

        let mut parallel = model(9, &d);
        let trainer = ParallelTrainer::new(cfg, ParallelConfig::bit_exact()).expect("valid config");
        let parallel_stats = trainer
            .train(&mut parallel, &d, &sampler_cfg, None, &mut NoopObserver)
            .expect("bit-exact run");

        let name = sampler_cfg.display_name();
        assert_eq!(serial_stats.triples, parallel_stats.triples, "{name}");
        assert_eq!(serial_stats.skipped, parallel_stats.skipped, "{name}");
        assert_eq!(
            serial_stats.mean_info_per_epoch, parallel_stats.mean_info_per_epoch,
            "{name}: per-epoch info curves must be identical"
        );
        assert_eq!(
            serial_stats.posterior_per_epoch, parallel_stats.posterior_per_epoch,
            "{name}: posterior sufficient statistics must be identical"
        );
        for u in 0..d.n_users() {
            for i in 0..d.n_items() {
                assert_eq!(
                    serial.score(u, i).to_bits(),
                    parallel.score(u, i).to_bits(),
                    "{name}: score({u}, {i}) diverged"
                );
            }
        }
    }
}

#[test]
fn hogwild_matches_serial_final_quality_within_tolerance() {
    // Statistical equivalence on the synthetic dataset: hogwild at 4
    // shards must land within tolerance of the serial engine's final
    // NDCG@10. Seeds differ per engine only through shard derivation, so
    // the comparison is run-to-run noise + hogwild races, which the
    // epoch budget comfortably dominates.
    let d = dataset(60, 100, 2_400, 11);
    let cfg = TrainConfig::paper_mf(25, 5);

    let mut serial = model(1, &d);
    let mut s = build_sampler(&SamplerConfig::Rns, &d, None).expect("valid sampler");
    train(&mut serial, &d, s.as_mut(), &cfg, &mut NoopObserver).expect("serial run");
    let serial_report = evaluate_ranking(&serial, &d, &[10], 2);
    let serial_ndcg = serial_report.rows[0].ndcg;

    let mut hog = model(1, &d);
    let trainer = ParallelTrainer::new(cfg, ParallelConfig::hogwild(4)).expect("valid config");
    let stats = trainer
        .train(&mut hog, &d, &SamplerConfig::Rns, None, &mut NoopObserver)
        .expect("hogwild run");
    assert_eq!(stats.triples, cfg.epochs * d.train().len());
    let hog_report = evaluate_ranking(&hog, &d, &[10], 2);
    let hog_ndcg = hog_report.rows[0].ndcg;

    // The serial baseline must have learned something non-trivial for the
    // comparison to have teeth.
    assert!(
        serial_ndcg > 0.05,
        "serial baseline failed to learn: NDCG@10 = {serial_ndcg}"
    );
    assert!(
        hog_ndcg > 0.7 * serial_ndcg,
        "hogwild NDCG@10 {hog_ndcg} fell below tolerance of serial {serial_ndcg}"
    );
}
