//! Property-based tests over the core invariants, spanning crates.
//!
//! Each property encodes a law from the paper or a structural invariant of
//! a substrate: Eq. (15)'s range/monotonicity, Eq. (31)/(32) equivalence,
//! Proposition 0.1, CSR round-trips, split partitioning, metric bounds and
//! top-k correctness.

use bns::core::bns::risk::{conditional_risk, selection_value};
use bns::core::bns::unbias::unbias;
use bns::data::serialize::{decode_interactions, encode_interactions};
use bns::data::{split_random, Interactions, SplitConfig};
use bns::eval::{ndcg_at_k, precision_at_k, recall_at_k, top_k_masked};
use bns::model::loss::{bpr_log_likelihood, info, sigmoid};
use bns::stats::dist::Continuous;
use bns::stats::{Ecdf, Normal, Welford};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // ---------- Eq. (15): the unbias posterior ----------

    #[test]
    fn unbias_is_a_probability(f in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        let u = unbias(f, p);
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn unbias_monotone_decreasing_in_f(
        f1 in 0.0f64..=1.0,
        f2 in 0.0f64..=1.0,
        p in 0.01f64..=0.99,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(unbias(lo, p) + 1e-12 >= unbias(hi, p));
    }

    #[test]
    fn unbias_monotone_decreasing_in_prior(
        f in 0.01f64..=0.99,
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(unbias(f, lo) + 1e-12 >= unbias(f, hi));
    }

    #[test]
    fn unbias_complement_symmetry(f in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        // Swapping F ↔ 1−F and P ↔ 1−P flips the posterior.
        let a = unbias(f, p);
        let b = unbias(1.0 - f, 1.0 - p);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    // ---------- Eq. (31)/(32): sampling risk ----------

    #[test]
    fn risk_forms_are_identical(
        info_v in 0.0f64..=1.0,
        unb in 0.0f64..=1.0,
        lambda in 0.0f64..=50.0,
    ) {
        let a = conditional_risk(info_v, unb, lambda);
        let b = selection_value(info_v, unb, lambda);
        prop_assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn risk_bounds(info_v in 0.0f64..=1.0, unb in 0.0f64..=1.0, lambda in 0.0f64..=50.0) {
        // R ∈ [−λ·info, +info].
        let r = conditional_risk(info_v, unb, lambda);
        prop_assert!(r <= info_v + 1e-12);
        prop_assert!(r >= -lambda * info_v - 1e-12);
    }

    // ---------- loss functions ----------

    #[test]
    fn sigmoid_in_unit_interval_and_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let (sa, sb) = (sigmoid(a), sigmoid(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn info_is_one_minus_sigmoid(pos in -20.0f32..20.0, neg in -20.0f32..20.0) {
        let i = info(pos, neg);
        prop_assert!((i - (1.0 - sigmoid(pos - neg))).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&i));
    }

    #[test]
    fn bpr_ll_is_nonpositive(pos in -20.0f32..20.0, neg in -20.0f32..20.0) {
        prop_assert!(bpr_log_likelihood(pos, neg) <= 1e-6);
    }

    // ---------- stats substrate ----------

    #[test]
    fn ecdf_is_monotone_step_function(mut xs in prop::collection::vec(-100.0f64..100.0, 1..60)) {
        let e = Ecdf::new(&xs).unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert!((e.eval(xs[xs.len() - 1]) - 1.0).abs() < 1e-12);
        prop_assert!(e.eval(xs[0] - 1.0) == 0.0);
    }

    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6);
        prop_assert!((w.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_monotone_and_bounded(mu in -5.0f64..5.0, sigma in 0.1f64..5.0, x in -20.0f64..20.0) {
        let n = Normal::new(mu, sigma).unwrap();
        let c = n.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(n.cdf(x + 0.5) >= c);
        prop_assert!(n.pdf(x) >= 0.0);
    }

    // ---------- data substrate ----------

    #[test]
    fn interactions_round_trip_serialization(
        pairs in prop::collection::vec((0u32..20, 0u32..30), 0..200),
    ) {
        let x = Interactions::from_pairs(20, 30, &pairs).unwrap();
        let decoded = decode_interactions(&encode_interactions(&x)).unwrap();
        prop_assert_eq!(x, decoded);
    }

    #[test]
    fn split_is_partition_with_train_guarantee(
        pairs in prop::collection::vec((0u32..15, 0u32..25), 1..300),
        seed in 0u64..1000,
    ) {
        let all = Interactions::from_pairs(15, 25, &pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = split_random(&all, SplitConfig::default(), &mut rng).unwrap();
        prop_assert_eq!(train.len() + test.len(), all.len());
        for (u, i) in test.iter_pairs() {
            prop_assert!(all.contains(u, i));
            prop_assert!(!train.contains(u, i));
        }
        for u in 0..15u32 {
            if all.degree(u) > 0 {
                prop_assert!(train.degree(u) >= 1, "user {} lost all train items", u);
            }
        }
    }

    // ---------- evaluation substrate ----------

    #[test]
    fn topk_matches_sort_reference(
        scores in prop::collection::vec(-100.0f32..100.0, 1..80),
        k in 1usize..20,
    ) {
        let got = top_k_masked(&scores, &[], k);
        let mut reference: Vec<(f32, u32)> =
            scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
        reference.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<u32> =
            reference.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn metric_bounds_and_recall_monotonicity(
        ranked_len in 1usize..40,
        relevant in prop::collection::btree_set(0u32..60, 1..20),
    ) {
        let ranked: Vec<u32> = (0..ranked_len as u32).collect();
        let relevant: Vec<u32> = relevant.into_iter().collect();
        let mut prev_recall = 0.0;
        for k in 1..=ranked_len {
            let p = precision_at_k(&ranked, &relevant, k);
            let r = recall_at_k(&ranked, &relevant, k);
            let n = ndcg_at_k(&ranked, &relevant, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&n));
            prop_assert!(r + 1e-12 >= prev_recall, "recall decreased with k");
            prev_recall = r;
        }
    }
}
