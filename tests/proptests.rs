//! Property-based tests over the core invariants, spanning crates.
//!
//! Each property encodes a law from the paper or a structural invariant of
//! a substrate: Eq. (15)'s range/monotonicity, Eq. (31)/(32) equivalence,
//! Proposition 0.1, CSR round-trips, split partitioning, metric bounds and
//! top-k correctness.

use bns::core::bns::risk::{conditional_risk, selection_value};
use bns::core::bns::unbias::unbias;
use bns::core::bns::{fused_ecdf_counts, EcdfScratch, EcdfStrategy};
use bns::data::serialize::{decode_interactions, encode_interactions};
use bns::data::{split_random, Interactions, SplitConfig};
use bns::eval::{ndcg_at_k, precision_at_k, recall_at_k, top_k_masked};
use bns::model::loss::{bpr_log_likelihood, info, sigmoid};
use bns::model::scorer::FixedScorer;
use bns::model::{kernel, Scorer};
use bns::stats::dist::Continuous;
use bns::stats::{Ecdf, Normal, Welford};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // ---------- Eq. (15): the unbias posterior ----------

    #[test]
    fn unbias_is_a_probability(f in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        let u = unbias(f, p);
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn unbias_monotone_decreasing_in_f(
        f1 in 0.0f64..=1.0,
        f2 in 0.0f64..=1.0,
        p in 0.01f64..=0.99,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(unbias(lo, p) + 1e-12 >= unbias(hi, p));
    }

    #[test]
    fn unbias_monotone_decreasing_in_prior(
        f in 0.01f64..=0.99,
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(unbias(f, lo) + 1e-12 >= unbias(f, hi));
    }

    #[test]
    fn unbias_complement_symmetry(f in 0.0f64..=1.0, p in 0.0f64..=1.0) {
        // Swapping F ↔ 1−F and P ↔ 1−P flips the posterior.
        let a = unbias(f, p);
        let b = unbias(1.0 - f, 1.0 - p);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    // ---------- Eq. (31)/(32): sampling risk ----------

    #[test]
    fn risk_forms_are_identical(
        info_v in 0.0f64..=1.0,
        unb in 0.0f64..=1.0,
        lambda in 0.0f64..=50.0,
    ) {
        let a = conditional_risk(info_v, unb, lambda);
        let b = selection_value(info_v, unb, lambda);
        prop_assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn risk_bounds(info_v in 0.0f64..=1.0, unb in 0.0f64..=1.0, lambda in 0.0f64..=50.0) {
        // R ∈ [−λ·info, +info].
        let r = conditional_risk(info_v, unb, lambda);
        prop_assert!(r <= info_v + 1e-12);
        prop_assert!(r >= -lambda * info_v - 1e-12);
    }

    // ---------- loss functions ----------

    #[test]
    fn sigmoid_in_unit_interval_and_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let (sa, sb) = (sigmoid(a), sigmoid(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn info_is_one_minus_sigmoid(pos in -20.0f32..20.0, neg in -20.0f32..20.0) {
        let i = info(pos, neg);
        prop_assert!((i - (1.0 - sigmoid(pos - neg))).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&i));
    }

    #[test]
    fn bpr_ll_is_nonpositive(pos in -20.0f32..20.0, neg in -20.0f32..20.0) {
        prop_assert!(bpr_log_likelihood(pos, neg) <= 1e-6);
    }

    // ---------- stats substrate ----------

    #[test]
    fn ecdf_is_monotone_step_function(mut xs in prop::collection::vec(-100.0f64..100.0, 1..60)) {
        let e = Ecdf::new(&xs).unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert!((e.eval(xs[xs.len() - 1]) - 1.0).abs() < 1e-12);
        prop_assert!(e.eval(xs[0] - 1.0) == 0.0);
    }

    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6);
        prop_assert!((w.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_monotone_and_bounded(mu in -5.0f64..5.0, sigma in 0.1f64..5.0, x in -20.0f64..20.0) {
        let n = Normal::new(mu, sigma).unwrap();
        let c = n.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(n.cdf(x + 0.5) >= c);
        prop_assert!(n.pdf(x) >= 0.0);
    }

    // ---------- data substrate ----------

    #[test]
    fn interactions_round_trip_serialization(
        pairs in prop::collection::vec((0u32..20, 0u32..30), 0..200),
    ) {
        let x = Interactions::from_pairs(20, 30, &pairs).unwrap();
        let decoded = decode_interactions(&encode_interactions(&x)).unwrap();
        prop_assert_eq!(x, decoded);
    }

    #[test]
    fn split_is_partition_with_train_guarantee(
        pairs in prop::collection::vec((0u32..15, 0u32..25), 1..300),
        seed in 0u64..1000,
    ) {
        let all = Interactions::from_pairs(15, 25, &pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = split_random(&all, SplitConfig::default(), &mut rng).unwrap();
        prop_assert_eq!(train.len() + test.len(), all.len());
        for (u, i) in test.iter_pairs() {
            prop_assert!(all.contains(u, i));
            prop_assert!(!train.contains(u, i));
        }
        for u in 0..15u32 {
            if all.degree(u) > 0 {
                prop_assert!(train.degree(u) >= 1, "user {} lost all train items", u);
            }
        }
    }

    // ---------- evaluation substrate ----------

    #[test]
    fn topk_matches_sort_reference(
        scores in prop::collection::vec(-100.0f32..100.0, 1..80),
        k in 1usize..20,
    ) {
        let got = top_k_masked(&scores, &[], k);
        let mut reference: Vec<(f32, u32)> =
            scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
        reference.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<u32> =
            reference.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, expected);
    }

    // ---------- fused scoring kernels ----------
    //
    // The justification for re-pinning the bit-exact trainer traces: the
    // unrolled kernels change the summation order, but stay within 1e-5
    // relative error of an f64 scalar reference, and every entry point
    // (dot / gemv / gather) agrees bitwise with every other.

    #[test]
    fn kernel_dot_close_to_f64_reference(
        a in prop::collection::vec(-10.0f32..10.0, 0..200),
        b_seed in 0u64..1_000,
    ) {
        let b: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b_seed;
                ((h % 2_000) as f32 / 1_000.0) - 1.0
            })
            .collect();
        let got = kernel::dot(&a, &b) as f64;
        let reference: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        let tol = 1e-5 * reference.abs().max(1.0);
        prop_assert!((got - reference).abs() <= tol, "{got} vs {reference}");
    }

    #[test]
    fn kernel_gemv_and_gather_agree_with_dot_bitwise(
        user in prop::collection::vec(-5.0f32..5.0, 1..64),
        n_rows in 1usize..30,
        table_seed in 0u64..1_000,
    ) {
        let d = user.len();
        let table: Vec<f32> = (0..d * n_rows)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ table_seed;
                ((h % 2_000) as f32 / 1_000.0) - 1.0
            })
            .collect();
        let mut full = vec![0.0f32; n_rows];
        kernel::gemv(&user, &table, &mut full);
        let ids: Vec<u32> = (0..n_rows as u32).rev().collect();
        let mut gathered = vec![0.0f32; n_rows];
        kernel::gather_dots(&user, &table, &ids, &mut gathered);
        for (k, &i) in ids.iter().enumerate() {
            let direct = kernel::dot(&user, &table[i as usize * d..(i as usize + 1) * d]);
            prop_assert_eq!(full[i as usize].to_bits(), direct.to_bits());
            prop_assert_eq!(gathered[k].to_bits(), direct.to_bits());
        }
    }

    // ---------- the fused single-pass ECDF ----------

    /// The fused blocked pass must be *count-for-count identical* to m
    /// independent `EcdfStrategy::Exact` scans of a precomputed rating
    /// vector, for arbitrary score tables, positive masks and candidate
    /// (threshold) sets — the correctness contract of the fused BNS draw.
    #[test]
    fn fused_ecdf_counts_match_independent_exact_scans(
        scores in prop::collection::vec(-10.0f32..10.0, 1..400),
        positives in prop::collection::btree_set(0u32..400, 0..40),
        thresholds in prop::collection::vec(0usize..400, 1..8),
    ) {
        let n_items = scores.len() as u32;
        let positives: Vec<u32> = positives.into_iter().filter(|&p| p < n_items).collect();
        let pairs: Vec<(u32, u32)> = positives.iter().map(|&p| (0, p)).collect();
        let train = Interactions::from_pairs(1, n_items, &pairs).unwrap();
        let scorer = FixedScorer::new(1, n_items, scores.clone());
        // Thresholds are item scores (as in the real draw) — including,
        // deliberately, scores of masked positives.
        let thresholds: Vec<f32> = thresholds
            .into_iter()
            .map(|t| scores[t % scores.len()])
            .collect();

        let mut counts = Vec::new();
        let mut scratch = EcdfScratch::default();
        let scanned = fused_ecdf_counts(
            EcdfStrategy::Exact,
            &scorer,
            &train,
            0,
            &thresholds,
            &mut counts,
            &mut scratch,
        );

        // Reference: the pre-fused path — one full rating vector, then one
        // independent scan per threshold with positive correction.
        let mut user_scores = vec![0.0f32; n_items as usize];
        scorer.score_all(0, &mut user_scores);
        let n_neg = n_items as usize - positives.len();
        prop_assert_eq!(scanned, n_neg);
        for (c, &x) in thresholds.iter().enumerate() {
            let all_le = user_scores.iter().filter(|&&s| s <= x).count();
            let pos_le = positives
                .iter()
                .filter(|&&p| user_scores[p as usize] <= x)
                .count();
            // Each threshold must match the independent scan exactly.
            prop_assert_eq!(counts[c] as usize, all_le - pos_le);
        }
    }

    #[test]
    fn fused_subsample_matches_strided_reference(
        scores in prop::collection::vec(-5.0f32..5.0, 2..300),
        k in 1usize..64,
        t_idx in 0usize..300,
    ) {
        let n_items = scores.len() as u32;
        let train = Interactions::from_pairs(1, n_items, &[(0, 0)]).unwrap();
        let scorer = FixedScorer::new(1, n_items, scores.clone());
        let x = scores[t_idx % scores.len()];

        let mut counts = Vec::new();
        let mut scratch = EcdfScratch::default();
        let scanned = fused_ecdf_counts(
            EcdfStrategy::Subsample(k),
            &scorer,
            &train,
            0,
            &[x],
            &mut counts,
            &mut scratch,
        );

        if k >= scores.len() {
            // Degenerates to the exact scan over I⁻ᵤ.
            prop_assert_eq!(scanned, scores.len() - 1);
        } else {
            // The original strided reference over the full score vector.
            let stride = scores.len().div_ceil(k);
            let mut c = 0usize;
            let mut n = 0usize;
            let mut idx = 0usize;
            while idx < scores.len() {
                if scores[idx] <= x {
                    c += 1;
                }
                n += 1;
                idx += stride;
            }
            prop_assert_eq!(scanned, n);
            prop_assert_eq!(counts[0] as usize, c);
        }
    }

    #[test]
    fn metric_bounds_and_recall_monotonicity(
        ranked_len in 1usize..40,
        relevant in prop::collection::btree_set(0u32..60, 1..20),
    ) {
        let ranked: Vec<u32> = (0..ranked_len as u32).collect();
        let relevant: Vec<u32> = relevant.into_iter().collect();
        let mut prev_recall = 0.0;
        for k in 1..=ranked_len {
            let p = precision_at_k(&ranked, &relevant, k);
            let r = recall_at_k(&ranked, &relevant, k);
            let n = ndcg_at_k(&ranked, &relevant, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&n));
            prop_assert!(r + 1e-12 >= prev_recall, "recall decreased with k");
            prev_recall = r;
        }
    }
}
