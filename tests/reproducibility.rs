//! Determinism guarantees: identical seeds produce identical pipelines,
//! different seeds genuinely differ.

use bns::core::{build_sampler, train, NoopObserver, SamplerConfig, TrainConfig};
use bns::data::synthetic::{generate, SyntheticConfig};
use bns::data::{split_random, Dataset, SplitConfig};
use bns::eval::{evaluate_ranking, RankingReport};
use bns::model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pipeline(data_seed: u64, train_seed: u64, sampler: &SamplerConfig) -> RankingReport {
    let cfg = SyntheticConfig {
        n_users: 60,
        n_items: 120,
        target_interactions: 2_400,
        seed: data_seed,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(data_seed ^ 0xF00D);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    let dataset = Dataset::new("repro", train_set, test_set).expect("valid dataset");

    let mut model_rng = StdRng::seed_from_u64(train_seed);
    let mut model =
        MatrixFactorization::new(dataset.n_users(), dataset.n_items(), 8, 0.1, &mut model_rng)
            .expect("valid model");
    let mut s = build_sampler(sampler, &dataset, None).expect("valid sampler");
    train(
        &mut model,
        &dataset,
        s.as_mut(),
        &TrainConfig::paper_mf(10, train_seed),
        &mut NoopObserver,
    )
    .expect("training succeeds");
    evaluate_ranking(&model, &dataset, &[5, 10], 2)
}

#[test]
fn identical_seeds_identical_metrics() {
    for sampler in [
        SamplerConfig::Rns,
        SamplerConfig::Dns { m: 5 },
        SamplerConfig::Bns {
            config: bns::core::BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        },
    ] {
        let a = pipeline(1, 2, &sampler);
        let b = pipeline(1, 2, &sampler);
        assert_eq!(a, b, "{} is not reproducible", sampler.display_name());
    }
}

#[test]
fn different_training_seed_changes_outcome() {
    let a = pipeline(1, 2, &SamplerConfig::Rns);
    let b = pipeline(1, 3, &SamplerConfig::Rns);
    assert_ne!(a, b, "different training seeds produced identical metrics");
}

#[test]
fn different_data_seed_changes_outcome() {
    let a = pipeline(1, 2, &SamplerConfig::Rns);
    let b = pipeline(9, 2, &SamplerConfig::Rns);
    assert_ne!(a, b, "different data seeds produced identical metrics");
}

#[test]
fn parallel_evaluation_is_deterministic() {
    // Thread count must not change the averaged metrics.
    let cfg = SyntheticConfig {
        n_users: 50,
        n_items: 100,
        target_interactions: 2_000,
        seed: 77,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(77);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    let dataset = Dataset::new("par", train_set, test_set).expect("valid dataset");
    let mut model_rng = StdRng::seed_from_u64(5);
    let model =
        MatrixFactorization::new(dataset.n_users(), dataset.n_items(), 8, 0.1, &mut model_rng)
            .expect("valid model");
    let r1 = evaluate_ranking(&model, &dataset, &[5, 10, 20], 1);
    let r8 = evaluate_ranking(&model, &dataset, &[5, 10, 20], 8);
    for (a, b) in r1.rows.iter().zip(&r8.rows) {
        assert!((a.precision - b.precision).abs() < 1e-12);
        assert!((a.recall - b.recall).abs() < 1e-12);
        assert!((a.ndcg - b.ndcg).abs() < 1e-12);
    }
}
