//! The `ScoreAccess` contract, verified with a counting scorer.
//!
//! Wraps a real MF model in a scorer that counts every `score` /
//! `score_all` / `score_items` call the *trainer and samplers* make (the
//! model's own internal scoring — e.g. inside its BPR update — is not
//! routed through the wrapper and is deliberately excluded). The
//! acceptance bar of the fused-kernel PR:
//!
//! * `ScoreAccess::None` (RNS, PNS): **zero** scoring work of any kind;
//! * `ScoreAccess::Candidates` (DNS, SRNS, BNS): gathers only — never a
//!   full rating vector;
//! * `ScoreAccess::Full` (AOBPR): exactly one `score_all` per pair.

use bns::core::{build_sampler, train, NoopObserver, SamplerConfig, TrainConfig};
use bns::data::{Dataset, Interactions};
use bns::model::{MatrixFactorization, PairwiseModel, Scorer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;

struct CountingModel {
    inner: MatrixFactorization,
    score_calls: Cell<usize>,
    score_all_calls: Cell<usize>,
    score_items_calls: Cell<usize>,
    items_gathered: Cell<usize>,
}

impl CountingModel {
    fn new(inner: MatrixFactorization) -> Self {
        Self {
            inner,
            score_calls: Cell::new(0),
            score_all_calls: Cell::new(0),
            score_items_calls: Cell::new(0),
            items_gathered: Cell::new(0),
        }
    }

    fn total_scoring_calls(&self) -> usize {
        self.score_calls.get() + self.score_all_calls.get() + self.score_items_calls.get()
    }
}

impl Scorer for CountingModel {
    fn n_users(&self) -> u32 {
        self.inner.n_users()
    }

    fn n_items(&self) -> u32 {
        self.inner.n_items()
    }

    fn score(&self, u: u32, i: u32) -> f32 {
        self.score_calls.set(self.score_calls.get() + 1);
        self.inner.score(u, i)
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        self.score_all_calls.set(self.score_all_calls.get() + 1);
        self.inner.score_all(u, out);
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        self.score_items_calls.set(self.score_items_calls.get() + 1);
        self.items_gathered
            .set(self.items_gathered.get() + items.len());
        self.inner.score_items(u, items, out);
    }
}

impl PairwiseModel for CountingModel {
    fn begin_epoch(&mut self, epoch: usize) {
        self.inner.begin_epoch(epoch);
    }

    fn begin_batch(&mut self) {
        self.inner.begin_batch();
    }

    fn accumulate_triple(&mut self, u: u32, pos: u32, neg: u32, lr: f32, reg: f32) -> f32 {
        self.inner.accumulate_triple(u, pos, neg, lr, reg)
    }

    fn end_batch(&mut self, lr: f32, reg: f32) {
        self.inner.end_batch(lr, reg);
    }
}

fn dataset() -> Dataset {
    let mut pairs = Vec::new();
    for u in 0..10u32 {
        for k in 0..4u32 {
            pairs.push((u, (u * 5 + k * 3) % 24));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let train_set = Interactions::from_pairs(10, 24, &pairs).unwrap();
    let test_set = Interactions::from_pairs(
        10,
        24,
        &(0..10u32)
            .map(|u| (u, (u * 5 + 1) % 24))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    Dataset::new("score-access", train_set, test_set).unwrap()
}

const EPOCHS: usize = 3;

fn run(sampler_cfg: &SamplerConfig) -> CountingModel {
    let d = dataset();
    let mut rng = StdRng::seed_from_u64(5);
    let inner = MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut rng).unwrap();
    let mut model = CountingModel::new(inner);
    let mut sampler = build_sampler(sampler_cfg, &d, None).unwrap();
    let stats = train(
        &mut model,
        &d,
        sampler.as_mut(),
        &TrainConfig::paper_mf(EPOCHS, 11),
        &mut NoopObserver,
    )
    .unwrap();
    assert_eq!(
        stats.triples,
        EPOCHS * d.train().len(),
        "sanity: all pairs drawn"
    );
    model
}

#[test]
fn rns_and_pns_do_zero_scoring_work() {
    for cfg in [SamplerConfig::Rns, SamplerConfig::Pns] {
        let model = run(&cfg);
        assert_eq!(
            model.total_scoring_calls(),
            0,
            "{}: ScoreAccess::None must trigger no scoring at all",
            cfg.display_name()
        );
    }
}

#[test]
fn candidate_samplers_gather_but_never_score_the_catalog() {
    let pairs = dataset().train().len();
    for cfg in [
        SamplerConfig::Dns { m: 5 },
        SamplerConfig::Srns {
            s1: 10,
            s2: 3,
            alpha: 1.0,
        },
        SamplerConfig::Bns {
            config: bns::core::BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        },
    ] {
        let model = run(&cfg);
        assert_eq!(
            model.score_all_calls.get(),
            0,
            "{}: Candidates access must never materialize a rating vector",
            cfg.display_name()
        );
        assert!(
            model.score_items_calls.get() > 0,
            "{}: expected gather-dot calls",
            cfg.display_name()
        );
        // DNS/SRNS gather only O(m)/O(S₁) items per draw — far fewer than
        // one catalog pass per pair would touch.
        if matches!(cfg, SamplerConfig::Dns { .. } | SamplerConfig::Srns { .. }) {
            let catalog_budget = EPOCHS * pairs * 24;
            assert!(
                model.items_gathered.get() < catalog_budget / 2,
                "{}: gathered {} items, suspiciously close to full scans",
                cfg.display_name(),
                model.items_gathered.get()
            );
        }
    }
}

#[test]
fn aobpr_scores_the_full_vector_once_per_pair() {
    let model = run(&SamplerConfig::Aobpr { lambda_frac: 0.05 });
    assert_eq!(
        model.score_all_calls.get(),
        EPOCHS * dataset().train().len(),
        "Full access: exactly one rating vector per training pair"
    );
    assert_eq!(model.score_items_calls.get(), 0);
}

#[test]
fn bns_warmup_epochs_do_zero_scoring_work() {
    let d = dataset();
    let mut rng = StdRng::seed_from_u64(6);
    let inner = MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut rng).unwrap();
    let mut model = CountingModel::new(inner);
    // All epochs inside the BNS-2 warm start → uniform draws only.
    let cfg = SamplerConfig::Bns {
        config: bns::core::BnsConfig {
            warmup_epochs: EPOCHS,
            ..bns::core::BnsConfig::default()
        },
        prior: bns::core::PriorKind::Popularity,
    };
    let mut sampler = build_sampler(&cfg, &d, None).unwrap();
    train(
        &mut model,
        &d,
        sampler.as_mut(),
        &TrainConfig::paper_mf(EPOCHS, 13),
        &mut NoopObserver,
    )
    .unwrap();
    assert_eq!(model.total_scoring_calls(), 0);
}
