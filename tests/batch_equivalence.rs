//! Batched-vs-serial sampler equivalence — the contract of
//! `NegativeSampler::sample_batch`.
//!
//! Every built-in sampler specializes `sample_batch` (grouped gathers,
//! shared ECDF passes, per-user score caches). The contract that makes the
//! batched trainer bit-exact at `batch_size = 1, k = 1` — and trustworthy
//! at any batch size — is that a specialized batch fill returns **exactly**
//! the draws of `k` looped `sample` calls per pair, consuming the RNG in
//! the identical sequence. These tests run the looped reference and the
//! batched path side by side from equal seeds, across batch sizes, k
//! values and sampler states (multiple epochs, stateful SRNS memory,
//! saturated users), and additionally confirm RNG-stream alignment by
//! comparing the next raw RNG output after the fact.

use bns::core::{build_sampler, BnsConfig, NegativeSampler, SampleContext, SamplerConfig};
use bns::data::{Dataset, Interactions};
use bns::model::{MatrixFactorization, Scorer, TripleBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// 8 users × 24 items; user 7 is saturated (owns every item) so the
/// skip/pop-row path is exercised; the rest have ~6 positives each so
/// shuffled batches repeat users.
fn dataset() -> Dataset {
    let mut pairs = Vec::new();
    for u in 0..7u32 {
        for t in 0..6u32 {
            pairs.push((u, (u * 5 + t * 4) % 24));
        }
    }
    for i in 0..24u32 {
        pairs.push((7, i));
    }
    pairs.sort_unstable();
    pairs.dedup();
    let train = Interactions::from_pairs(8, 24, &pairs).unwrap();
    let test = Interactions::from_pairs(
        8,
        24,
        &(0..7u32).map(|u| (u, (u * 5 + 2) % 24)).collect::<Vec<_>>(),
    )
    .unwrap();
    Dataset::new("batch-eq", train, test).unwrap()
}

/// The looped reference: exactly the default `sample_batch` — per pair,
/// refresh the rating vector when the sampler wants Full access, then `k`
/// `sample` calls.
#[allow(clippy::too_many_arguments)]
fn reference_fill(
    sampler: &mut dyn NegativeSampler,
    model: &MatrixFactorization,
    d: &Dataset,
    pairs: &[(u32, u32)],
    k: usize,
    epoch: usize,
    rng: &mut StdRng,
    out: &mut TripleBatch,
) {
    out.begin_fill(k);
    let mut user_scores: Vec<f32> = Vec::new();
    for &(u, pos) in pairs {
        let full = sampler.score_access() == bns::core::ScoreAccess::Full;
        if full {
            user_scores.resize(d.n_items() as usize, 0.0);
            model.score_all(u, &mut user_scores);
        }
        let ctx = SampleContext {
            scorer: model,
            train: d.train(),
            popularity: d.popularity(),
            user_scores: if full { &user_scores } else { &[] },
            epoch,
        };
        let row = out.push_row(u, pos);
        let mut filled = 0usize;
        while filled < k {
            match sampler.sample(u, pos, &ctx, rng) {
                Some(j) => {
                    row[filled] = j;
                    filled += 1;
                }
                None => break,
            }
        }
        if filled < k {
            out.pop_row();
        }
    }
}

/// Runs the looped reference and the batched path from equal seeds over
/// two epochs of the full pair list and asserts identical draws and RNG
/// consumption.
fn check_equivalence(cfg: &SamplerConfig, batch_size: usize, k: usize, seed: u64) {
    let d = dataset();
    let mut rng_model = StdRng::seed_from_u64(3);
    let model =
        MatrixFactorization::new(d.n_users(), d.n_items(), 16, 0.1, &mut rng_model).unwrap();
    let mut s_ref = build_sampler(cfg, &d, None).unwrap();
    let mut s_bat = build_sampler(cfg, &d, None).unwrap();
    let mut rng_ref = StdRng::seed_from_u64(seed);
    let mut rng_bat = StdRng::seed_from_u64(seed);
    let pairs: Vec<(u32, u32)> = d.train().iter_pairs().collect();
    let mut out_ref = TripleBatch::new();
    let mut out_bat = TripleBatch::new();

    for epoch in 0..2 {
        s_ref.on_epoch_start(epoch);
        s_bat.on_epoch_start(epoch);
        for chunk in pairs.chunks(batch_size) {
            reference_fill(
                s_ref.as_mut(),
                &model,
                &d,
                chunk,
                k,
                epoch,
                &mut rng_ref,
                &mut out_ref,
            );
            {
                let ctx = SampleContext {
                    scorer: &model,
                    train: d.train(),
                    popularity: d.popularity(),
                    user_scores: &[],
                    epoch,
                };
                s_bat.sample_batch(chunk, k, &ctx, &mut rng_bat, &mut out_bat);
            }
            assert_eq!(
                out_ref.len(),
                out_bat.len(),
                "{}: row count diverged (batch_size={batch_size}, k={k}, epoch={epoch})",
                s_ref.name()
            );
            assert_eq!(out_ref.users(), out_bat.users(), "{}: users", s_ref.name());
            assert_eq!(out_ref.pos(), out_bat.pos(), "{}: positives", s_ref.name());
            assert_eq!(
                out_ref.negs(),
                out_bat.negs(),
                "{}: draws diverged (batch_size={batch_size}, k={k}, epoch={epoch})",
                s_ref.name()
            );
        }
    }
    // Both paths must have consumed the RNG identically.
    assert_eq!(
        rng_ref.next_u64(),
        rng_bat.next_u64(),
        "{}: RNG streams desynchronized (batch_size={batch_size}, k={k})",
        s_ref.name()
    );
}

/// Every sampler configuration whose batch path has its own code shape.
fn lineup() -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::Rns,
        SamplerConfig::Pns,
        SamplerConfig::Aobpr { lambda_frac: 0.05 },
        SamplerConfig::Dns { m: 4 },
        SamplerConfig::Srns {
            s1: 8,
            s2: 3,
            alpha: 1.0,
        },
        SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        },
        SamplerConfig::Bns {
            config: BnsConfig {
                criterion: bns::core::Criterion::PosteriorMax,
                ..BnsConfig::default()
            },
            prior: bns::core::PriorKind::Popularity,
        },
        // The ExploreExploit coin is drawn per slot after the candidate
        // set — the interleaving the batched phase 1 must reproduce.
        SamplerConfig::Bns {
            config: BnsConfig {
                criterion: bns::core::Criterion::ExploreExploit { epsilon: 0.35 },
                ..BnsConfig::default()
            },
            prior: bns::core::PriorKind::Popularity,
        },
        // Exhaustive h* candidates (no candidate RNG at all).
        SamplerConfig::Bns {
            config: BnsConfig {
                m: usize::MAX,
                ..BnsConfig::default()
            },
            prior: bns::core::PriorKind::Popularity,
        },
        // Subsampled Eq. 16 scan.
        SamplerConfig::Bns {
            config: BnsConfig {
                ecdf: bns::core::bns::EcdfStrategy::Subsample(10),
                ..BnsConfig::default()
            },
            prior: bns::core::PriorKind::Popularity,
        },
        // BNS-2 warm start: epoch 0 is uniform bulk draws, epoch 1 fused.
        SamplerConfig::Bns {
            config: BnsConfig {
                warmup_epochs: 1,
                ..BnsConfig::default()
            },
            prior: bns::core::PriorKind::Popularity,
        },
    ]
}

#[test]
fn every_sampler_batched_equals_looped_across_batch_sizes() {
    for cfg in lineup() {
        for batch_size in [1usize, 3, 7, 32] {
            check_equivalence(&cfg, batch_size, 1, 11);
        }
    }
}

#[test]
fn every_sampler_batched_equals_looped_multi_negative() {
    for cfg in lineup() {
        for k in [2usize, 4] {
            check_equivalence(&cfg, 8, k, 23);
        }
    }
}

proptest! {
    // Arbitrary (batch_size, k, seed) grouping never changes the draws for
    // the model-aware samplers with the most intricate batch paths.
    #[test]
    fn dns_batched_equals_looped(batch_size in 1usize..16, k in 1usize..4, seed in 0u64..500) {
        check_equivalence(&SamplerConfig::Dns { m: 4 }, batch_size, k, seed);
    }

    #[test]
    fn srns_batched_equals_looped(batch_size in 1usize..16, k in 1usize..4, seed in 0u64..500) {
        let cfg = SamplerConfig::Srns { s1: 8, s2: 3, alpha: 1.0 };
        check_equivalence(&cfg, batch_size, k, seed);
    }

    #[test]
    fn bns_batched_equals_looped(batch_size in 1usize..16, k in 1usize..4, seed in 0u64..500) {
        let cfg = SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        };
        check_equivalence(&cfg, batch_size, k, seed);
    }

    #[test]
    fn aobpr_batched_equals_looped(batch_size in 1usize..16, k in 1usize..4, seed in 0u64..500) {
        check_equivalence(&SamplerConfig::Aobpr { lambda_frac: 0.05 }, batch_size, k, seed);
    }
}
