//! Scale-invariance suite for the streamed synthetic generator.
//!
//! The streamed generator (`generate_streamed`) and the in-RAM generator
//! (`generate`) share one code path by construction, so "streamed ≡
//! in-RAM" alone would not catch a bug in that shared path. This suite
//! therefore checks three layers:
//!
//! 1. **Bit-exactness across entry points** — `generate` and
//!    `generate_streamed` produce identical CSR matrices in both
//!    emission regimes.
//! 2. **Bit-exactness against an independent dense reference** — a
//!    from-scratch reimplementation of the planted model in the exact
//!    regime: materialized factor tables, full-catalog utilities, a full
//!    sort instead of the partial selection, and the pair-based builder
//!    instead of `RowStreamBuilder`. Any divergence in hashing, utility
//!    assembly, top-k selection, or CSR assembly shows up as a
//!    non-equal matrix.
//! 3. **Scale invariance of the planted structure** — the properties the
//!    generator exists to plant (Zipf popularity skew, log-normal
//!    activity dispersion, occupation-group consumption shift) must hold
//!    with comparable magnitudes when the catalog grows, because the
//!    whole point of the streamed path is running the *same* distribution
//!    at sizes where the dense reference is unaffordable.

use bns_data::occupation::OccupationItemCounts;
use bns_data::synthetic::{
    derive_occupations, generate, generate_streamed, pair_gumbel, popularity_logits, user_activity,
    EmissionMode, SyntheticConfig,
};
use bns_data::Interactions;

fn config(n_users: u32, n_items: u32, emission: EmissionMode) -> SyntheticConfig {
    SyntheticConfig {
        n_users,
        n_items,
        target_interactions: n_users as usize * 20,
        emission,
        seed: 4242,
        ..SyntheticConfig::default()
    }
}

#[test]
fn streamed_equals_in_ram_in_both_regimes() {
    for emission in [
        EmissionMode::Exact,
        EmissionMode::Pooled { oversample: 4 },
        EmissionMode::Auto,
    ] {
        let cfg = config(150, 320, emission);
        let in_ram = generate(&cfg).expect("in-RAM generation");
        let streamed = generate_streamed(&cfg).expect("streamed generation");
        assert_eq!(
            in_ram.interactions, streamed,
            "streamed CSR diverged from in-RAM CSR under {emission:?}"
        );
    }
}

/// The independent reference: full-catalog f64 utilities from the
/// materialized factor tables, full descending sort, pair-based builder.
/// Shares only the hash primitives (`pair_gumbel`, the factor tables, the
/// popularity ranks) with the production path — those ARE the definition
/// of the planted model.
fn dense_reference(cfg: &SyntheticConfig) -> Interactions {
    let ds = generate(cfg).expect("in-RAM generation");
    let pop = popularity_logits(cfg);
    let d = cfg.latent_dim;
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for u in 0..cfg.n_users {
        let k = user_activity(cfg, u) as usize;
        let wu = &ds.user_factors[u as usize * d..(u as usize + 1) * d];
        let mut utils: Vec<(f64, u32)> = (0..cfg.n_items)
            .map(|i| {
                let hi = &ds.item_factors[i as usize * d..(i as usize + 1) * d];
                let dot: f32 = wu.iter().zip(hi).map(|(a, b)| a * b).sum();
                let util = cfg.latent_weight * dot as f64
                    + cfg.popularity_weight * pop[i as usize]
                    + pair_gumbel(cfg.seed, u, i);
                (util, i)
            })
            .collect();
        utils.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite utilities"));
        let mut row: Vec<u32> = utils[..k.min(utils.len())]
            .iter()
            .map(|&(_, i)| i)
            .collect();
        row.sort_unstable();
        pairs.extend(row.into_iter().map(|i| (u, i)));
    }
    Interactions::from_pairs(cfg.n_users, cfg.n_items, &pairs).expect("reference CSR")
}

#[test]
fn exact_regime_matches_the_independent_dense_reference_bit_exactly() {
    for (n_users, n_items, seed) in [(120, 260, 4242u64), (90, 500, 7)] {
        let cfg = SyntheticConfig {
            seed,
            ..config(n_users, n_items, EmissionMode::Exact)
        };
        let reference = dense_reference(&cfg);
        let streamed = generate_streamed(&cfg).expect("streamed generation");
        assert_eq!(
            reference, streamed,
            "streamed output diverged from the dense reference at {n_users}x{n_items}"
        );
    }
}

/// Least-squares slope of ln(count) over ln(rank) for the items that
/// received any interactions — the empirical Zipf exponent.
fn zipf_slope(x: &Interactions) -> f64 {
    let mut counts = x.item_counts();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(r, &c)| (((r + 1) as f64).ln(), f64::from(c).ln()))
        .collect();
    let n = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let cov: f64 = pts.iter().map(|&(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = pts.iter().map(|&(x, _)| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Standard deviation of ln(degree) over users — the planted log-normal
/// activity dispersion (≈ `activity_sigma` before clamping).
fn activity_dispersion(x: &Interactions) -> f64 {
    let logs: Vec<f64> = (0..x.n_users())
        .map(|u| (x.degree(u).max(1) as f64).ln())
        .collect();
    let n = logs.len() as f64;
    let mean = logs.iter().sum::<f64>() / n;
    (logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n).sqrt()
}

/// Leave-one-out occupation consumption shift: for each interaction
/// `(u, i)`, how much of item `i`'s *other* consumption sits inside
/// `u`'s own group, beyond the group's population share. Positive iff
/// users systematically consume what their own group over-consumes; the
/// leave-one-out correction removes the mechanical self-counting bias
/// (a user's own interaction always sits in their own group).
fn occupation_shift(cfg: &SyntheticConfig, x: &Interactions) -> f64 {
    let occ = derive_occupations(cfg);
    let counts = OccupationItemCounts::build(x, &occ);
    let totals = x.item_counts();
    let mut group_users = vec![0usize; occ.n_groups() as usize];
    for u in 0..x.n_users() {
        group_users[occ.of(u) as usize] += 1;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for u in 0..x.n_users() {
        let g = occ.of(u);
        let share = group_users[g as usize] as f64 / x.n_users() as f64;
        for &i in x.items_of(u) {
            let others = f64::from(totals[i as usize]) - 1.0;
            if others <= 0.0 {
                continue;
            }
            let own_others = f64::from(counts.count(g, i)) - 1.0;
            total += (own_others - share * others) / others;
            n += 1;
        }
    }
    total / n as f64
}

#[test]
fn popularity_skew_is_scale_invariant() {
    let small = generate_streamed(&config(400, 800, EmissionMode::Auto)).unwrap();
    let large = generate_streamed(&config(1600, 3200, EmissionMode::Auto)).unwrap();
    let (s, l) = (zipf_slope(&small), zipf_slope(&large));
    assert!(
        s < -0.3,
        "small-scale popularity not Zipf-skewed: slope {s}"
    );
    assert!(
        l < -0.3,
        "large-scale popularity not Zipf-skewed: slope {l}"
    );
    assert!(
        (s - l).abs() < 0.4,
        "Zipf slope drifted across scales: small {s}, large {l}"
    );
}

#[test]
fn activity_dispersion_is_scale_invariant() {
    let small = generate_streamed(&config(400, 800, EmissionMode::Auto)).unwrap();
    let large = generate_streamed(&config(1600, 3200, EmissionMode::Auto)).unwrap();
    let (s, l) = (activity_dispersion(&small), activity_dispersion(&large));
    assert!(s > 0.2, "small-scale activity not dispersed: {s}");
    assert!(l > 0.2, "large-scale activity not dispersed: {l}");
    assert!(
        (s - l).abs() < 0.15,
        "activity dispersion drifted across scales: small {s}, large {l}"
    );
}

#[test]
fn occupation_shift_is_planted_and_scale_invariant() {
    let cfg_small = config(400, 800, EmissionMode::Auto);
    let cfg_large = config(1600, 3200, EmissionMode::Auto);
    let small = generate_streamed(&cfg_small).unwrap();
    let large = generate_streamed(&cfg_large).unwrap();
    let (s, l) = (
        occupation_shift(&cfg_small, &small),
        occupation_shift(&cfg_large, &large),
    );
    assert!(s > 0.01, "no occupation signal at small scale: shift {s}");
    assert!(l > 0.01, "no occupation signal at large scale: shift {l}");
    assert!(
        (s - l).abs() < 0.1,
        "occupation shift drifted across scales: small {s}, large {l}"
    );

    // Contrast: with the occupation blend off, the shift collapses.
    let cfg_off = SyntheticConfig {
        occupation_mix: 0.0,
        ..cfg_small.clone()
    };
    let off = generate_streamed(&cfg_off).unwrap();
    let baseline = occupation_shift(&cfg_off, &off);
    assert!(
        baseline < s / 2.0,
        "shift without occupation mixing ({baseline}) not clearly below planted ({s})"
    );
}

#[test]
fn pooled_regime_preserves_the_planted_structure_at_scale() {
    // The pooled (importance-corrected) emission is what actually runs at
    // million scale; its outputs must carry the same planted structure as
    // the exact regime, not just "some" structure.
    let cfg_exact = config(500, 1000, EmissionMode::Exact);
    let cfg_pooled = config(500, 1000, EmissionMode::Pooled { oversample: 4 });
    let exact = generate_streamed(&cfg_exact).unwrap();
    let pooled = generate_streamed(&cfg_pooled).unwrap();

    let (zs_e, zs_p) = (zipf_slope(&exact), zipf_slope(&pooled));
    assert!(
        (zs_e - zs_p).abs() < 0.5,
        "pooled Zipf slope {zs_p} far from exact {zs_e}"
    );
    let (ad_e, ad_p) = (activity_dispersion(&exact), activity_dispersion(&pooled));
    assert!(
        (ad_e - ad_p).abs() < 0.1,
        "pooled activity dispersion {ad_p} far from exact {ad_e}"
    );
    let (os_e, os_p) = (
        occupation_shift(&cfg_exact, &exact),
        occupation_shift(&cfg_pooled, &pooled),
    );
    assert!(
        os_p > os_e / 3.0,
        "pooled occupation shift {os_p} lost the planted signal (exact {os_e})"
    );
}
