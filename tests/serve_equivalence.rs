//! Serving-path equivalence: for every trainable scorer, the frozen
//! artifact served by `bns-serve` is indistinguishable from the live
//! in-memory model — identical `evaluate_ranking` reports (the metrics are
//! a pure function of scores, so equality implies bitwise score identity
//! up to ranking) and identical top-k lists under both mask settings,
//! whatever the engine's thread count or cache configuration.

use bns::core::{build_sampler, train, NoopObserver, SamplerConfig, TrainConfig};
use bns::data::synthetic::generate;
use bns::data::{split_random, Dataset, DatasetPreset, Scale, SplitConfig};
use bns::eval::{evaluate_ranking, top_k_masked};
use bns::model::{HogwildMf, LightGcn, MatrixFactorization, Scorer, SnapshotScorer};
use bns::serve::{ModelArtifact, QueryEngine, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let gen_cfg = DatasetPreset::Ml100k.config(Scale::Fraction(0.05), 9);
    let synthetic = generate(&gen_cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng).unwrap();
    Dataset::new("serve-equivalence", train_set, test_set).unwrap()
}

fn trained_mf(dataset: &Dataset) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(3);
    let mut model =
        MatrixFactorization::new(dataset.n_users(), dataset.n_items(), 16, 0.1, &mut rng).unwrap();
    let mut sampler = build_sampler(&SamplerConfig::Dns { m: 3 }, dataset, None).unwrap();
    let tc = TrainConfig::paper_mf(4, 11);
    train(
        &mut model,
        dataset,
        sampler.as_mut(),
        &tc,
        &mut NoopObserver,
    )
    .unwrap();
    model
}

fn assert_engine_matches_live<S: SnapshotScorer + Sync>(live: &S, dataset: &Dataset) {
    let artifact = ModelArtifact::freeze(live, dataset.train()).unwrap();
    let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();

    // Metrics carry over exactly.
    let live_report = evaluate_ranking(live, dataset, &[5, 10, 20], 2);
    let frozen_report = evaluate_ranking(&reloaded, dataset, &[5, 10, 20], 2);
    assert_eq!(live_report, frozen_report);

    // Per-user rankings carry over exactly, cached and uncached, at any
    // thread count.
    let plain = QueryEngine::new(reloaded.clone());
    let cached = QueryEngine::with_cache(reloaded, 64);
    let mut scores = vec![0.0f32; dataset.n_items() as usize];
    let users = dataset.evaluable_users();
    let requests: Vec<Request> = users
        .iter()
        .chain(users.iter()) // repeats exercise cache hits
        .map(|&u| Request {
            user: u,
            k: 10,
            exclude_seen: true,
        })
        .collect();
    let a = plain.serve(&requests, 1).unwrap();
    let b = plain.serve(&requests, 3).unwrap();
    let c = cached.serve(&requests, 3).unwrap();
    assert!(cached.cache_hits() > 0);
    for (i, &u) in users.iter().enumerate() {
        live.score_all(u, &mut scores);
        let expected = top_k_masked(&scores, dataset.train().items_of(u), 10);
        assert_eq!(a.results[i].items, expected, "1-thread, user {u}");
        assert_eq!(b.results[i].items, expected, "3-thread, user {u}");
        assert_eq!(c.results[i].items, expected, "cached, user {u}");
        // Second occurrence of the same user (cache-hit path).
        assert_eq!(c.results[users.len() + i].items, expected);
    }
}

#[test]
fn frozen_mf_serves_identically_to_live_model() {
    let d = dataset();
    let model = trained_mf(&d);
    assert_engine_matches_live(&model, &d);
}

#[test]
fn frozen_hogwild_snapshot_serves_identically() {
    let d = dataset();
    let model = HogwildMf::from_mf(&trained_mf(&d));
    assert_engine_matches_live(&model, &d);
}

#[test]
fn frozen_lightgcn_serves_identically_to_live_model() {
    let d = dataset();
    let mut rng = StdRng::seed_from_u64(13);
    let mut model = LightGcn::new(d.train(), 16, 1, 0.1, &mut rng).unwrap();
    let mut sampler = build_sampler(&SamplerConfig::Rns, &d, None).unwrap();
    let tc = TrainConfig::paper_lightgcn(3, 32, 17);
    train(&mut model, &d, sampler.as_mut(), &tc, &mut NoopObserver).unwrap();
    assert!(!model.is_stale(), "training must leave the model refreshed");
    assert_engine_matches_live(&model, &d);
}

#[test]
fn artifact_survives_swap_with_no_stale_answers() {
    // Swap a retrained artifact into a cached engine mid-traffic: every
    // post-swap answer must come from the new model.
    let d = dataset();
    let first = trained_mf(&d);
    let mut rng = StdRng::seed_from_u64(77);
    let second = MatrixFactorization::new(d.n_users(), d.n_items(), 16, 0.1, &mut rng).unwrap();

    let mut engine = QueryEngine::with_cache(ModelArtifact::freeze(&first, d.train()).unwrap(), 64);
    let u = d.evaluable_users()[0];
    let before = engine.top_k(u, 10, true).unwrap();
    let _cached = engine.top_k(u, 10, true).unwrap(); // now cached

    engine.swap_artifact(ModelArtifact::freeze(&second, d.train()).unwrap());
    let mut scores = vec![0.0f32; d.n_items() as usize];
    second.score_all(u, &mut scores);
    let expected = top_k_masked(&scores, d.train().items_of(u), 10);
    let after = engine.top_k(u, 10, true).unwrap();
    assert_eq!(after, expected, "post-swap answer must use the new model");
    assert_ne!(before, after, "trained vs untrained rankings should differ");
}
