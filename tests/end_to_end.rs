//! Cross-crate integration: full generate → split → train → evaluate
//! pipelines for every sampler and both models.

use bns::core::{build_sampler, train, NoopObserver, SamplerConfig, TrainConfig};
use bns::data::synthetic::{generate, SyntheticConfig};
use bns::data::{split_random, Dataset, Occupations, SplitConfig};
use bns::eval::evaluate_ranking;
use bns::model::{LightGcn, MatrixFactorization, Scorer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dataset(seed: u64) -> (Dataset, Occupations) {
    let cfg = SyntheticConfig {
        n_users: 80,
        n_items: 160,
        target_interactions: 3_200,
        seed,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    (
        Dataset::new("it-small", train_set, test_set).expect("valid dataset"),
        synthetic.occupations,
    )
}

#[test]
fn every_sampler_trains_mf_and_beats_untrained() {
    let (dataset, occ) = small_dataset(100);
    // Untrained baseline NDCG.
    let mut rng = StdRng::seed_from_u64(2);
    let untrained =
        MatrixFactorization::new(dataset.n_users(), dataset.n_items(), 16, 0.1, &mut rng)
            .expect("valid model");
    let base = evaluate_ranking(&untrained, &dataset, &[10], 2)
        .at(10)
        .unwrap()
        .ndcg;

    for cfg in SamplerConfig::paper_lineup() {
        let mut model_rng = StdRng::seed_from_u64(2);
        let mut model = MatrixFactorization::new(
            dataset.n_users(),
            dataset.n_items(),
            16,
            0.1,
            &mut model_rng,
        )
        .expect("valid model");
        let mut sampler = build_sampler(&cfg, &dataset, Some(&occ)).expect("valid sampler");
        let stats = train(
            &mut model,
            &dataset,
            sampler.as_mut(),
            &TrainConfig::paper_mf(25, 42),
            &mut NoopObserver,
        )
        .expect("training succeeds");
        assert!(stats.triples > 0, "{}: no triples", cfg.display_name());
        let ndcg = evaluate_ranking(&model, &dataset, &[10], 2)
            .at(10)
            .unwrap()
            .ndcg;
        assert!(
            ndcg > base,
            "{}: trained NDCG {ndcg:.4} not above untrained {base:.4}",
            cfg.display_name()
        );
    }
}

#[test]
fn lightgcn_pipeline_learns() {
    let (dataset, _) = small_dataset(200);
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = LightGcn::new(dataset.train(), 16, 1, 0.1, &mut rng).expect("valid LightGCN");
    let base = evaluate_ranking(&model, &dataset, &[10], 2)
        .at(10)
        .unwrap()
        .ndcg;
    let mut sampler = build_sampler(&SamplerConfig::Rns, &dataset, None).expect("sampler");
    train(
        &mut model,
        &dataset,
        sampler.as_mut(),
        &TrainConfig::paper_lightgcn(20, 64, 42),
        &mut NoopObserver,
    )
    .expect("training succeeds");
    let trained = evaluate_ranking(&model, &dataset, &[10], 2)
        .at(10)
        .unwrap()
        .ndcg;
    assert!(
        trained > base,
        "LightGCN did not improve: {base:.4} → {trained:.4}"
    );
}

#[test]
fn bns_beats_rns_on_planted_structure() {
    // The headline claim of the paper at integration scale: with identical
    // budgets, BNS's ranking quality is at least RNS's (strictly above on
    // the planted-structure dataset with a meaningful margin in practice).
    let (dataset, _) = small_dataset(300);
    let run_with = |cfg: &SamplerConfig| -> f64 {
        let mut model_rng = StdRng::seed_from_u64(4);
        let mut model = MatrixFactorization::new(
            dataset.n_users(),
            dataset.n_items(),
            16,
            0.1,
            &mut model_rng,
        )
        .expect("valid model");
        let mut sampler = build_sampler(cfg, &dataset, None).expect("valid sampler");
        train(
            &mut model,
            &dataset,
            sampler.as_mut(),
            &TrainConfig::paper_mf(30, 42),
            &mut NoopObserver,
        )
        .expect("training succeeds");
        evaluate_ranking(&model, &dataset, &[10], 2)
            .at(10)
            .unwrap()
            .ndcg
    };
    let rns = run_with(&SamplerConfig::Rns);
    let bns = run_with(&SamplerConfig::Bns {
        config: bns::core::BnsConfig::default(),
        prior: bns::core::PriorKind::Popularity,
    });
    assert!(
        bns > rns * 0.95,
        "BNS NDCG {bns:.4} collapsed below RNS {rns:.4}"
    );
}

#[test]
fn trained_scores_separate_fn_from_tn() {
    // Fig. 1's premise end-to-end: after training, held-out positives score
    // higher on average than never-interacted items. The separation only
    // emerges once the model has converged (the Fig. 1 reproduction shows
    // it turning positive around epoch 30–40), so train long enough and
    // with a strong planted signal.
    let cfg = SyntheticConfig {
        n_users: 80,
        n_items: 160,
        target_interactions: 3_200,
        latent_weight: 6.0,
        seed: 400,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(400 ^ 1);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    let dataset = Dataset::new("order-relation", train_set, test_set).expect("valid dataset");
    let mut model_rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        dataset.n_users(),
        dataset.n_items(),
        16,
        0.1,
        &mut model_rng,
    )
    .expect("valid model");
    let mut sampler = build_sampler(&SamplerConfig::Rns, &dataset, None).expect("sampler");
    train(
        &mut model,
        &dataset,
        sampler.as_mut(),
        &TrainConfig::paper_mf(80, 42),
        &mut NoopObserver,
    )
    .expect("training succeeds");

    let mut fn_sum = 0.0f64;
    let mut fn_n = 0usize;
    let mut tn_sum = 0.0f64;
    let mut tn_n = 0usize;
    for u in 0..dataset.n_users() {
        for i in 0..dataset.n_items() {
            if dataset.is_false_negative(u, i) {
                fn_sum += model.score(u, i) as f64;
                fn_n += 1;
            } else if dataset.is_true_negative(u, i) && (i % 7 == 0) {
                tn_sum += model.score(u, i) as f64;
                tn_n += 1;
            }
        }
    }
    let fn_mean = fn_sum / fn_n as f64;
    let tn_mean = tn_sum / tn_n as f64;
    assert!(
        fn_mean > tn_mean,
        "order relation violated: mean FN score {fn_mean:.4} <= mean TN {tn_mean:.4}"
    );
}
