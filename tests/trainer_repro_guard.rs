//! Reproducibility guard for the BPR trainer (Algorithm 1).
//!
//! Stronger than the pipeline-level checks in `reproducibility.rs`: two runs
//! with the same RNG seed must agree **bit-for-bit** on the full training
//! trace — every sampled `(u, i, j)` triple, every per-triple `info` value,
//! the per-epoch mean-info curve, the per-epoch BPR loss on a fixed probe
//! set, and the final top-K rankings. Any nondeterminism smuggled into the
//! sampler/trainer hot path (hash-map iteration order, thread scheduling,
//! an unseeded RNG) trips this before it can poison experiment results.
//!
//! Trace identity, not trace values: the guard compares two same-seed runs
//! of the *current* binary, so an intentional change of deterministic
//! arithmetic re-pins the trace in the same commit that makes it. The
//! fused-kernel PR did exactly that — `bns_model::kernel` replaced the
//! sequential dot with an 8-lane `mul_add` reduction (a different, still
//! fixed summation order), justified by the kernel-vs-scalar property
//! tests in `tests/proptests.rs` (≤ 1e-5 relative to an f64 reference).

use bns::core::{build_sampler, train, SamplerConfig, TrainConfig, TrainObserver};
use bns::data::synthetic::{generate, SyntheticConfig};
use bns::data::{split_random, Dataset, SplitConfig};
use bns::eval::top_k_masked;
use bns::model::loss::bpr_log_likelihood;
use bns::model::scorer::Scorer;
use bns::model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCHS: usize = 6;

/// Full bit-exact trace of one training run.
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    /// Every applied triple with its `info`, as raw bits.
    triples: Vec<(usize, u32, u32, u32, u32)>,
    /// Per-epoch BPR loss over the probe triples, as raw bits.
    epoch_probe_loss: Vec<u64>,
    /// Top-10 per probed user at the end of training.
    final_rankings: Vec<Vec<u32>>,
}

/// Observer recording the trace; probes the model at each epoch end.
struct TraceObserver<'a> {
    dataset: &'a Dataset,
    triples: Vec<(usize, u32, u32, u32, u32)>,
    epoch_probe_loss: Vec<u64>,
}

impl TraceObserver<'_> {
    /// Deterministic probe triples: each user's first train item against
    /// the first item absent from their train set.
    fn probe_loss(&self, model: &dyn Scorer) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let train = self.dataset.train();
        for u in 0..self.dataset.n_users() {
            let items = train.items_of(u);
            let Some(&pos) = items.first() else { continue };
            let Some(neg) = (0..self.dataset.n_items()).find(|j| !train.contains(u, *j)) else {
                continue;
            };
            total += f64::from(-bpr_log_likelihood(
                model.score(u, pos),
                model.score(u, neg),
            ));
            count += 1;
        }
        total / count.max(1) as f64
    }
}

impl TrainObserver for TraceObserver<'_> {
    fn on_triple(&mut self, epoch: usize, u: u32, pos: u32, neg: u32, info: f32) {
        self.triples.push((epoch, u, pos, neg, info.to_bits()));
    }

    fn on_epoch_end(&mut self, _epoch: usize, model: &dyn Scorer) {
        self.epoch_probe_loss.push(self.probe_loss(model).to_bits());
    }
}

fn dataset() -> Dataset {
    let cfg = SyntheticConfig {
        n_users: 50,
        n_items: 90,
        target_interactions: 1_500,
        seed: 77,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    Dataset::new("repro-guard", train_set, test_set).expect("valid dataset")
}

fn run(dataset: &Dataset, sampler_cfg: &SamplerConfig, seed: u64) -> Trace {
    let mut model_rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let mut model =
        MatrixFactorization::new(dataset.n_users(), dataset.n_items(), 8, 0.1, &mut model_rng)
            .expect("valid model");
    let mut sampler = build_sampler(sampler_cfg, dataset, None).expect("valid sampler");
    let mut observer = TraceObserver {
        dataset,
        triples: Vec::new(),
        epoch_probe_loss: Vec::new(),
    };
    train(
        &mut model,
        dataset,
        sampler.as_mut(),
        &TrainConfig::paper_mf(EPOCHS, seed),
        &mut observer,
    )
    .expect("training succeeds");

    let mut scores = vec![0.0f32; dataset.n_items() as usize];
    let final_rankings = (0..dataset.n_users().min(10))
        .map(|u| {
            model.score_all(u, &mut scores);
            top_k_masked(&scores, dataset.train().items_of(u), 10)
        })
        .collect();
    Trace {
        triples: observer.triples,
        epoch_probe_loss: observer.epoch_probe_loss,
        final_rankings,
    }
}

#[test]
fn same_seed_bitwise_identical_trace() {
    let d = dataset();
    for sampler in [
        SamplerConfig::Rns,
        SamplerConfig::Bns {
            config: bns::core::BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        },
    ] {
        let a = run(&d, &sampler, 12345);
        let b = run(&d, &sampler, 12345);
        assert!(!a.triples.is_empty(), "trace must not be empty");
        assert_eq!(a.epoch_probe_loss.len(), EPOCHS, "one probe loss per epoch");
        assert_eq!(
            a,
            b,
            "{} trainer trace diverged under identical seeds",
            sampler.display_name()
        );
    }
}

#[test]
fn different_seed_changes_sampled_triples() {
    // The guard must have teeth: a different seed has to change the trace,
    // otherwise the equality above would pass vacuously.
    let d = dataset();
    let a = run(&d, &SamplerConfig::Rns, 1);
    let b = run(&d, &SamplerConfig::Rns, 2);
    assert_ne!(a.triples, b.triples, "seed does not influence sampling");
}
