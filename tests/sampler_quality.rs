//! Integration tests of sampling quality: the TNR orderings the paper's
//! Fig. 4 reports, measured through the real training loop.

use bns::core::{
    build_sampler, train, BnsConfig, Criterion, PriorKind, SamplerConfig, TrainConfig,
};
use bns::data::synthetic::{generate, SyntheticConfig};
use bns::data::{split_random, Dataset, SplitConfig};
use bns::eval::QualityTracker;
use bns::model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> Dataset {
    let cfg = SyntheticConfig {
        n_users: 100,
        n_items: 200,
        target_interactions: 5_000,
        seed,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    Dataset::new("quality", train_set, test_set).expect("valid dataset")
}

fn tail_tnr(dataset: &Dataset, cfg: &SamplerConfig, epochs: usize) -> f64 {
    let mut model_rng = StdRng::seed_from_u64(7);
    let mut model = MatrixFactorization::new(
        dataset.n_users(),
        dataset.n_items(),
        16,
        0.1,
        &mut model_rng,
    )
    .expect("valid model");
    let mut sampler = build_sampler(cfg, dataset, None).expect("valid sampler");
    let mut tracker = QualityTracker::new(dataset);
    train(
        &mut model,
        dataset,
        sampler.as_mut(),
        &TrainConfig::paper_mf(epochs, 42),
        &mut tracker,
    )
    .expect("training succeeds");
    tracker.tail_tnr(epochs / 4)
}

#[test]
fn oracle_bns_approaches_perfect_tnr() {
    let d = dataset(500);
    let oracle = SamplerConfig::Bns {
        config: BnsConfig {
            criterion: Criterion::PosteriorMax,
            ..BnsConfig::default()
        },
        prior: PriorKind::Oracle {
            p_if_fn: 0.64,
            p_if_tn: 0.04,
        },
    };
    let tnr = tail_tnr(&d, &oracle, 16);
    assert!(tnr > 0.99, "oracle-prior BNS tail TNR {tnr:.4} not ≈ 1");
}

#[test]
fn posterior_criterion_beats_uniform_on_tnr() {
    let d = dataset(600);
    let bns_post = SamplerConfig::Bns {
        config: BnsConfig {
            criterion: Criterion::PosteriorMax,
            ..BnsConfig::default()
        },
        prior: PriorKind::Popularity,
    };
    let bns = tail_tnr(&d, &bns_post, 20);
    let rns = tail_tnr(&d, &SamplerConfig::Rns, 20);
    assert!(
        bns >= rns - 0.005,
        "posterior-criterion BNS TNR {bns:.4} fell below RNS {rns:.4}"
    );
}

#[test]
fn hard_negative_samplers_pay_in_tnr() {
    // The paper's Fig. 4 finding: greedy hard samplers have the worst TNR
    // once the model has learned to rank false negatives high.
    let d = dataset(700);
    let rns = tail_tnr(&d, &SamplerConfig::Rns, 24);
    let dns = tail_tnr(&d, &SamplerConfig::Dns { m: 5 }, 24);
    let aobpr = tail_tnr(&d, &SamplerConfig::Aobpr { lambda_frac: 0.05 }, 24);
    assert!(
        dns < rns && aobpr < rns,
        "hard samplers not below RNS: DNS {dns:.4}, AOBPR {aobpr:.4}, RNS {rns:.4}"
    );
}

#[test]
fn quality_tracker_sees_full_epoch_counts() {
    let d = dataset(800);
    let mut model_rng = StdRng::seed_from_u64(9);
    let mut model = MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut model_rng)
        .expect("valid model");
    let mut sampler = build_sampler(&SamplerConfig::Rns, &d, None).expect("valid sampler");
    let mut tracker = QualityTracker::new(&d);
    let stats = train(
        &mut model,
        &d,
        sampler.as_mut(),
        &TrainConfig::paper_mf(3, 42),
        &mut tracker,
    )
    .expect("training succeeds");
    let counted: usize = tracker.history().iter().map(|q| q.tn + q.fn_).sum();
    assert_eq!(counted, stats.triples);
    assert_eq!(tracker.history().len(), 3);
}
