//! Steady-state allocation audit of every sampler's `sample()` and
//! `sample_batch()` paths.
//!
//! Each sampler owns reusable scratch (AOBPR's rank buffer, SRNS's lazily
//! built per-user memories, DNS candidate/score buffers, the BNS gather +
//! fused-ECDF scratch, and every batched-draw grouping buffer). After a
//! warm-up pass that touches every user once, **no draw may allocate**: a
//! counting global allocator (this test binary only — integration tests
//! are separate binaries) asserts the heap counter is flat across
//! thousands of subsequent draws — per-pair and batched alike.
//!
//! The allocator harness itself lives in `tests/support/counting_alloc.rs`
//! and is shared with the serving audit (`crates/serve/tests/query_alloc.rs`).

use bns::core::trainer::sample_pair;
use bns::core::{build_sampler, SampleContext, SamplerConfig};
use bns::data::{Dataset, Interactions};
use bns::model::{MatrixFactorization, TripleBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

include!("support/counting_alloc.rs");

fn dataset() -> Dataset {
    let mut pairs = Vec::new();
    for u in 0..16u32 {
        for k in 0..6u32 {
            pairs.push((u, (u * 7 + k * 5) % 60));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let train_set = Interactions::from_pairs(16, 60, &pairs).unwrap();
    let test_set = Interactions::from_pairs(
        16,
        60,
        &(0..16u32)
            .map(|u| (u, (u * 7 + 2) % 60))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    Dataset::new("alloc-audit", train_set, test_set).unwrap()
}

/// The same dataset with its train CSR re-read through the mmap-backed
/// zero-copy loader — every sampler must stay allocation-free when the
/// interactions it scans live in a mapped file instead of owned `Vec`s.
fn mapped_dataset() -> Dataset {
    let d = dataset();
    let path = std::env::temp_dir().join(format!("bns_sampler_alloc_{}.bns1", std::process::id()));
    bns::data::serialize::save_interactions(d.train(), &path).unwrap();
    let train_set = bns::data::serialize::map_interactions(&path).unwrap();
    // The mapping outlives the unlink on unix; clean up eagerly.
    std::fs::remove_file(&path).ok();
    #[cfg(all(unix, target_endian = "little"))]
    assert!(
        train_set.is_mapped(),
        "mapped load fell back to owned decode"
    );
    assert_eq!(&train_set, d.train());
    Dataset::new("alloc-audit-mapped", train_set, d.test().clone()).unwrap()
}

#[test]
fn every_sampler_is_allocation_free_in_steady_state() {
    let d = dataset();
    let mut rng_model = StdRng::seed_from_u64(1);
    let model =
        MatrixFactorization::new(d.n_users(), d.n_items(), 16, 0.1, &mut rng_model).unwrap();
    let train_set = d.train();
    let popularity = d.popularity();
    let mut user_scores = vec![0.0f32; d.n_items() as usize];

    let lineup: Vec<SamplerConfig> = SamplerConfig::paper_lineup()
        .into_iter()
        .chain([
            // The exhaustive h* candidate set and the subsampled ECDF have
            // their own buffer paths; audit them too.
            SamplerConfig::Bns {
                config: bns::core::BnsConfig {
                    m: usize::MAX,
                    ..bns::core::BnsConfig::default()
                },
                prior: bns::core::PriorKind::Popularity,
            },
            SamplerConfig::Bns {
                config: bns::core::BnsConfig {
                    ecdf: bns::core::bns::EcdfStrategy::Subsample(16),
                    ..bns::core::BnsConfig::default()
                },
                prior: bns::core::PriorKind::Popularity,
            },
        ])
        .collect();

    for cfg in lineup {
        let mut sampler = build_sampler(&cfg, &d, None).unwrap();
        sampler.on_epoch_start(0);
        let mut rng = StdRng::seed_from_u64(9);

        // Warm-up: touch every user (SRNS builds its per-user memories
        // here; every reusable buffer reaches steady-state capacity).
        for round in 0..3 {
            for u in 0..d.n_users() {
                let pos = train_set.items_of(u)[round % train_set.degree(u)];
                sample_pair(
                    sampler.as_mut(),
                    &model,
                    train_set,
                    popularity,
                    &mut user_scores,
                    u,
                    pos,
                    0,
                    &mut rng,
                );
            }
        }

        let before = allocation_count();
        for step in 0..2_000u32 {
            let u = step % d.n_users();
            let pos = train_set.items_of(u)[(step as usize / 16) % train_set.degree(u)];
            sample_pair(
                sampler.as_mut(),
                &model,
                train_set,
                popularity,
                &mut user_scores,
                u,
                pos,
                0,
                &mut rng,
            );
        }
        let after = allocation_count();
        assert_eq!(
            after - before,
            0,
            "{}: {} heap allocations across 2000 steady-state draws",
            sampler.name(),
            after - before
        );
    }
}

#[test]
fn sampling_over_mapped_storage_is_allocation_free_in_steady_state() {
    let d = mapped_dataset();
    let mut rng_model = StdRng::seed_from_u64(1);
    let model =
        MatrixFactorization::new(d.n_users(), d.n_items(), 16, 0.1, &mut rng_model).unwrap();
    let train_set = d.train();
    let popularity = d.popularity();
    let mut user_scores = vec![0.0f32; d.n_items() as usize];

    for cfg in SamplerConfig::paper_lineup() {
        let mut sampler = build_sampler(&cfg, &d, None).unwrap();
        sampler.on_epoch_start(0);
        let mut rng = StdRng::seed_from_u64(9);

        for round in 0..3 {
            for u in 0..d.n_users() {
                let pos = train_set.items_of(u)[round % train_set.degree(u)];
                sample_pair(
                    sampler.as_mut(),
                    &model,
                    train_set,
                    popularity,
                    &mut user_scores,
                    u,
                    pos,
                    0,
                    &mut rng,
                );
            }
        }

        let before = allocation_count();
        for step in 0..2_000u32 {
            let u = step % d.n_users();
            let pos = train_set.items_of(u)[(step as usize / 16) % train_set.degree(u)];
            sample_pair(
                sampler.as_mut(),
                &model,
                train_set,
                popularity,
                &mut user_scores,
                u,
                pos,
                0,
                &mut rng,
            );
        }
        let after = allocation_count();
        assert_eq!(
            after - before,
            0,
            "{} over mapped storage: {} heap allocations across 2000 steady-state draws",
            sampler.name(),
            after - before
        );
    }
}

#[test]
fn batched_sampling_is_allocation_free_in_steady_state() {
    let d = dataset();
    let mut rng_model = StdRng::seed_from_u64(2);
    let model =
        MatrixFactorization::new(d.n_users(), d.n_items(), 16, 0.1, &mut rng_model).unwrap();
    let pairs: Vec<(u32, u32)> = d.train().iter_pairs().collect();

    let lineup: Vec<SamplerConfig> = SamplerConfig::paper_lineup()
        .into_iter()
        .chain([
            SamplerConfig::Bns {
                config: bns::core::BnsConfig {
                    m: usize::MAX,
                    ..bns::core::BnsConfig::default()
                },
                prior: bns::core::PriorKind::Popularity,
            },
            SamplerConfig::Bns {
                config: bns::core::BnsConfig {
                    ecdf: bns::core::bns::EcdfStrategy::Subsample(16),
                    ..bns::core::BnsConfig::default()
                },
                prior: bns::core::PriorKind::Popularity,
            },
        ])
        .collect();

    for cfg in lineup {
        for k in [1usize, 3] {
            let mut sampler = build_sampler(&cfg, &d, None).unwrap();
            sampler.on_epoch_start(0);
            let mut rng = StdRng::seed_from_u64(13);
            let mut batch = TripleBatch::new();
            let ctx = SampleContext {
                scorer: &model,
                train: d.train(),
                popularity: d.popularity(),
                user_scores: &[],
                epoch: 0,
            };

            // Warm-up: several full passes so every reusable buffer (batch
            // rows, grouped gather scratch, SRNS memories and caches)
            // reaches steady-state capacity.
            for _ in 0..3 {
                for chunk in pairs.chunks(32) {
                    sampler.sample_batch(chunk, k, &ctx, &mut rng, &mut batch);
                }
            }

            let before = allocation_count();
            for _ in 0..20 {
                for chunk in pairs.chunks(32) {
                    sampler.sample_batch(chunk, k, &ctx, &mut rng, &mut batch);
                    assert!(!batch.is_empty());
                }
            }
            let after = allocation_count();
            assert_eq!(
                after - before,
                0,
                "{} (k = {k}): {} heap allocations across steady-state batched draws",
                sampler.name(),
                after - before
            );
        }
    }
}
