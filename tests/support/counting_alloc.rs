// Shared counting-allocator harness for the steady-state allocation
// audits, spliced into each audit test binary with `include!` (files in
// `tests/support/` are not themselves test targets, and `//!` inner docs
// would be illegal at the include site). One source of truth:
// `tests/sampler_alloc.rs` at the repo root and
// `crates/serve/tests/query_alloc.rs` both use it, so an allocator-gate
// fix lands in every audit at once.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
// lint:allow(atomic-import) — the global allocator must not route through
// instrumented workspace types: a bns-sync facade call could itself
// allocate (model-check op logs) or take a schedule point, deadlocking the
// allocator. A raw relaxed counter is the only safe shape here.
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Only allocations made on a thread that opted in are counted. The
    /// libtest harness thread lazily initializes its MPMC channel context
    /// (two small allocations) at a *nondeterministic* time while parked
    /// waiting for the test thread — without this gate, that init lands
    /// inside a measured window once in a few runs and flakes the audit.
    /// Const-initialized TLS is allocation-free to access.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    let _ = TRACKING.try_with(|t| {
        if t.get() {
            // ordering: Relaxed — a statistics tally; the audits read it
            // from the same thread that increments it, and cross-thread
            // counts only need each increment to land (RMW atomicity).
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// SAFETY: every method forwards to the `System` allocator with the exact
// layout/pointer it was given, so `System`'s contract is preserved; the
// only addition is a thread-local counter bump that never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same layout contract as `System.alloc`; see impl comment.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` pass through unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: arguments pass through unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Reads the counter, opting the calling thread into tracking — the
/// audits read it immediately before the measured window, so everything
/// the test thread allocates from then on is counted.
fn allocation_count() -> usize {
    TRACKING.with(|t| t.set(true));
    // ordering: Relaxed — same-thread read of a statistics counter.
    ALLOCATIONS.load(Ordering::Relaxed)
}
