//! # bns — Bayesian Negative Sampling for Recommendation
//!
//! Facade crate re-exporting the full reproduction of
//! *"Bayesian Negative Sampling for Recommendation"* (Liu & Wang,
//! ICDE 2023 / arXiv:2204.06520):
//!
//! * [`stats`] — statistics substrate (ECDF, distributions, order statistics).
//! * [`data`] — datasets: loaders, synthetic generators, splits.
//! * [`model`] — BPR-trained MF and LightGCN recommendation models.
//! * [`core`] — the BNS sampler and all baseline samplers.
//! * [`eval`] — ranking metrics and sampling-quality trackers.
//! * [`serve`] — frozen model artifacts and the concurrent top-k query
//!   engine.
//!
//! See `examples/quickstart.rs` for an end-to-end training walkthrough and
//! `examples/serve.rs` for train → freeze → serve.

pub use bns_core as core;
pub use bns_data as data;
pub use bns_eval as eval;
pub use bns_model as model;
pub use bns_serve as serve;
pub use bns_stats as stats;
