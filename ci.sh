#!/usr/bin/env bash
# CI gate for the bns workspace. Mirrors the tier-1 verify plus hygiene:
#   build (release) → tests → fmt → clippy → benches compile.
# Runs fully offline; all dependencies are path crates (see vendor/).
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo test -q --doc --workspace --offline
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace --offline
run cargo bench --no-run --workspace --offline

echo "CI green."
