#!/usr/bin/env bash
# CI gate for the bns workspace. Mirrors the tier-1 verify plus hygiene:
#   build (release) → tests → fmt → clippy → lint → model check → benches.
# Runs fully offline; all dependencies are path crates (see vendor/), and
# --locked refuses any drift from the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline --locked
run cargo test -q --workspace --offline --locked
run cargo test -q --doc --workspace --offline --locked
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline --locked -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace --offline --locked
# Invariant linter: concurrency and hygiene rules over the whole workspace
# (raw-atomic imports, unjustified Relaxed, SeqCst ban, SAFETY comments,
# wall-clock bans, missing_docs). vendor/ and target/ are skipped by the
# walker itself. Nonzero exit on any violation fails CI here.
run cargo run --release --offline --locked -p bns-lint
# Model-check scenario suite: bns-sync's deterministic scheduler explores
# thread interleavings of the lock-free protocols. The cfg comes in via
# RUSTFLAGS, which REPLACES .cargo/config.toml's rustflags — so restate
# target-cpu=native to keep the build cache warm and codegen consistent.
RUSTFLAGS="-C target-cpu=native --cfg bns_model_check" \
    run cargo test -q -p bns-check --offline --locked
# Compiles every Criterion target (sampler_micro, fused_draw,
# parallel_scaling, …) without running them.
run cargo bench --no-run --workspace --offline --locked
# bench_json smoke at tiny sizes: keeps the machine-readable perf runner
# from rotting. The committed BENCH_samplers.json is generated at paper
# scale (defaults: 10k items, d = 32); the smoke writes under target/.
mkdir -p target
run cargo run --release --offline --locked -p bns-bench --bin bench_json -- \
    --users 40 --items 200 --draws 400 --out target/BENCH_smoke.json
# Execute (not just compile) root examples: the examples are covered by
# clippy --all-targets at build level only, so runtime rot in the public
# walkthrough APIs would otherwise be invisible. `serve` additionally
# asserts that frozen-artifact rankings are bitwise identical to the live
# model's.
run cargo run --release --offline --locked --example quickstart
run cargo run --release --offline --locked --example serve -- --scale 0.05
# TCP front-end smoke: serve_tcp binds a loopback socket, self-checks both
# protocol surfaces, and holds the port while this script curls the HTTP
# shim from outside the process — the one place CI talks to the server as
# a genuinely foreign client.
ADDR_FILE=target/serve_tcp_addr
rm -f "$ADDR_FILE"
cargo run --release --offline --locked --example serve_tcp -- \
    --hold-ms 8000 --addr-file "$ADDR_FILE" &
SERVE_TCP_PID=$!
for _ in $(seq 1 100); do
    [ -s "$ADDR_FILE" ] && break
    kill -0 "$SERVE_TCP_PID" 2>/dev/null || { echo "serve_tcp died before binding"; exit 1; }
    sleep 0.1
done
[ -s "$ADDR_FILE" ] || { echo "serve_tcp never wrote $ADDR_FILE"; kill "$SERVE_TCP_PID"; exit 1; }
ADDR=$(cat "$ADDR_FILE")
echo "==> curl http://$ADDR/{metrics,topk}"
curl -sS --max-time 5 "http://$ADDR/metrics" | grep -q bns_requests_ok \
    || { echo "/metrics exposition missing bns_requests_ok"; kill "$SERVE_TCP_PID"; exit 1; }
curl -sS --max-time 5 "http://$ADDR/topk?user=3&k=5&exclude_seen=1" | grep -q '"items"' \
    || { echo "/topk did not answer with an item list"; kill "$SERVE_TCP_PID"; exit 1; }
wait "$SERVE_TCP_PID"
# serve_bench smoke: the serving load generator is gated like the
# samplers' bench_json. The committed BENCH_serve.json is generated at
# paper scale (10k items, d = 32); the smoke writes under target/. The
# second run forces the IVF index path (explicit nprobe so the tiny
# 500-item catalog still probes a strict subset of clusters) and gates
# on its built-in recall measurement.
run cargo run --release --offline --locked -p bns-bench --bin serve_bench -- \
    --scale 0.05 --out target/BENCH_serve_smoke.json
run cargo run --release --offline --locked -p bns-bench --bin serve_bench -- \
    --scale 0.05 --index ivf:8 --out target/BENCH_serve_ivf_smoke.json
# scale_bench smoke: exercises the streamed generator, both artifact load
# paths (buffered + mmap), sampler draws and serving at 1% of each tier.
# At --scale 0.01 the 10k-item tier sits above the auto-index threshold,
# so the IVF freeze + ANN serve path runs here too (serve_ivf in the
# JSON). The committed BENCH_scale.json is generated at full scale (up
# to 1M users × 1M items); the smoke writes under target/.
run cargo run --release --offline --locked -p bns-bench --bin scale_bench -- \
    --scale 0.01 --out target/BENCH_scale_smoke.json

echo "CI green."
