#!/usr/bin/env bash
# CI gate for the bns workspace. Mirrors the tier-1 verify plus hygiene:
#   build (release) → tests → fmt → clippy → benches compile.
# Runs fully offline; all dependencies are path crates (see vendor/).
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo test -q --doc --workspace --offline
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace --offline
# Compiles every Criterion target (sampler_micro, fused_draw,
# parallel_scaling, …) without running them.
run cargo bench --no-run --workspace --offline
# bench_json smoke at tiny sizes: keeps the machine-readable perf runner
# from rotting. The committed BENCH_samplers.json is generated at paper
# scale (defaults: 10k items, d = 32); the smoke writes under target/.
mkdir -p target
run cargo run --release --offline -p bns-bench --bin bench_json -- \
    --users 40 --items 200 --draws 400 --out target/BENCH_smoke.json
# Execute (not just compile) root examples: the examples are covered by
# clippy --all-targets at build level only, so runtime rot in the public
# walkthrough APIs would otherwise be invisible. `serve` additionally
# asserts that frozen-artifact rankings are bitwise identical to the live
# model's.
run cargo run --release --offline --example quickstart
run cargo run --release --offline --example serve -- --scale 0.05
# serve_bench smoke: the serving load generator is gated like the
# samplers' bench_json. The committed BENCH_serve.json is generated at
# paper scale (10k items, d = 32); the smoke writes under target/.
run cargo run --release --offline -p bns-bench --bin serve_bench -- \
    --scale 0.05 --out target/BENCH_serve_smoke.json

echo "CI green."
