#!/usr/bin/env bash
# CI gate for the bns workspace. Mirrors the tier-1 verify plus hygiene:
#   build (release) → tests → fmt → clippy → benches compile.
# Runs fully offline; all dependencies are path crates (see vendor/).
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
run cargo test -q --doc --workspace --offline
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace --offline
# Compiles every Criterion target (sampler_micro, fused_draw,
# parallel_scaling, …) without running them.
run cargo bench --no-run --workspace --offline
# bench_json smoke at tiny sizes: keeps the machine-readable perf runner
# from rotting. The committed BENCH_samplers.json is generated at paper
# scale (defaults: 10k items, d = 32); the smoke writes under target/.
mkdir -p target
run cargo run --release --offline -p bns-bench --bin bench_json -- \
    --users 40 --items 200 --draws 400 --out target/BENCH_smoke.json
# Execute (not just compile) a root example: the four examples are
# covered by clippy --all-targets at build level only, so runtime rot in
# the public walkthrough API would otherwise be invisible.
run cargo run --release --offline --example quickstart

echo "CI green."
