//! Compares all six negative samplers of the paper (RNS, PNS, AOBPR, DNS,
//! SRNS, BNS) on one dataset: ranking quality *and* sampling quality
//! (true-negative rate / informativeness, Eq. 33–34).
//!
//! ```sh
//! cargo run --release --example sampler_comparison
//! ```

use bns::core::{build_sampler, train, SamplerConfig, TrainConfig};
use bns::data::synthetic::generate;
use bns::data::{split_random, Dataset, DatasetPreset, Scale, SplitConfig};
use bns::eval::{evaluate_ranking, QualityTracker};
use bns::model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let gen_cfg = DatasetPreset::Ml100k.config(Scale::Fraction(0.15), 9);
    let synthetic = generate(&gen_cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(9);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    let dataset = Dataset::new("synthetic-100k", train_set, test_set).expect("valid");

    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>9} {:>9}  (40 epochs, MF d=32)",
        "sampler", "P@10", "R@10", "NDCG@10", "tail TNR", "mean INF"
    );
    for cfg in SamplerConfig::paper_lineup() {
        let mut model_rng = StdRng::seed_from_u64(1);
        let mut model = MatrixFactorization::new(
            dataset.n_users(),
            dataset.n_items(),
            32,
            0.1,
            &mut model_rng,
        )
        .expect("valid model");
        let mut sampler =
            build_sampler(&cfg, &dataset, Some(&synthetic.occupations)).expect("valid sampler");
        let mut tracker = QualityTracker::new(&dataset);
        train(
            &mut model,
            &dataset,
            sampler.as_mut(),
            &TrainConfig::paper_mf(40, 42),
            &mut tracker,
        )
        .expect("training succeeds");

        let report = evaluate_ranking(&model, &dataset, &[10], 4);
        let row = report.at(10).expect("requested cutoff");
        let mean_inf = tracker.history().iter().map(|q| q.inf).sum::<f64>()
            / tracker.history().len().max(1) as f64;
        println!(
            "{:<8} {:>8.4} {:>8.4} {:>8.4} {:>9.3} {:>+9.3}",
            cfg.display_name(),
            row.precision,
            row.recall,
            row.ndcg,
            tracker.tail_tnr(8),
            mean_inf
        );
    }
    println!("\nExpected shape (paper Table II / Fig. 4): BNS best NDCG; DNS strong");
    println!("second; PNS weakest; hard samplers (AOBPR/DNS) with the lowest TNR.");
}
