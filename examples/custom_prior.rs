//! Plugging a custom prior into BNS.
//!
//! The paper emphasizes that `P_fn` is a plug-in point: "some other
//! additional information and domain knowledge can also be exploited for
//! modeling Ptn(l)" (§III-C). This example defines a domain-specific prior
//! — a blend of popularity with a per-item exposure estimate — implements
//! the [`Prior`] trait for it, and compares it against the stock
//! popularity prior.
//!
//! ```sh
//! cargo run --release --example custom_prior
//! ```

use bns::core::bns::prior::{PopularityPrior, Prior};
use bns::core::{train, BnsConfig, BnsSampler, NoopObserver, TrainConfig};
use bns::data::synthetic::generate;
use bns::data::{split_random, Dataset, DatasetPreset, Scale, SplitConfig};
use bns::eval::evaluate_ranking;
use bns::model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A custom prior: popularity (Eq. 17) shrunk toward a global exposure
/// floor. Items that were *never* interacted with keep a small non-zero
/// false-negative probability (they may simply never have been shown),
/// which the pure popularity prior assigns exactly zero.
struct SmoothedExposurePrior {
    base: PopularityPrior,
    /// Additive smoothing floor.
    floor: f64,
    /// Blend weight on the popularity component.
    weight: f64,
}

impl SmoothedExposurePrior {
    fn new(dataset: &Dataset, floor: f64, weight: f64) -> Self {
        Self {
            base: PopularityPrior::new(dataset.popularity()),
            floor,
            weight,
        }
    }
}

impl Prior for SmoothedExposurePrior {
    fn name(&self) -> &str {
        "smoothed-exposure"
    }

    fn p_fn(&self, u: u32, item: u32) -> f64 {
        (self.weight * self.base.p_fn(u, item) + (1.0 - self.weight) * self.floor).clamp(0.0, 1.0)
    }
}

fn main() {
    let gen_cfg = DatasetPreset::Ml100k.config(Scale::Fraction(0.15), 21);
    let synthetic = generate(&gen_cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(13);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split succeeds");
    let dataset = Dataset::new("synthetic-100k", train_set, test_set).expect("valid");

    let priors: Vec<(&str, Box<dyn Prior>)> = vec![
        (
            "popularity (Eq. 17)",
            Box::new(PopularityPrior::new(dataset.popularity())),
        ),
        (
            "smoothed exposure",
            Box::new(SmoothedExposurePrior::new(&dataset, 0.002, 0.8)),
        ),
    ];

    println!("BNS with different priors (MF d=32, 40 epochs):\n");
    for (label, prior) in priors {
        let mut model_rng = StdRng::seed_from_u64(1);
        let mut model = MatrixFactorization::new(
            dataset.n_users(),
            dataset.n_items(),
            32,
            0.1,
            &mut model_rng,
        )
        .expect("valid model");
        let mut sampler = BnsSampler::new(BnsConfig::default(), prior).expect("valid sampler");
        train(
            &mut model,
            &dataset,
            &mut sampler,
            &TrainConfig::paper_mf(40, 42),
            &mut NoopObserver,
        )
        .expect("training succeeds");
        let report = evaluate_ranking(&model, &dataset, &[10, 20], 4);
        let r10 = report.at(10).expect("cutoff 10");
        let r20 = report.at(20).expect("cutoff 20");
        println!(
            "  {label:<22} NDCG@10 {:.4}  NDCG@20 {:.4}",
            r10.ndcg, r20.ndcg
        );
    }
    println!("\nAny `impl Prior` slots into BnsSampler::new — priors are the paper's");
    println!("designated extension point for domain knowledge (§III-C, §IV-C2).");
}
