//! End-to-end pipeline on real MovieLens data when available.
//!
//! Pass the path to a MovieLens file (`u.data` tab-separated or
//! `ratings.dat` `::`-separated); without an argument, or if the file is
//! missing, a statistically matched synthetic stand-in is used instead —
//! the same substitution rule as the experiment harness (DESIGN.md §3).
//!
//! Trains LightGCN (1 layer, the paper's setup) with RNS and with BNS and
//! prints the head-to-head result.
//!
//! ```sh
//! cargo run --release --example movielens_pipeline -- /data/ml-100k/u.data
//! cargo run --release --example movielens_pipeline            # synthetic
//! ```

use bns::core::{build_sampler, train, SamplerConfig, TrainConfig};
use bns::data::synthetic::generate;
use bns::data::{loader, split_random, Dataset, DatasetPreset, Interactions, Scale, SplitConfig};
use bns::eval::evaluate_ranking;
use bns::model::LightGcn;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

fn load_or_synthesize() -> (String, Interactions) {
    if let Some(path) = std::env::args().nth(1) {
        match loader::load_auto(Path::new(&path)) {
            Some(Ok(x)) => {
                println!("loaded {} interactions from {path}", x.len());
                return (format!("MovieLens ({path})"), x);
            }
            Some(Err(e)) => {
                eprintln!("failed to parse {path}: {e}; falling back to synthetic data");
            }
            None => {
                eprintln!("{path} not found; falling back to synthetic data");
            }
        }
    }
    let cfg = DatasetPreset::Ml100k.config(Scale::Fraction(0.15), 3);
    let synthetic = generate(&cfg).expect("generation succeeds");
    (
        "MovieLens-100K (synthetic stand-in)".to_string(),
        synthetic.interactions,
    )
}

fn main() {
    let (name, interactions) = load_or_synthesize();
    let mut rng = StdRng::seed_from_u64(11);
    let (train_set, test_set) =
        split_random(&interactions, SplitConfig::default(), &mut rng).expect("split");
    let dataset = Dataset::new(name, train_set, test_set).expect("valid dataset");
    println!(
        "dataset: {} — {} users × {} items ({} train / {} test)\n",
        dataset.name,
        dataset.n_users(),
        dataset.n_items(),
        dataset.train().len(),
        dataset.test().len()
    );

    for sampler_cfg in [
        SamplerConfig::Rns,
        SamplerConfig::Bns {
            config: bns::core::BnsConfig::default(),
            prior: bns::core::PriorKind::Popularity,
        },
    ] {
        let mut model_rng = StdRng::seed_from_u64(5);
        let mut model =
            LightGcn::new(dataset.train(), 32, 1, 0.1, &mut model_rng).expect("valid LightGCN");
        let mut sampler = build_sampler(&sampler_cfg, &dataset, None).expect("valid sampler");
        let stats = train(
            &mut model,
            &dataset,
            sampler.as_mut(),
            &TrainConfig::paper_lightgcn(40, 128, 42),
            &mut bns::core::NoopObserver,
        )
        .expect("training succeeds");
        let report = evaluate_ranking(&model, &dataset, &[5, 10, 20], 4);
        println!(
            "{:<4} ({} triples, {:.1}s):",
            sampler_cfg.display_name(),
            stats.triples,
            stats.wall_seconds
        );
        for row in &report.rows {
            println!(
                "  @{:<2} precision {:.4}  recall {:.4}  ndcg {:.4}",
                row.k, row.precision, row.recall, row.ndcg
            );
        }
        println!();
    }
    println!("Expected: the BNS rows dominate the RNS rows (paper Table II).");
}
