//! TCP serving walkthrough: freeze → bind → query over the wire.
//!
//! Freezes a small MF artifact, binds the `bns-serve` network front-end
//! on a loopback socket, exercises both protocol surfaces — the
//! length-prefixed binary frames via [`bns::serve::WireClient`] and the
//! HTTP/1.1 GET shim via a raw socket — and then holds the server open
//! for `--hold-ms` so an outside client (curl, the CI smoke) can talk to
//! it before a graceful shutdown.
//!
//! ```sh
//! cargo run --release --example serve_tcp                     # ephemeral port
//! cargo run --release --example serve_tcp -- --port 7878 --hold-ms 30000
//! # then, from another shell:
//! curl 'http://127.0.0.1:7878/topk?user=3&k=5&exclude_seen=1'
//! curl 'http://127.0.0.1:7878/metrics'
//! ```
//!
//! `--addr-file <path>` writes the bound `host:port` to a file once the
//! listener is up — the CI smoke polls that file instead of racing the
//! bind.

use bns::data::Interactions;
use bns::model::MatrixFactorization;
use bns::serve::proto::ModeRequest;
use bns::serve::{ModelArtifact, NetConfig, NetServer, QueryEngine, Status, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const N_USERS: u32 = 64;
const N_ITEMS: u32 = 256;

fn main() {
    let mut port = 0u16;
    let mut hold_ms = 1_500u64;
    let mut addr_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--port" => port = value().parse().expect("--port takes a u16"),
            "--hold-ms" => hold_ms = value().parse().expect("--hold-ms takes a u64"),
            "--addr-file" => addr_file = Some(value()),
            other => panic!("unknown flag {other} (expected --port/--hold-ms/--addr-file)"),
        }
    }

    // 1. A small frozen artifact: random-init MF plus a sparse seen-set —
    //    enough to demonstrate the wire without a training loop.
    let mut rng = StdRng::seed_from_u64(17);
    let model =
        MatrixFactorization::new(N_USERS, N_ITEMS, 16, 0.1, &mut rng).expect("valid model config");
    let pairs: Vec<(u32, u32)> = (0..N_USERS)
        .flat_map(|u| (0..4u32).map(move |j| (u, (u * 37 + j * 11) % N_ITEMS)))
        .collect();
    let seen = Interactions::from_pairs(N_USERS, N_ITEMS, &pairs).expect("valid seen pairs");
    let artifact = ModelArtifact::freeze(&model, &seen).expect("freezable model");

    // 2. Bind the front-end. Port 0 asks the OS for an ephemeral port.
    let server = NetServer::bind(
        ("127.0.0.1", port),
        QueryEngine::new(artifact),
        NetConfig::default(),
    )
    .expect("loopback bind");
    let addr = server.local_addr();
    println!("listening on {addr}");
    println!("  curl 'http://{addr}/topk?user=3&k=5&exclude_seen=1'");
    println!("  curl 'http://{addr}/metrics'");
    if let Some(path) = &addr_file {
        // Write-then-rename so a polling reader never sees a partial line.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, addr.to_string()).expect("addr file written");
        std::fs::rename(&tmp, path).expect("addr file renamed");
    }

    // 3. Binary protocol self-check: ping, then a top-k round trip.
    let mut client = WireClient::connect(addr).expect("loopback connect");
    assert_eq!(client.ping().expect("ping").status, Status::Pong);
    let resp = client
        .top_k(3, 5, true, ModeRequest::Default)
        .expect("top-k over the wire");
    assert_eq!(resp.status, Status::Ok);
    println!(
        "binary frame: user 3 → top-5 {:?} (generation {})",
        resp.items, resp.generation
    );

    // 4. HTTP shim self-check: the same query and the metrics exposition
    //    through plain GETs.
    let body = http_get(addr, "/topk?user=3&k=5&exclude_seen=1");
    assert!(body.contains("\"items\""), "unexpected /topk body: {body}");
    println!("http shim:    {}", body.lines().last().unwrap_or(""));
    let metrics = http_get(addr, "/metrics");
    assert!(
        metrics.contains("bns_requests_ok"),
        "metrics missing series"
    );
    println!(
        "metrics:      {} series exported",
        metrics.lines().filter(|l| !l.starts_with('#')).count()
    );

    // 5. Hold the port open for outside clients, then shut down cleanly.
    std::thread::sleep(Duration::from_millis(hold_ms));
    drop(server);
    if let Some(path) = &addr_file {
        std::fs::remove_file(path).ok();
    }
    println!("shut down cleanly");
}

/// One-shot HTTP GET over a fresh connection (the shim answers a single
/// request and closes, so `read_to_string` terminates).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("http connect");
    write!(s, "GET {path} HTTP/1.1\r\nhost: example\r\n\r\n").expect("http request");
    let mut body = String::new();
    s.read_to_string(&mut body).expect("http response");
    body
}
