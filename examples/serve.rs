//! Serving walkthrough: train → freeze → reload → query.
//!
//! Trains a BPR-MF model with Bayesian Negative Sampling, freezes it into
//! an immutable `bns-serve` artifact together with the seen-item CSR,
//! reloads the artifact from disk (checksum-verified), and serves top-10
//! queries — asserting along the way that the served rankings are
//! **bitwise identical** to what the in-memory model produces under
//! `evaluate_ranking`'s scoring path.
//!
//! ```sh
//! cargo run --release --example serve              # ≈20% ML-100K scale
//! cargo run --release --example serve -- --scale 0.05   # CI smoke
//! ```

use bns::core::bns::prior::PopularityPrior;
use bns::core::{train, BnsConfig, BnsSampler, NoopObserver, TrainConfig};
use bns::data::synthetic::generate;
use bns::data::{split_random, Dataset, DatasetPreset, Scale, SplitConfig};
use bns::eval::evaluate_ranking;
use bns::eval::top_k_masked;
use bns::model::{MatrixFactorization, Scorer};
use bns::serve::{ModelArtifact, QueryEngine, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut scale = 0.2f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes an f64 in (0, 1]");
                assert!(scale > 0.0 && scale <= 1.0, "--scale must be in (0, 1]");
            }
            other => panic!("unknown flag {other} (expected --scale)"),
        }
    }

    // 1. Dataset + model + BNS training, exactly as examples/quickstart.rs.
    let gen_cfg = DatasetPreset::Ml100k.config(Scale::Fraction(scale), 42);
    let synthetic = generate(&gen_cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(7);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("non-empty dataset splits");
    let dataset =
        Dataset::new("MovieLens-100K (synthetic)", train_set, test_set).expect("valid split");
    let mut model_rng = StdRng::seed_from_u64(1);
    let mut model = MatrixFactorization::new(
        dataset.n_users(),
        dataset.n_items(),
        32,
        0.1,
        &mut model_rng,
    )
    .expect("valid model config");
    let mut sampler = BnsSampler::new(
        BnsConfig::default(),
        Box::new(PopularityPrior::new(dataset.popularity())),
    )
    .expect("valid sampler config");
    let config = TrainConfig::paper_mf(25, 42);
    let stats = train(
        &mut model,
        &dataset,
        &mut sampler,
        &config,
        &mut NoopObserver,
    )
    .expect("training succeeds");
    println!(
        "trained {} triples over {} epochs in {:.2}s",
        stats.triples, config.epochs, stats.wall_seconds
    );

    // 2. Freeze the trained scorer + the training-positive CSR into a
    //    checksummed artifact, write it to disk, and reload it.
    let artifact = ModelArtifact::freeze(&model, dataset.train()).expect("freezable model");
    let path = std::env::temp_dir().join(format!("bns_serve_example_{}.bnsa", std::process::id()));
    artifact.save(&path).expect("artifact saved");
    let loaded = ModelArtifact::load(&path).expect("artifact reloaded, checksum verified");
    std::fs::remove_file(&path).ok();
    println!(
        "froze {} artifact: {} users × {} items, d = {}, {} bytes on disk",
        loaded.kind().name(),
        loaded.n_users(),
        loaded.n_items(),
        loaded.dim(),
        artifact.encode().len()
    );

    // 3. The reloaded artifact reproduces the live model bitwise: same
    //    top-10 ranking for every evaluable user (the §II protocol that
    //    evaluate_ranking scores), and identical ranking metrics.
    let engine = QueryEngine::new(loaded);
    let mut scores = vec![0.0f32; dataset.n_items() as usize];
    for &u in dataset.evaluable_users() {
        model.score_all(u, &mut scores);
        let live = top_k_masked(&scores, dataset.train().items_of(u), 10);
        let served = engine.top_k(u, 10, true).expect("valid user");
        assert_eq!(
            live, served,
            "served ranking diverged from the live model for user {u}"
        );
    }
    let live_report = evaluate_ranking(&model, &dataset, &[5, 10, 20], 2);
    let frozen_report = evaluate_ranking(engine.artifact(), &dataset, &[5, 10, 20], 2);
    assert_eq!(live_report, frozen_report, "metrics diverged after freeze");
    println!(
        "verified: served top-10 bitwise identical to the live model for all {} evaluable users",
        dataset.evaluable_users().len()
    );

    // 4. Serve a Zipf-ish request burst through the multi-threaded
    //    work-stealing loop and print what production would see.
    let requests: Vec<Request> = (0..2_000)
        .map(|i| Request {
            user: dataset.evaluable_users()[(i * i) % dataset.evaluable_users().len()],
            k: 10,
            exclude_seen: true,
        })
        .collect();
    let report = engine.serve(&requests, 4).expect("valid requests");
    println!(
        "served {} queries on {} threads: {:.0} q/s, p50 {:.3} ms, p99 {:.3} ms",
        report.results.len(),
        report.threads,
        report.queries_per_sec(),
        report.latency_percentile_ms(0.5),
        report.latency_percentile_ms(0.99),
    );

    let sample = &report.results[0];
    println!(
        "user {} → top-10 recommendations: {:?}",
        sample.user, sample.items
    );
    for row in &frozen_report.rows {
        println!(
            "  @{:<2}  precision {:.4}  recall {:.4}  ndcg {:.4}",
            row.k, row.precision, row.recall, row.ndcg
        );
    }
}
