//! Quickstart: train a BPR matrix-factorization model with Bayesian
//! Negative Sampling on a synthetic MovieLens-100K-like dataset and print
//! ranking metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bns::core::bns::prior::PopularityPrior;
use bns::core::{train, BnsConfig, BnsSampler, NoopObserver, TrainConfig};
use bns::data::synthetic::generate;
use bns::data::{split_random, Dataset, DatasetPreset, Scale, SplitConfig};
use bns::eval::evaluate_ranking;
use bns::model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate a MovieLens-100K-shaped synthetic dataset (≈20% scale)
    //    and split it 80/20, exactly as the paper's protocol.
    let gen_cfg = DatasetPreset::Ml100k.config(Scale::Fraction(0.2), 42);
    let synthetic = generate(&gen_cfg).expect("generation succeeds");
    let mut rng = StdRng::seed_from_u64(7);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("non-empty dataset splits");
    let dataset =
        Dataset::new("MovieLens-100K (synthetic)", train_set, test_set).expect("valid split");
    println!(
        "dataset: {} — {} users × {} items, {} train / {} test interactions",
        dataset.name,
        dataset.n_users(),
        dataset.n_items(),
        dataset.train().len(),
        dataset.test().len()
    );

    // 2. Build the model (d = 32, as in the paper) and the BNS sampler with
    //    the popularity prior of Eq. (17).
    let mut model_rng = StdRng::seed_from_u64(1);
    let mut model = MatrixFactorization::new(
        dataset.n_users(),
        dataset.n_items(),
        32,
        0.1,
        &mut model_rng,
    )
    .expect("valid model config");
    let mut sampler = BnsSampler::new(
        BnsConfig::default(), // |Mᵤ| = 5, λ = 5, min-risk rule (Eq. 32)
        Box::new(PopularityPrior::new(dataset.popularity())),
    )
    .expect("valid sampler config");

    // 3. Train with the paper's MF setup (lr 0.01, reg 0.01, batch 1).
    let config = TrainConfig::paper_mf(60, 42);
    let stats = train(
        &mut model,
        &dataset,
        &mut sampler,
        &config,
        &mut NoopObserver,
    )
    .expect("training succeeds");
    println!(
        "trained {} triples over {} epochs in {:.2}s",
        stats.triples, config.epochs, stats.wall_seconds
    );

    // 4. Evaluate Precision/Recall/NDCG @ {5, 10, 20}.
    let report = evaluate_ranking(&model, &dataset, &[5, 10, 20], 4);
    println!("\nranking metrics over {} users:", report.n_users);
    for row in &report.rows {
        println!(
            "  @{:<2}  precision {:.4}  recall {:.4}  ndcg {:.4}",
            row.k, row.precision, row.recall, row.ndcg
        );
    }
}
