//! The per-test random source. Self-contained (no dependency on the
//! workspace's `rand` stub) so the two stubs can evolve independently.

/// Derives a stable seed from a test name.
pub fn name_seed(name: &str) -> u64 {
    // FNV-1a, folded with a fixed offset so an empty name still seeds well.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ 0x9E37_79B9_7F4A_7C15
}

/// xoshiro256++ generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}
