//! Collection strategies: `vec(elem, size)` and `btree_set(elem, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

/// Strategy producing `Vec`s of a given element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a `Vec` strategy: `vec(0u32..10, 1..50)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of a given element strategy.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a `BTreeSet` strategy: `btree_set(0u32..60, 1..20)`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Bounded retries: a narrow element domain may not admit `target`
        // distinct values.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(20) + 50 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
