//! Value-generation strategies: primitive ranges and tuples.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let v = (self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit_f64()) as $t;
                // `next_down` keeps the fallback inside [start, end) for any
                // sign of `end` (from_bits(- 1) breaks at zero and below).
                if v < self.end { v } else { self.end.next_down().max(self.start) }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Always produces a clone of one value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
