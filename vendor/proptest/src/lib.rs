//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `pat in strategy` bindings, range strategies over primitive
//! numbers, tuple strategies, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its generated inputs verbatim;
//! * cases per test default to 64 (`PROPTEST_CASES` overrides);
//! * the per-test RNG seed is derived from the test name, so runs are
//!   deterministic unless `PROPTEST_SEED` is set.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Convenience glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`, giving tests the
    /// `prop::collection::vec(...)` path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each parameter is drawn from its strategy for
/// every case; `prop_assert*` failures abort the case with its inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: usize = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(64);
                let seed: u64 = ::std::env::var("PROPTEST_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| $crate::test_runner::name_seed(stringify!($name)));
                let mut __rng = $crate::test_runner::TestRng::new(seed);
                for __case in 0..cases {
                    let mut __inputs = ::std::string::String::new();
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(
                            let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                            __inputs.push_str(&::std::format!(
                                "{} = {:?}; ", stringify!($pat), __value
                            ));
                            let $pat = __value;
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = __outcome {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{} (seed {}):\n  {}\n  inputs: {}",
                            stringify!($name), __case + 1, cases, seed, msg, __inputs
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
