//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Keeps the call-site API (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) so the bench targets
//! compile and run unchanged, but replaces the statistics engine with a
//! simple warm-up + median-of-samples timer:
//!
//! * under `cargo bench` (the binary receives `--bench`) each benchmark is
//!   timed and a `name ... median ns/iter` line is printed;
//! * under `cargo test` (no `--bench` flag) each benchmark body runs once as
//!   a smoke test, so benches stay correctness-checked without slowing the
//!   test suite.

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Full timing (`cargo bench`).
    Measure,
    /// One iteration per benchmark (`cargo test` smoke run).
    Smoke,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self.mode, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let mode = self.mode;
        BenchmarkGroup {
            _parent: self,
            mode,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    mode: Mode,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub timer ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.mode, &full, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.mode, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier of a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only identifier.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into a display id.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times the routine (or runs it once in smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm up and size the batch so one sample spans >= ~1 ms.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt.as_micros() >= 1_000 || batch >= (1 << 24) {
                break;
            }
            batch *= 2;
        }
        const SAMPLES: usize = 11;
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            *s = t0.elapsed().as_nanos() as f64 / batch as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }
}

fn run_one(mode: Mode, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode,
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if mode == Mode::Measure {
        if b.ns_per_iter.is_nan() {
            println!("{name:<56} (no measurement)");
        } else {
            println!("{name:<56} {:>14.1} ns/iter", b.ns_per_iter);
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
