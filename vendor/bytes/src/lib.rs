//! Offline stand-in for the `bytes` crate.
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` — the zero-copy
//! refcounting of the real crate is irrelevant to the current use (binary
//! dataset caching in `bns-data::serialize`), while the API shape is kept
//! identical so a registry-backed swap later is a manifest-only change.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Extracts the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advances the cursor.
    fn advance(&mut self, cnt: usize);
    /// Reads the next `N` bytes into an array, advancing.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_array())
    }

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of buffer");
        let (head, tail) = self.split_at(N);
        let arr: [u8; N] = head.try_into().expect("split_at guarantees length");
        *self = tail;
        arr
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_u8(7);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 13);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32_le();
    }
}
