//! Offline stand-in for `serde_derive`.
//!
//! Emits empty marker impls for the stub `serde` traits. Implemented with a
//! hand-rolled token scan instead of `syn`/`quote` because the build
//! environment has no registry access. Handles plain (non-generic) structs
//! and enums, which is everything the workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` keyword, skipping
/// attributes and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute's bracketed group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = tokens.peek() {
                                assert!(
                                    p.as_char() != '<',
                                    "stub serde_derive does not support generic types \
                                     (derive on `{name}`)"
                                );
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name after `{kw}`, found {other:?}"),
                    }
                }
            }
            _ => {}
        }
    }
    panic!("stub serde_derive: no struct/enum found in derive input");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
