//! Sequence-related random operations: in-place shuffles, element choice,
//! and reservoir sampling over iterators.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle, in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Random operations on iterators.
pub trait IteratorRandom: Iterator + Sized {
    /// Uniformly chosen element (reservoir sampling with k = 1).
    fn choose<R: RngCore + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = self.next()?;
        for (already_seen, item) in self.enumerate() {
            if rng.random_range(0..already_seen + 2) == 0 {
                chosen = item;
            }
        }
        Some(chosen)
    }

    /// Uniform sample of up to `amount` elements without replacement
    /// (reservoir sampling; output order is arbitrary).
    fn choose_multiple<R: RngCore + ?Sized>(
        mut self,
        rng: &mut R,
        amount: usize,
    ) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        if amount == 0 {
            return reservoir;
        }
        for _ in 0..amount {
            match self.next() {
                Some(item) => reservoir.push(item),
                None => return reservoir,
            }
        }
        for (extra, item) in self.enumerate() {
            let j = rng.random_range(0..amount + extra + 1);
            if j < amount {
                reservoir[j] = item;
            }
        }
        reservoir
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_uniformish_and_exact_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let sample = (0..1000u32).choose_multiple(&mut rng, 100);
        assert_eq!(sample.len(), 100);
        let mut uniq = sample.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 100, "sampling must be without replacement");
    }

    #[test]
    fn choose_multiple_short_input_returns_all() {
        let mut rng = StdRng::seed_from_u64(9);
        let sample = (0..5u32).choose_multiple(&mut rng, 100);
        assert_eq!(sample.len(), 5);
    }
}
