//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API subset the workspace uses, with the same
//! module layout and trait names as `rand 0.9`:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`]
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator
//! * [`rng()`] — a loosely entropy-seeded generator for non-reproducible use
//! * [`seq::SliceRandom`] / [`seq::IteratorRandom`]
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces an identical
//! stream on every platform and every run, which the reproducibility tests
//! rely on. The generator is xoshiro256++ seeded through SplitMix64.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from a range.
///
/// Implemented for the primitive integer and float types the workspace uses.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire-style widening multiply; bias is O(2^-64) per draw.
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                (low as i128 + hi as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                if low == high {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                // Compare in the output type: the f64 → $t cast can round up
                // to exactly `high`, which the half-open contract excludes.
                let v = (low as f64 + (high as f64 - low as f64) * unit) as $t;
                if v < high { v } else { high.next_down().max(low) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (low as f64 + (high as f64 - low as f64) * unit) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform draw from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(0.0..=1.0)`.
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Returns a non-reproducible generator seeded from the clock and an
/// incrementing counter (the stand-in for `rand::rng()`).
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ n.rotate_left(32) ^ 0xA076_1D64_78BD_642F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f64 = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dyn_rng_core_supports_range_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: u32 = dyn_rng.random_range(0..5);
        assert!(x < 5);
    }
}
