//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! capability marker on config/result structs — no code path performs actual
//! serialization yet (that arrives with a real `serde` once the build
//! environment has registry access). The traits are therefore empty marker
//! traits, and the derive macros emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that could be serialized.
pub trait Serialize {}

/// Marker for types that could be deserialized.
pub trait Deserialize<'de>: Sized {}
