//! Dense scorer snapshots — the freeze point of the serving subsystem.
//!
//! Every scorer the workspace trains ultimately ranks with a dot product
//! between a user row and an item row (MF directly; LightGCN after
//! propagating and layer-averaging its base embeddings; the hogwild tables
//! after a relaxed-atomic read-back). [`SnapshotScorer`] exposes that
//! common dense form: a `(users, items)` pair of [`Embedding`] tables such
//! that `kernel::dot(users.row(u), items.row(i))` is **bitwise identical**
//! to the live model's [`Scorer::score`] — the contract `bns-serve` builds
//! its immutable [`ModelArtifact`] on.
//!
//! The bitwise guarantee holds because every scoring path in the workspace
//! shares one summation order ([`crate::kernel`]): MF scores through
//! `kernel::dot`, the hogwild tables through `kernel::dot_atomic` (same
//! reduction over the same bits), and LightGCN through `Embedding::dot`
//! on its propagated rows — so copying the tables and re-running the
//! kernel reproduces every score exactly.
//!
//! [`ModelArtifact`]: https://docs.rs/bns-serve

use crate::embedding::Embedding;
use crate::hogwild::HogwildMf;
use crate::lightgcn::LightGcn;
use crate::mf::MatrixFactorization;
use crate::scorer::Scorer;
use crate::{ModelError, Result};

/// Which live scorer a frozen snapshot came from (stored in the artifact
/// header for provenance; all kinds serve through the same dense form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Serial BPR matrix factorization.
    Mf,
    /// Hogwild (relaxed-atomic) MF storage, read back post-join.
    HogwildMf,
    /// LightGCN with the propagated, layer-averaged embeddings baked in.
    LightGcnPropagated,
}

impl SnapshotKind {
    /// Stable on-disk tag (artifact format field).
    pub fn tag(self) -> u32 {
        match self {
            SnapshotKind::Mf => 0,
            SnapshotKind::HogwildMf => 1,
            SnapshotKind::LightGcnPropagated => 2,
        }
    }

    /// Inverse of [`SnapshotKind::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            0 => Some(SnapshotKind::Mf),
            1 => Some(SnapshotKind::HogwildMf),
            2 => Some(SnapshotKind::LightGcnPropagated),
            _ => None,
        }
    }

    /// Human-readable name (serve logs, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            SnapshotKind::Mf => "MF",
            SnapshotKind::HogwildMf => "HogwildMF",
            SnapshotKind::LightGcnPropagated => "LightGCN-propagated",
        }
    }
}

/// A scorer that can freeze itself into dense `(users, items)` embedding
/// tables reproducing its scores bitwise through [`crate::kernel::dot`].
///
/// ```
/// use bns_model::{MatrixFactorization, Scorer, SnapshotScorer};
/// use bns_model::kernel;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let model = MatrixFactorization::new(3, 5, 8, 0.1, &mut rng)?;
/// let (users, items) = model.snapshot_embeddings()?;
/// for u in 0..3u32 {
///     for i in 0..5u32 {
///         let frozen = kernel::dot(users.row(u as usize), items.row(i as usize));
///         assert_eq!(frozen.to_bits(), model.score(u, i).to_bits());
///     }
/// }
/// # Ok::<(), bns_model::ModelError>(())
/// ```
pub trait SnapshotScorer: Scorer {
    /// Provenance tag recorded in the frozen artifact.
    fn snapshot_kind(&self) -> SnapshotKind;

    /// The dense `(users, items)` tables. Errors when the model is not in
    /// a scoreable state (a stale LightGCN that needs `refresh()`).
    fn snapshot_embeddings(&self) -> Result<(Embedding, Embedding)>;
}

impl SnapshotScorer for MatrixFactorization {
    fn snapshot_kind(&self) -> SnapshotKind {
        SnapshotKind::Mf
    }

    fn snapshot_embeddings(&self) -> Result<(Embedding, Embedding)> {
        Ok((self.users().clone(), self.items().clone()))
    }
}

impl SnapshotScorer for HogwildMf {
    fn snapshot_kind(&self) -> SnapshotKind {
        SnapshotKind::HogwildMf
    }

    /// Reads the relaxed-atomic tables back bit-for-bit, one copy per
    /// table (no intermediate `to_mf` materialization — freezing a
    /// million-user model is memcpy-bound). Callers should snapshot after
    /// the training scope has joined; a racing writer would not be
    /// unsound but the snapshot would mix epochs (the same caveat as
    /// [`crate::hogwild::AtomicEmbedding::to_embedding`]).
    fn snapshot_embeddings(&self) -> Result<(Embedding, Embedding)> {
        Ok((self.users().to_embedding(), self.items().to_embedding()))
    }
}

impl SnapshotScorer for LightGcn {
    fn snapshot_kind(&self) -> SnapshotKind {
        SnapshotKind::LightGcnPropagated
    }

    /// Splits the propagated node table into user rows and item rows.
    /// The propagation is baked in: the artifact scores with a plain dot
    /// over these rows, exactly like the live model's [`Scorer::score`]
    /// on its `final_emb`. Errors when the model is stale (an update has
    /// been applied since the last `refresh()`), because the frozen scores
    /// would not match what the live model would serve after refreshing.
    fn snapshot_embeddings(&self) -> Result<(Embedding, Embedding)> {
        if self.is_stale() {
            return Err(ModelError::InvalidConfig(
                "cannot snapshot a stale LightGCN; call refresh() first".into(),
            ));
        }
        let d = self.dim();
        let n_users = self.n_users() as usize;
        let n_items = self.n_items() as usize;
        let mut users = Vec::with_capacity(n_users * d);
        for node in 0..n_users {
            users.extend_from_slice(self.final_embedding(node));
        }
        let mut items = Vec::with_capacity(n_items * d);
        for node in n_users..n_users + n_items {
            items.extend_from_slice(self.final_embedding(node));
        }
        Ok((
            Embedding::from_vec(n_users, d, users)?,
            Embedding::from_vec(n_items, d, items)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tags_round_trip() {
        for kind in [
            SnapshotKind::Mf,
            SnapshotKind::HogwildMf,
            SnapshotKind::LightGcnPropagated,
        ] {
            assert_eq!(SnapshotKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(SnapshotKind::from_tag(99), None);
    }

    #[test]
    fn mf_snapshot_scores_bitwise() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = MatrixFactorization::new(4, 6, 8, 0.1, &mut rng).unwrap();
        let (users, items) = m.snapshot_embeddings().unwrap();
        for u in 0..4u32 {
            for i in 0..6u32 {
                let frozen = crate::kernel::dot(users.row(u as usize), items.row(i as usize));
                assert_eq!(frozen.to_bits(), m.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn hogwild_snapshot_scores_bitwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let mf = MatrixFactorization::new(3, 5, 8, 0.1, &mut rng).unwrap();
        let hog = HogwildMf::from_mf(&mf);
        let (users, items) = hog.snapshot_embeddings().unwrap();
        for u in 0..3u32 {
            for i in 0..5u32 {
                let frozen = crate::kernel::dot(users.row(u as usize), items.row(i as usize));
                assert_eq!(frozen.to_bits(), hog.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn lightgcn_snapshot_scores_bitwise() {
        let train = Interactions::from_pairs(3, 4, &[(0, 0), (0, 2), (1, 1), (2, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = LightGcn::new(&train, 8, 1, 0.1, &mut rng).unwrap();
        let (users, items) = m.snapshot_embeddings().unwrap();
        for u in 0..3u32 {
            for i in 0..4u32 {
                let frozen = crate::kernel::dot(users.row(u as usize), items.row(i as usize));
                assert_eq!(frozen.to_bits(), m.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn stale_lightgcn_snapshot_is_rejected() {
        let train = Interactions::from_pairs(2, 3, &[(0, 0), (1, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = LightGcn::new(&train, 4, 1, 0.1, &mut rng).unwrap();
        m.base_embedding_mut(0)[0] += 1.0; // marks the model stale
        assert!(m.snapshot_embeddings().is_err());
        m.refresh();
        assert!(m.snapshot_embeddings().is_ok());
    }
}
