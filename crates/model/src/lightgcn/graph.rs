//! Symmetric-normalized bipartite adjacency for LightGCN.
//!
//! Users and items are packed into one node space: user `u` is node `u`,
//! item `i` is node `n_users + i`. Each interaction `(u, i)` contributes the
//! two directed edges with weight `1/√(deg(u)·deg(i))` — the
//! `D^{-1/2} A D^{-1/2}` normalization of the LightGCN paper. The matrix is
//! symmetric, which the backward pass exploits (`Ãᵀ = Ã`).

use bns_data::Interactions;

/// CSR representation of the normalized adjacency `Ã`.
#[derive(Debug, Clone)]
pub struct NormAdjacency {
    n_users: u32,
    n_items: u32,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    weights: Vec<f32>,
}

impl NormAdjacency {
    /// Builds `Ã` from training interactions.
    pub fn from_interactions(train: &Interactions) -> Self {
        let n_users = train.n_users();
        let n_items = train.n_items();
        let n_nodes = (n_users + n_items) as usize;

        // Degrees in the bipartite graph.
        let mut degree = vec![0u32; n_nodes];
        for (u, i) in train.iter_pairs() {
            degree[u as usize] += 1;
            degree[(n_users + i) as usize] += 1;
        }

        // Row sizes: user rows hold their items, item rows their users.
        let mut offsets = vec![0u32; n_nodes + 1];
        for v in 0..n_nodes {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let nnz = offsets[n_nodes] as usize;
        let mut neighbors = vec![0u32; nnz];
        let mut weights = vec![0f32; nnz];
        let mut cursor: Vec<u32> = offsets[..n_nodes].to_vec();

        for (u, i) in train.iter_pairs() {
            let nu = u as usize;
            let ni = (n_users + i) as usize;
            let w = 1.0 / ((degree[nu] as f32).sqrt() * (degree[ni] as f32).sqrt());
            let cu = cursor[nu] as usize;
            neighbors[cu] = ni as u32;
            weights[cu] = w;
            cursor[nu] += 1;
            let ci = cursor[ni] as usize;
            neighbors[ci] = nu as u32;
            weights[ci] = w;
            cursor[ni] += 1;
        }
        Self {
            n_users,
            n_items,
            offsets,
            neighbors,
            weights,
        }
    }

    /// Total node count (`n_users + n_items`).
    pub fn n_nodes(&self) -> usize {
        (self.n_users + self.n_items) as usize
    }

    /// User count.
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Item count.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of stored (directed) edges.
    pub fn nnz(&self) -> usize {
        self.neighbors.len()
    }

    /// One propagation step `dst = Ã · src`, where both are row-major
    /// `n_nodes × dim` matrices. `dst` is fully overwritten.
    pub fn propagate(&self, src: &[f32], dst: &mut [f32], dim: usize) {
        let n = self.n_nodes();
        debug_assert_eq!(src.len(), n * dim);
        debug_assert_eq!(dst.len(), n * dim);
        for v in 0..n {
            let row = &mut dst[v * dim..(v + 1) * dim];
            row.fill(0.0);
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            for e in lo..hi {
                let w = self.weights[e];
                let nb = self.neighbors[e] as usize;
                let src_row = &src[nb * dim..(nb + 1) * dim];
                for (r, &s) in row.iter_mut().zip(src_row) {
                    *r += w * s;
                }
            }
        }
    }

    /// The weighted neighbor list of a node (for tests/diagnostics).
    pub fn row(&self, v: usize) -> (&[u32], &[f32]) {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        (&self.neighbors[lo..hi], &self.weights[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 users × 2 items: u0–i0, u0–i1, u1–i1.
    fn tiny() -> NormAdjacency {
        let x = Interactions::from_pairs(2, 2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        NormAdjacency::from_interactions(&x)
    }

    #[test]
    fn shapes_and_nnz() {
        let a = tiny();
        assert_eq!(a.n_nodes(), 4);
        assert_eq!(a.nnz(), 6); // 3 undirected edges → 6 directed
    }

    #[test]
    fn weights_are_symmetric_normalized() {
        let a = tiny();
        // deg(u0) = 2, deg(i0) = 1 → w(u0, i0) = 1/√2.
        let (nbrs, ws) = a.row(0);
        let idx = nbrs.iter().position(|&n| n == 2).unwrap(); // i0 is node 2
        assert!((ws[idx] - 1.0 / 2f32.sqrt()).abs() < 1e-6);
        // deg(u0) = 2, deg(i1) = 2 → w(u0, i1) = 1/2.
        let idx = nbrs.iter().position(|&n| n == 3).unwrap();
        assert!((ws[idx] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let a = tiny();
        for v in 0..a.n_nodes() {
            let (nbrs, ws) = a.row(v);
            for (&nb, &w) in nbrs.iter().zip(ws) {
                let (back_nbrs, back_ws) = a.row(nb as usize);
                let pos = back_nbrs
                    .iter()
                    .position(|&x| x as usize == v)
                    .expect("symmetric edge missing");
                assert!((back_ws[pos] - w).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn propagate_matches_hand_computation() {
        let a = tiny();
        // dim 1; embeddings: u0=1, u1=2, i0=3, i1=4.
        let src = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut dst = vec![0.0f32; 4];
        a.propagate(&src, &mut dst, 1);
        let s2 = 2f32.sqrt();
        // u0 ← i0/√2 + i1/2 = 3/√2 + 2.
        assert!((dst[0] - (3.0 / s2 + 2.0)).abs() < 1e-6);
        // u1 ← i1·w(u1,i1); deg(u1)=1, deg(i1)=2 → w = 1/√2 → 4/√2.
        assert!((dst[1] - 4.0 / s2).abs() < 1e-6);
        // i0 ← u0/√2 = 1/√2.
        assert!((dst[2] - 1.0 / s2).abs() < 1e-6);
        // i1 ← u0/2 + u1/√2.
        assert!((dst[3] - (0.5 + 2.0 / s2)).abs() < 1e-6);
    }

    #[test]
    fn isolated_nodes_propagate_to_zero() {
        // User 1 and item 1 have no edges.
        let x = Interactions::from_pairs(2, 2, &[(0, 0)]).unwrap();
        let a = NormAdjacency::from_interactions(&x);
        let src = vec![1.0f32, 1.0, 1.0, 1.0];
        let mut dst = vec![9.0f32; 4];
        a.propagate(&src, &mut dst, 1);
        assert_eq!(dst[1], 0.0);
        assert_eq!(dst[3], 0.0);
        // Connected pair u0–i0 has deg 1 each → weight 1.
        assert!((dst[0] - 1.0).abs() < 1e-7);
        assert!((dst[2] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn propagation_preserves_weighted_sum_invariant() {
        // Σ_v deg(v)^{1/2} e'_v = Σ_v deg(v)^{1/2} e_v ... (eigen-structure);
        // simpler invariant: propagation is linear. Check additivity.
        let a = tiny();
        let x = vec![1.0f32, 0.0, 2.0, -1.0];
        let y = vec![0.5f32, 1.0, -2.0, 3.0];
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let mut px = vec![0.0f32; 4];
        let mut py = vec![0.0f32; 4];
        let mut psum = vec![0.0f32; 4];
        a.propagate(&x, &mut px, 1);
        a.propagate(&y, &mut py, 1);
        a.propagate(&sum, &mut psum, 1);
        for v in 0..4 {
            assert!((psum[v] - (px[v] + py[v])).abs() < 1e-6);
        }
    }

    #[test]
    fn multi_dim_propagation_is_per_column() {
        let a = tiny();
        // dim 2, second column zero.
        let src = vec![1.0f32, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0];
        let mut dst = vec![0.0f32; 8];
        a.propagate(&src, &mut dst, 2);
        for v in 0..4 {
            assert_eq!(dst[v * 2 + 1], 0.0);
        }
        // Column 0 must match the dim-1 result.
        let src1 = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut dst1 = vec![0.0f32; 4];
        a.propagate(&src1, &mut dst1, 1);
        for v in 0..4 {
            assert!((dst[v * 2] - dst1[v]).abs() < 1e-7);
        }
    }
}
