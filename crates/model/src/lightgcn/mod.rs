//! LightGCN (He et al., SIGIR 2020) — the paper's second CF model.
//!
//! LightGCN removes feature transforms and non-linearities from graph
//! convolution: embeddings are propagated through the normalized bipartite
//! adjacency `Ã` and the layers are averaged,
//!
//! ```text
//! E⁽ᵏ⁺¹⁾ = Ã E⁽ᵏ⁾,   E_final = (1/(K+1)) Σ_{k=0..K} E⁽ᵏ⁾,
//! ```
//!
//! with BPR on the final embeddings. Because `Ã` is symmetric, the exact
//! gradient w.r.t. the base embeddings is the same averaged propagation
//! applied to the gradient at the output:
//! `∂L/∂E⁽⁰⁾ = (1/(K+1)) Σ_k Ãᵏ (∂L/∂E_final)`.
//!
//! The batch protocol accumulates output-side gradients sparsely per triple
//! and performs the dense backward + SGD step once per mini-batch
//! ([`PairwiseModel::end_batch`]), matching reference mini-batch training
//! (the paper uses batch 128 for the small datasets, 1024 for ML-1M,
//! K = 1 layer).

pub mod graph;

pub use graph::NormAdjacency;

use crate::batch::TripleBatch;
use crate::embedding::Embedding;
use crate::loss::info;
use crate::scorer::{PairwiseModel, Scorer};
use crate::{ModelError, Result};
use bns_data::Interactions;
use rand::Rng;

/// LightGCN model state.
#[derive(Debug, Clone)]
pub struct LightGcn {
    adj: NormAdjacency,
    dim: usize,
    layers: usize,
    /// Base ("layer 0") embeddings, `(M+N) × dim`.
    base: Vec<f32>,
    /// Propagated, layer-averaged embeddings, `(M+N) × dim`.
    final_emb: Vec<f32>,
    /// Per-batch gradient w.r.t. `final_emb` (ascent direction).
    grad: Vec<f32>,
    /// Nodes with a non-zero gradient this batch.
    touched: Vec<u32>,
    /// Dirty flag: `final_emb` must be recomputed before scoring.
    stale: bool,
    /// Scratch buffers for propagation.
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
}

impl LightGcn {
    /// Creates a LightGCN over the training graph with `N(0, init_std)`
    /// base embeddings (paper: d = 32, K = 1).
    pub fn new<R: Rng + ?Sized>(
        train: &Interactions,
        dim: usize,
        layers: usize,
        init_std: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if dim == 0 {
            return Err(ModelError::InvalidConfig("dim must be > 0".into()));
        }
        if layers == 0 {
            return Err(ModelError::InvalidConfig(
                "layers must be ≥ 1 (0 layers is plain MF)".into(),
            ));
        }
        let adj = NormAdjacency::from_interactions(train);
        let n_nodes = adj.n_nodes();
        let base = Embedding::normal_init(n_nodes, dim, init_std, rng)?;
        let sz = n_nodes * dim;
        let mut model = Self {
            adj,
            dim,
            layers,
            base: base.as_slice().to_vec(),
            final_emb: vec![0.0; sz],
            grad: vec![0.0; sz],
            touched: Vec::new(),
            stale: true,
            buf_a: vec![0.0; sz],
            buf_b: vec![0.0; sz],
        };
        model.refresh();
        Ok(model)
    }

    /// Node id of item `i` in the packed node space.
    #[inline]
    fn item_node(&self, i: u32) -> usize {
        (self.adj.n_users() + i) as usize
    }

    /// Recomputes `final_emb = (1/(K+1)) Σ_k Ãᵏ base`.
    pub fn refresh(&mut self) {
        propagate_mean(
            &self.adj,
            &self.base,
            self.layers,
            self.dim,
            &mut self.final_emb,
            &mut self.buf_a,
            &mut self.buf_b,
        );
        self.stale = false;
    }

    /// Number of propagation layers `K`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Whether the propagated embeddings are stale (a base-embedding update
    /// has been applied since the last [`LightGcn::refresh`]). Scores and
    /// snapshots must only be read when this is `false`.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Final (propagated) embedding of a node — users first, then items.
    pub fn final_embedding(&self, node: usize) -> &[f32] {
        &self.final_emb[node * self.dim..(node + 1) * self.dim]
    }

    /// Base embedding of a node (for tests).
    pub fn base_embedding(&self, node: usize) -> &[f32] {
        &self.base[node * self.dim..(node + 1) * self.dim]
    }

    /// Mutable base embedding (for gradient-check tests).
    pub fn base_embedding_mut(&mut self, node: usize) -> &mut [f32] {
        self.stale = true;
        &mut self.base[node * self.dim..(node + 1) * self.dim]
    }

    fn add_grad(&mut self, node: usize, coeff: f32, from: usize) {
        // grad[node] += coeff · final_emb[from]
        let d = self.dim;
        if self.grad[node * d..(node + 1) * d]
            .iter()
            .all(|&x| x == 0.0)
        {
            self.touched.push(node as u32);
        }
        for k in 0..d {
            self.grad[node * d + k] += coeff * self.final_emb[from * d + k];
        }
    }

    fn add_grad_diff(&mut self, node: usize, coeff: f32, a: usize, b: usize) {
        // grad[node] += coeff · (final_emb[a] − final_emb[b])
        let d = self.dim;
        if self.grad[node * d..(node + 1) * d]
            .iter()
            .all(|&x| x == 0.0)
        {
            self.touched.push(node as u32);
        }
        for k in 0..d {
            self.grad[node * d + k] +=
                coeff * (self.final_emb[a * d + k] - self.final_emb[b * d + k]);
        }
    }
}

/// `out = (1/(K+1)) Σ_{k=0..K} Ãᵏ src`, using two scratch buffers.
fn propagate_mean(
    adj: &NormAdjacency,
    src: &[f32],
    layers: usize,
    dim: usize,
    out: &mut [f32],
    buf_a: &mut Vec<f32>,
    buf_b: &mut Vec<f32>,
) {
    out.copy_from_slice(src); // layer 0
    buf_a.copy_from_slice(src);
    for k in 0..layers {
        // buf_b = Ã buf_a; out += buf_b
        adj.propagate(buf_a, buf_b, dim);
        for (o, &b) in out.iter_mut().zip(buf_b.iter()) {
            *o += b;
        }
        if k + 1 < layers {
            std::mem::swap(buf_a, buf_b);
        }
    }
    let scale = 1.0 / (layers as f32 + 1.0);
    for o in out.iter_mut() {
        *o *= scale;
    }
}

impl Scorer for LightGcn {
    fn n_users(&self) -> u32 {
        self.adj.n_users()
    }

    fn n_items(&self) -> u32 {
        self.adj.n_items()
    }

    #[inline]
    fn score(&self, u: u32, i: u32) -> f32 {
        debug_assert!(
            !self.stale,
            "scores read from a stale LightGCN; call refresh()"
        );
        let d = self.dim;
        let un = u as usize;
        let inn = self.item_node(i);
        Embedding::dot(
            &self.final_emb[un * d..(un + 1) * d],
            &self.final_emb[inn * d..(inn + 1) * d],
        )
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        debug_assert!(
            !self.stale,
            "scores read from a stale LightGCN; call refresh()"
        );
        debug_assert_eq!(out.len(), self.n_items() as usize);
        let d = self.dim;
        let un = u as usize;
        let user_row = &self.final_emb[un * d..(un + 1) * d];
        let items_start = self.adj.n_users() as usize;
        for (i, slot) in out.iter_mut().enumerate() {
            let node = items_start + i;
            *slot = Embedding::dot(user_row, &self.final_emb[node * d..(node + 1) * d]);
        }
    }
}

impl PairwiseModel for LightGcn {
    fn begin_epoch(&mut self, _epoch: usize) {
        if self.stale {
            self.refresh();
        }
    }

    fn begin_batch(&mut self) {
        debug_assert!(self.touched.is_empty(), "unfinished previous batch");
    }

    fn accumulate_triple(&mut self, u: u32, pos: u32, neg: u32, _lr: f32, _reg: f32) -> f32 {
        debug_assert_ne!(pos, neg, "positive and negative item must differ");
        let g = info(self.score(u, pos), self.score(u, neg));
        let un = u as usize;
        let pn = self.item_node(pos);
        let nn = self.item_node(neg);
        // Ascent direction of ln σ(x̂ᵤᵢ − x̂ᵤⱼ) w.r.t. final embeddings.
        self.add_grad_diff(un, g, pn, nn);
        self.add_grad(pn, g, un);
        self.add_grad(nn, -g, un);
        g
    }

    /// The [`TripleBatch`] path: gradients accumulate sparsely exactly as
    /// in [`PairwiseModel::accumulate_triple`], but `x̂ᵤᵢ` is computed once
    /// per row group instead of once per negative (the propagated
    /// embeddings are frozen between [`LightGcn::refresh`] calls, so the
    /// value is identical — `k = 1` rows are bitwise the default path).
    fn update_batch(&mut self, batch: &TripleBatch, _lr: f32, _reg: f32, infos: &mut Vec<f32>) {
        infos.clear();
        infos.reserve(batch.n_triples());
        for (row, (&u, &pos)) in batch.users().iter().zip(batch.pos()).enumerate() {
            let s_pos = self.score(u, pos);
            let un = u as usize;
            let pn = self.item_node(pos);
            for &neg in batch.negs_of(row) {
                debug_assert_ne!(pos, neg, "positive and negative item must differ");
                let g = info(s_pos, self.score(u, neg));
                let nn = self.item_node(neg);
                self.add_grad_diff(un, g, pn, nn);
                self.add_grad(pn, g, un);
                self.add_grad(nn, -g, un);
                infos.push(g);
            }
        }
    }

    fn end_batch(&mut self, lr: f32, reg: f32) {
        if self.touched.is_empty() {
            return;
        }
        // Backward: grad_base = (1/(K+1)) Σ_k Ãᵏ grad  (Ã symmetric).
        let n = self.adj.n_nodes();
        let d = self.dim;
        let mut grad_base = vec![0.0f32; n * d];
        propagate_mean(
            &self.adj,
            &self.grad,
            self.layers,
            d,
            &mut grad_base,
            &mut self.buf_a,
            &mut self.buf_b,
        );
        // SGD ascent step with L2 on the batch's ego (base) embeddings only,
        // matching the reference implementation's regularization.
        for (b, &g) in self.base.iter_mut().zip(grad_base.iter()) {
            *b += lr * g;
        }
        for &node in &self.touched {
            let row = &mut self.base[node as usize * d..(node as usize + 1) * d];
            for v in row.iter_mut() {
                *v -= lr * reg * *v;
            }
        }
        // Zero the sparse grad rows and refresh the propagated embeddings.
        for &node in &self.touched {
            self.grad[node as usize * d..(node as usize + 1) * d].fill(0.0);
        }
        self.touched.clear();
        self.refresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_train() -> Interactions {
        Interactions::from_pairs(3, 4, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3)]).unwrap()
    }

    fn model(layers: usize, seed: u64) -> LightGcn {
        let mut rng = StdRng::seed_from_u64(seed);
        LightGcn::new(&tiny_train(), 4, layers, 0.1, &mut rng).unwrap()
    }

    #[test]
    fn construction_and_shapes() {
        let m = model(1, 0);
        assert_eq!(m.n_users(), 3);
        assert_eq!(m.n_items(), 4);
        assert_eq!(m.layers(), 1);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn rejects_bad_config() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(LightGcn::new(&tiny_train(), 0, 1, 0.1, &mut rng).is_err());
        assert!(LightGcn::new(&tiny_train(), 4, 0, 0.1, &mut rng).is_err());
    }

    #[test]
    fn final_embeddings_average_layers() {
        // For K = 1: final = (base + Ã base) / 2. Check one node by hand.
        let m = model(1, 1);
        let n = m.adj.n_nodes();
        let d = m.dim;
        let mut prop = vec![0.0f32; n * d];
        m.adj.propagate(&m.base, &mut prop, d);
        for (v, &p) in prop.iter().enumerate().take(n * d) {
            let expected = (m.base[v] + p) / 2.0;
            assert!((m.final_emb[v] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn score_all_matches_score() {
        let m = model(2, 2);
        let mut out = vec![0.0f32; 4];
        m.score_all(1, &mut out);
        for i in 0..4u32 {
            assert!((out[i as usize] - m.score(1, i)).abs() < 1e-7);
        }
    }

    #[test]
    fn batch_training_widens_margin() {
        let mut m = model(1, 3);
        let (u, pos, neg) = (0u32, 0u32, 3u32);
        let before = m.score(u, pos) - m.score(u, neg);
        for _ in 0..30 {
            m.begin_batch();
            m.accumulate_triple(u, pos, neg, 0.0, 0.0);
            m.end_batch(0.1, 0.0);
        }
        let after = m.score(u, pos) - m.score(u, neg);
        assert!(after > before + 0.1, "margin {before} → {after}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Exactness check of the transposed-propagation backward pass: for
        // the scalar loss L = lnσ(x̂(u,p) − x̂(u,q)), compare the analytic
        // base-embedding gradient against central finite differences.
        let mut m = model(2, 4);
        let (u, pos, neg) = (1u32, 0u32, 3u32);

        // Analytic gradient: run one batch with lr = 1, reg = 0 on a copy
        // whose update equals +grad_base exactly.
        let mut analytic = m.clone();
        analytic.begin_batch();
        analytic.accumulate_triple(u, pos, neg, 0.0, 0.0);
        let base_before = analytic.base.clone();
        analytic.end_batch(1.0, 0.0);
        let grad_analytic: Vec<f32> = analytic
            .base
            .iter()
            .zip(&base_before)
            .map(|(a, b)| a - b)
            .collect();

        // Finite differences on a few random coordinates.
        let loss = |m: &mut LightGcn| -> f64 {
            m.refresh();
            crate::loss::bpr_log_likelihood(m.score(u, pos), m.score(u, neg)) as f64
        };
        let eps = 1e-3f32;
        for &coord in &[0usize, 5, 11, 17, 23] {
            let orig = m.base[coord];
            m.base[coord] = orig + eps;
            let up = loss(&mut m);
            m.base[coord] = orig - eps;
            let down = loss(&mut m);
            m.base[coord] = orig;
            m.refresh();
            let numeric = (up - down) / (2.0 * eps as f64);
            let analytic_g = grad_analytic[coord] as f64;
            assert!(
                (numeric - analytic_g).abs() < 2e-3,
                "coord {coord}: numeric {numeric} vs analytic {analytic_g}"
            );
        }
    }

    #[test]
    fn end_batch_clears_gradient_state() {
        let mut m = model(1, 5);
        m.begin_batch();
        m.accumulate_triple(0, 0, 2, 0.0, 0.0);
        m.end_batch(0.01, 0.0);
        assert!(m.touched.is_empty());
        assert!(m.grad.iter().all(|&g| g == 0.0));
        // A second batch must not panic on the debug assert.
        m.begin_batch();
        m.accumulate_triple(1, 1, 3, 0.0, 0.0);
        m.end_batch(0.01, 0.0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut m = model(1, 6);
        let before = m.base.clone();
        m.begin_batch();
        m.end_batch(0.1, 0.1);
        assert_eq!(m.base, before);
    }

    #[test]
    fn regularization_targets_touched_rows() {
        let mut m = model(1, 7);
        let untouched_node = 2usize; // user 2 not in the triple below
        let before = m.base_embedding(untouched_node).to_vec();
        m.begin_batch();
        m.accumulate_triple(0, 0, 3, 0.0, 0.0);
        m.end_batch(0.0, 0.9); // lr 0: only the reg term could move rows
        assert_eq!(m.base_embedding(untouched_node), &before[..]);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = model(1, 9);
        let b = model(1, 9);
        assert_eq!(a.score(0, 0), b.score(0, 0));
    }
}
