//! BPR loss pieces shared by models and samplers.

/// Numerically stable logistic sigmoid `σ(x) = 1 / (1 + e^{−x})`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// The paper's informativeness measure (Eq. 4):
/// `info(j) = 1 − σ(x̂ᵤᵢ − x̂ᵤⱼ)` — the BPR gradient magnitude contributed by
/// the triple `(u, i, j)`.
#[inline]
pub fn info(score_pos: f32, score_neg: f32) -> f32 {
    1.0 - sigmoid(score_pos - score_neg)
}

/// BPR log-likelihood term `ln σ(x̂ᵤᵢ − x̂ᵤⱼ)` (Eq. 1), computed stably via
/// `ln σ(x) = −softplus(−x)`.
#[inline]
pub fn bpr_log_likelihood(score_pos: f32, score_neg: f32) -> f32 {
    let x = score_pos - score_neg;
    -softplus(-x)
}

/// Numerically stable `softplus(x) = ln(1 + e^x)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_reference_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(2.0) - 0.880_797).abs() < 1e-5);
        assert!((sigmoid(-2.0) - 0.119_203).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1f32, 1.0, 3.0, 10.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_saturation_is_stable() {
        assert_eq!(sigmoid(100.0), 1.0);
        assert!(sigmoid(-100.0) < 1e-40);
        assert!(sigmoid(1e10).is_finite());
        assert!(sigmoid(-1e10).is_finite());
    }

    #[test]
    fn info_semantics() {
        // Equal scores: gradient magnitude 1/2.
        assert!((info(1.0, 1.0) - 0.5).abs() < 1e-7);
        // Positive scored far above negative: gradient vanishes (the paper's
        // "excessively small x̂ᵤⱼ ⇒ info → 0").
        assert!(info(10.0, -10.0) < 1e-6);
        // Negative scored far above positive: info → 1 (hard negative).
        assert!(info(-10.0, 10.0) > 1.0 - 1e-6);
        // info is decreasing in (pos − neg).
        assert!(info(1.0, 0.0) < info(0.5, 0.0));
    }

    #[test]
    fn bpr_likelihood_matches_naive() {
        for &(p, n) in &[(1.0f32, 0.0f32), (0.0, 1.0), (3.0, -2.0)] {
            let naive = (sigmoid(p - n) as f64).ln();
            assert!((bpr_log_likelihood(p, n) as f64 - naive).abs() < 1e-6);
        }
    }

    #[test]
    fn bpr_likelihood_extremes_finite() {
        assert!(bpr_log_likelihood(-100.0, 100.0).is_finite());
        assert!(bpr_log_likelihood(100.0, -100.0) <= 0.0);
    }

    #[test]
    fn softplus_positive_and_monotone() {
        assert!(softplus(-5.0) > 0.0);
        assert!(softplus(0.0) > softplus(-1.0));
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        // For large x, softplus(x) ≈ x.
        assert!((softplus(50.0) - 50.0).abs() < 1e-4);
    }
}
