//! Model traits: read-only scoring and pairwise training.
//!
//! Negative samplers and the evaluation protocol only need scores, so they
//! work against [`Scorer`]. The training loop (Algorithm 1 of the paper,
//! implemented in `bns-core::trainer`) additionally needs BPR updates and
//! batch hooks, provided by [`PairwiseModel`].

use crate::batch::TripleBatch;

/// Read-only access to predicted scores `x̂ᵤᵢ`.
pub trait Scorer {
    /// Number of users in the model.
    fn n_users(&self) -> u32;

    /// Number of items in the model.
    fn n_items(&self) -> u32;

    /// Predicted score of a single `(user, item)` pair.
    fn score(&self, u: u32, i: u32) -> f32;

    /// Fills `out` (length `n_items`) with user `u`'s scores for every item
    /// — the "rating vector x̂ᵤ" of Algorithm 1, line 4. Implementations
    /// should specialize this; the default loops over [`Scorer::score`].
    fn score_all(&self, u: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.n_items() as usize);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.score(u, i as u32);
        }
    }

    /// Fills `out[k]` with user `u`'s score for `items[k]` — the batched
    /// gather-dot behind `ScoreAccess::Candidates` samplers, which score a
    /// handful of specific items instead of the whole catalog.
    ///
    /// Repeated ids are allowed (each slot is filled independently).
    /// Implementations must produce values bitwise identical to
    /// [`Scorer::score`] / [`Scorer::score_all`] for the same `(u, item)`,
    /// so samplers can mix the three access paths freely; the default
    /// loops over [`Scorer::score`], which satisfies that by construction.
    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        debug_assert_eq!(items.len(), out.len(), "one output slot per item");
        for (slot, &i) in out.iter_mut().zip(items) {
            *slot = self.score(u, i);
        }
    }
}

/// A model trainable with pairwise BPR updates.
///
/// The batch protocol mirrors mini-batch training: the trainer calls
/// [`PairwiseModel::begin_batch`], then [`PairwiseModel::update_batch`]
/// with the sampled [`TripleBatch`], then [`PairwiseModel::end_batch`].
/// MF (trained with batch size 1 in the paper) applies updates immediately
/// inside `update_batch` through the blocked kernel path; LightGCN
/// accumulates gradients on the propagated embeddings and backpropagates
/// once per batch.
pub trait PairwiseModel: Scorer {
    /// Called once per epoch before any batch (LightGCN refreshes its
    /// propagated embeddings here; MF is a no-op).
    fn begin_epoch(&mut self, epoch: usize);

    /// Called before each mini-batch.
    fn begin_batch(&mut self);

    /// Processes one training triple `(u, i, j)` and returns the
    /// informativeness `info(j) = 1 − σ(x̂ᵤᵢ − x̂ᵤⱼ)` of the sampled
    /// negative (Eq. 4), which the quality probes record.
    fn accumulate_triple(&mut self, u: u32, pos: u32, neg: u32, lr: f32, reg: f32) -> f32;

    /// Processes one sampled [`TripleBatch`], pushing `info(j)` (Eq. 4) for
    /// every applied triple into `infos` in row-major `(row, neg-slot)`
    /// order — `batch.n_triples()` values total.
    ///
    /// The default loops [`PairwiseModel::accumulate_triple`] over every
    /// `(u, i, jₜ)` of the batch, which preserves per-triple sequential-SGD
    /// semantics exactly. Models with a cheaper blocked path (MF gathers
    /// each row group's scores in one kernel pass) override it; overrides
    /// must stay bitwise identical to the default at `k = 1`, which is
    /// the contract `tests/trainer_repro_guard.rs` leans on.
    fn update_batch(&mut self, batch: &TripleBatch, lr: f32, reg: f32, infos: &mut Vec<f32>) {
        infos.clear();
        infos.reserve(batch.n_triples());
        for (u, pos, negs) in batch.iter() {
            for &neg in negs {
                infos.push(self.accumulate_triple(u, pos, neg, lr, reg));
            }
        }
    }

    /// Called after each mini-batch; applies accumulated gradients.
    fn end_batch(&mut self, lr: f32, reg: f32);

    /// Mean BPR log-likelihood over the given triples (diagnostics).
    fn mean_bpr_ll(&self, triples: &[(u32, u32, u32)]) -> f64 {
        if triples.is_empty() {
            return 0.0;
        }
        triples
            .iter()
            .map(|&(u, i, j)| {
                crate::loss::bpr_log_likelihood(self.score(u, i), self.score(u, j)) as f64
            })
            .sum::<f64>()
            / triples.len() as f64
    }
}

/// A fixed score table, useful for deterministic tests of samplers and
/// metrics (also used by the Fig. 3 harness where scores are synthetic).
#[derive(Debug, Clone)]
pub struct FixedScorer {
    n_users: u32,
    n_items: u32,
    /// Row-major `n_users × n_items` scores.
    scores: Vec<f32>,
}

impl FixedScorer {
    /// Wraps a dense score table.
    pub fn new(n_users: u32, n_items: u32, scores: Vec<f32>) -> Self {
        assert_eq!(
            scores.len(),
            n_users as usize * n_items as usize,
            "score table shape mismatch"
        );
        Self {
            n_users,
            n_items,
            scores,
        }
    }

    /// Mutable access for test setup.
    pub fn set(&mut self, u: u32, i: u32, s: f32) {
        self.scores[u as usize * self.n_items as usize + i as usize] = s;
    }
}

impl Scorer for FixedScorer {
    fn n_users(&self) -> u32 {
        self.n_users
    }

    fn n_items(&self) -> u32 {
        self.n_items
    }

    fn score(&self, u: u32, i: u32) -> f32 {
        self.scores[u as usize * self.n_items as usize + i as usize]
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        let row = &self.scores
            [u as usize * self.n_items as usize..(u as usize + 1) * self.n_items as usize];
        out.copy_from_slice(row);
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        let row = &self.scores
            [u as usize * self.n_items as usize..(u as usize + 1) * self.n_items as usize];
        for (slot, &i) in out.iter_mut().zip(items) {
            *slot = row[i as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_scorer_round_trip() {
        let mut s = FixedScorer::new(2, 3, vec![0.0; 6]);
        s.set(1, 2, 4.5);
        assert_eq!(s.score(1, 2), 4.5);
        assert_eq!(s.score(0, 0), 0.0);
        let mut out = vec![0.0f32; 3];
        s.score_all(1, &mut out);
        assert_eq!(out, vec![0.0, 0.0, 4.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn fixed_scorer_validates_shape() {
        FixedScorer::new(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn default_score_all_matches_score() {
        // A scorer that only implements `score`.
        struct Diag;
        impl Scorer for Diag {
            fn n_users(&self) -> u32 {
                1
            }
            fn n_items(&self) -> u32 {
                4
            }
            fn score(&self, _u: u32, i: u32) -> f32 {
                i as f32 * 2.0
            }
        }
        let mut out = vec![0.0f32; 4];
        Diag.score_all(0, &mut out);
        assert_eq!(out, vec![0.0, 2.0, 4.0, 6.0]);
    }
}
