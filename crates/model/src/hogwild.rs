//! Lock-free shared model storage for hogwild-style parallel SGD.
//!
//! BPR training with batch size 1 (the paper's MF setup) has exactly the
//! sparse-update structure Hogwild! (Niu et al., NIPS 2011) exploits: each
//! triple `(u, i, j)` touches one user row and two item rows, so concurrent
//! workers collide rarely and lost updates merely add sampling noise of the
//! same order as SGD noise itself.
//!
//! Rust forbids plain data races, so the shared tables store their values
//! in [`AtomicF32Cell`]s — the `bns-sync` facade type whose load/store are
//! relaxed-atomic f32 bit patterns. On mainstream ISAs a relaxed atomic
//! load/store compiles to an ordinary `mov`, which keeps the hot path
//! within a few percent of the serial [`Embedding`] path while staying
//! free of undefined behavior. Read-modify-write sequences are
//! intentionally *not* atomic — a racing worker may overwrite a concurrent
//! update, which is precisely the hogwild contract (and exactly what the
//! `bns-check` hogwild scenarios pin down under the model checker).
//!
//! [`HogwildMf`] wraps two [`AtomicEmbedding`] tables into a matrix-
//! factorization model that is [`Sync`], scoreable from any thread, and
//! updatable through `&self`. Convert from/to the serial
//! [`MatrixFactorization`] at the edges of a parallel training run.

use crate::batch::TripleBatch;
use crate::embedding::Embedding;
use crate::loss::info;
use crate::mf::MatrixFactorization;
use crate::scorer::Scorer;
use bns_sync::AtomicF32Cell;

/// An `n × dim` table of `f32` embeddings stored as relaxed-atomic cells,
/// shareable across threads for hogwild updates.
#[derive(Debug)]
pub struct AtomicEmbedding {
    data: Vec<AtomicF32Cell>,
    n: usize,
    dim: usize,
}

impl AtomicEmbedding {
    /// Copies a serial embedding table into atomic storage.
    pub fn from_embedding(e: &Embedding) -> Self {
        Self {
            data: e
                .as_slice()
                .iter()
                .map(|&x| AtomicF32Cell::new(x))
                .collect(),
            n: e.len(),
            dim: e.dim(),
        }
    }

    /// Copies the atomic table back into a serial [`Embedding`].
    ///
    /// Callers should ensure no concurrent writers remain (e.g. after the
    /// training scope has joined); a racing writer would not be unsound,
    /// but the snapshot would mix epochs.
    pub fn to_embedding(&self) -> Embedding {
        let data: Vec<f32> = self.data.iter().map(|cell| cell.load()).collect();
        Embedding::from_vec(self.n, self.dim, data).expect("shape preserved by construction")
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reads element `(i, k)` with relaxed ordering.
    #[inline]
    pub fn get(&self, i: usize, k: usize) -> f32 {
        debug_assert!(i < self.n && k < self.dim, "index out of range");
        self.data[i * self.dim + k].load()
    }

    /// Writes element `(i, k)` with relaxed ordering.
    #[inline]
    pub fn set(&self, i: usize, k: usize, v: f32) {
        debug_assert!(i < self.n && k < self.dim, "index out of range");
        self.data[i * self.dim + k].store(v);
    }

    /// Copies row `i` into `out` (length `dim`).
    pub fn read_row(&self, i: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        for (slot, cell) in out.iter_mut().zip(self.row(i)) {
            *slot = cell.load();
        }
    }

    /// Row `i` as a slice of atomic cells (the zero-bounds-check access
    /// the update/scoring hot paths iterate over).
    #[inline]
    fn row(&self, i: usize) -> &[AtomicF32Cell] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Dot product of row `i` of `self` with row `j` of `other`.
    ///
    /// Snapshots row `i` once, then runs the unrolled
    /// [`crate::kernel::dot_atomic`] — the same summation order as every
    /// other scoring path, so hogwild scores agree bitwise with the serial
    /// [`Embedding`] path for equal values.
    #[inline]
    pub fn dot_rows(&self, i: usize, other: &AtomicEmbedding, j: usize) -> f32 {
        debug_assert_eq!(self.dim, other.dim);
        self.with_row_snapshot(i, |row| crate::kernel::dot_atomic(row, other.row(j)))
    }

    /// Copies row `i` into a stack buffer (heap only beyond d = 64, above
    /// the paper's d = 32) and hands it to `f`.
    #[inline]
    fn with_row_snapshot<R>(&self, i: usize, f: impl FnOnce(&[f32]) -> R) -> R {
        let mut stack = [0.0f32; 64];
        if self.dim <= stack.len() {
            self.read_row(i, &mut stack[..self.dim]);
            f(&stack[..self.dim])
        } else {
            let mut heap = vec![0.0f32; self.dim];
            self.read_row(i, &mut heap);
            f(&heap)
        }
    }
}

/// A matrix-factorization model in hogwild (shared, lock-free) storage.
///
/// Implements [`Scorer`] through `&self`, so negative samplers and epoch-end
/// evaluation work unchanged against the shared state, and exposes
/// [`HogwildMf::apply_triple`] — the same BPR update as
/// [`MatrixFactorization`], applied through `&self` so any number of worker
/// threads can train concurrently.
#[derive(Debug)]
pub struct HogwildMf {
    users: AtomicEmbedding,
    items: AtomicEmbedding,
}

impl HogwildMf {
    /// Snapshots a serial MF model into shared hogwild storage.
    pub fn from_mf(mf: &MatrixFactorization) -> Self {
        Self {
            users: AtomicEmbedding::from_embedding(mf.users()),
            items: AtomicEmbedding::from_embedding(mf.items()),
        }
    }

    /// Snapshots the shared state back into a serial MF model.
    pub fn to_mf(&self) -> MatrixFactorization {
        MatrixFactorization::from_embeddings(self.users.to_embedding(), self.items.to_embedding())
            .expect("shapes preserved by construction")
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.users.dim()
    }

    /// The shared user table.
    pub fn users(&self) -> &AtomicEmbedding {
        &self.users
    }

    /// The shared item table.
    pub fn items(&self) -> &AtomicEmbedding {
        &self.items
    }

    /// One BPR SGD step for the triple `(u, pos, neg)` through `&self`.
    ///
    /// Identical arithmetic to
    /// [`MatrixFactorization`]'s `accumulate_triple` (Rendle et al.'s
    /// update, see `crates/model/src/mf.rs`); returns `info(j)` (Eq. 4).
    /// Under concurrency the read-modify-write is racy by design: a
    /// colliding worker may overwrite a component, which hogwild tolerates.
    pub fn apply_triple(&self, u: u32, pos: u32, neg: u32, lr: f32, reg: f32) -> f32 {
        debug_assert_ne!(pos, neg, "positive and negative item must differ");
        let g = info(self.score(u, pos), self.score(u, neg));
        let wu = self.users.row(u as usize);
        let hi = self.items.row(pos as usize);
        let hj = self.items.row(neg as usize);
        for ((wc, ic), jc) in wu.iter().zip(hi).zip(hj) {
            let wuk = wc.load();
            let hik = ic.load();
            let hjk = jc.load();
            wc.store(wuk + lr * (g * (hik - hjk) - reg * wuk));
            ic.store(hik + lr * (g * wuk - reg * hik));
            jc.store(hjk + lr * (-g * wuk - reg * hjk));
        }
        g
    }

    /// Applies a whole sampled [`TripleBatch`] through `&self`, pushing
    /// `info(j)` per applied triple into `infos` (row-major, the same
    /// order as `PairwiseModel::update_batch`).
    ///
    /// * `k = 1` rows go through [`HogwildMf::apply_triple`] — the exact
    ///   serial arithmetic, so a 1-thread hogwild run stays bitwise equal
    ///   to the serial engine (`tests/parallel_equivalence.rs`).
    /// * `k > 1` rows apply the same multi-negative group step as the
    ///   blocked `MatrixFactorization::update_batch` (scores and gradients
    ///   against the group's pre-update snapshot), with **batched atomic
    ///   stores**: the user row is snapshotted once and written back once
    ///   per group instead of once per triple, cutting the group's atomic
    ///   write traffic on `wᵤ` from `k·d` to `d`.
    ///
    /// `scratch` holds the reusable gather buffers so worker loops stay
    /// allocation-free in steady state.
    pub fn apply_batch(
        &self,
        batch: &TripleBatch,
        lr: f32,
        reg: f32,
        infos: &mut Vec<f32>,
        scratch: &mut HogwildScratch,
    ) {
        infos.clear();
        infos.reserve(batch.n_triples());
        let k = batch.k();
        for (row, (&u, &pos)) in batch.users().iter().zip(batch.pos()).enumerate() {
            let negs = batch.negs_of(row);
            if k == 1 {
                infos.push(self.apply_triple(u, pos, negs[0], lr, reg));
                continue;
            }
            // Snapshot the user row once for the whole group.
            let dim = self.users.dim();
            scratch.wu0.resize(dim, 0.0);
            self.users.read_row(u as usize, &mut scratch.wu0);
            // One gather for pos + negatives (bitwise equal to score()).
            let s_pos = crate::kernel::dot_atomic(&scratch.wu0, self.items.row(pos as usize));
            scratch.gs.clear();
            let mut g_sum = 0.0f32;
            for &neg in negs {
                debug_assert_ne!(pos, neg, "positive and negative item must differ");
                let s_neg = crate::kernel::dot_atomic(&scratch.wu0, self.items.row(neg as usize));
                let g = info(s_pos, s_neg);
                scratch.gs.push(g);
                g_sum += g;
                infos.push(g);
            }
            // wᵤ: summed gradient, one atomic store per dimension.
            let wu = self.users.row(u as usize);
            let hi = self.items.row(pos as usize);
            for (d, wc) in wu.iter().enumerate() {
                let hid = hi[d].load();
                let mut acc = 0.0f32;
                for (t, &neg) in negs.iter().enumerate() {
                    let hjd = self.items.row(neg as usize)[d].load();
                    acc += scratch.gs[t] * (hid - hjd);
                }
                let w0 = scratch.wu0[d];
                wc.store(w0 + lr * (acc - reg * w0));
            }
            // hᵢ: summed positive-side pull with the snapshot user row.
            for (d, ic) in hi.iter().enumerate() {
                let hid = ic.load();
                ic.store(hid + lr * (g_sum * scratch.wu0[d] - reg * hid));
            }
            // hⱼₜ: one push per negative, sequential so duplicates stack.
            for (t, &neg) in negs.iter().enumerate() {
                let g = scratch.gs[t];
                let hj = self.items.row(neg as usize);
                for (d, jc) in hj.iter().enumerate() {
                    let hjd = jc.load();
                    jc.store(hjd + lr * (-g * scratch.wu0[d] - reg * hjd));
                }
            }
        }
    }
}

/// Reusable buffers for [`HogwildMf::apply_batch`]; one per worker thread.
#[derive(Debug, Default)]
pub struct HogwildScratch {
    gs: Vec<f32>,
    wu0: Vec<f32>,
}

impl Scorer for HogwildMf {
    fn n_users(&self) -> u32 {
        self.users.len() as u32
    }

    fn n_items(&self) -> u32 {
        self.items.len() as u32
    }

    #[inline]
    fn score(&self, u: u32, i: u32) -> f32 {
        self.users.dot_rows(u as usize, &self.items, i as usize)
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.items.len());
        // Snapshot the user row once, then stream the atomic item table
        // through the unrolled kernel (Algorithm 1 line 4, hogwild form).
        self.users.with_row_snapshot(u as usize, |wu| {
            for (slot, row) in out
                .iter_mut()
                .zip(self.items.data.chunks_exact(self.items.dim))
            {
                *slot = crate::kernel::dot_atomic(wu, row);
            }
        })
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        debug_assert_eq!(items.len(), out.len());
        self.users.with_row_snapshot(u as usize, |wu| {
            for (slot, &i) in out.iter_mut().zip(items) {
                *slot = crate::kernel::dot_atomic(wu, self.items.row(i as usize));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::PairwiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mf(seed: u64) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(seed);
        MatrixFactorization::new(4, 6, 8, 0.1, &mut rng).unwrap()
    }

    #[test]
    fn round_trip_preserves_bits() {
        let m = mf(0);
        let shared = HogwildMf::from_mf(&m);
        let back = shared.to_mf();
        for u in 0..4 {
            assert_eq!(m.user_embedding(u), back.user_embedding(u));
        }
        for i in 0..6 {
            assert_eq!(m.item_embedding(i), back.item_embedding(i));
        }
    }

    #[test]
    fn scores_match_serial_model() {
        let m = mf(1);
        let shared = HogwildMf::from_mf(&m);
        let mut serial = vec![0.0f32; 6];
        let mut hog = vec![0.0f32; 6];
        for u in 0..4 {
            m.score_all(u, &mut serial);
            shared.score_all(u, &mut hog);
            assert_eq!(serial, hog);
            for i in 0..6u32 {
                assert_eq!(m.score(u, i), shared.score(u, i));
            }
        }
    }

    #[test]
    fn apply_triple_matches_serial_update_bitwise() {
        let mut serial = mf(2);
        let shared = HogwildMf::from_mf(&serial);
        // Same sequence of updates on both representations.
        let triples = [(0u32, 1u32, 4u32), (1, 2, 5), (0, 0, 3), (3, 5, 1)];
        for &(u, pos, neg) in &triples {
            let a = serial.accumulate_triple(u, pos, neg, 0.05, 0.01);
            let b = shared.apply_triple(u, pos, neg, 0.05, 0.01);
            assert_eq!(a.to_bits(), b.to_bits(), "info diverged");
        }
        let back = shared.to_mf();
        for u in 0..4 {
            assert_eq!(serial.user_embedding(u), back.user_embedding(u));
        }
        for i in 0..6 {
            assert_eq!(serial.item_embedding(i), back.item_embedding(i));
        }
    }

    #[test]
    fn apply_batch_matches_serial_update_batch_bitwise() {
        // Single-threaded, the hogwild batch update must agree bit-for-bit
        // with the blocked serial path for both k = 1 and k > 1 groups.
        for k in [1usize, 3] {
            let mut serial = mf(7);
            let shared = HogwildMf::from_mf(&serial);
            let mut batch = TripleBatch::new();
            batch.begin_fill(k);
            let rows: [(u32, u32, [u32; 3]); 3] =
                [(0, 1, [4, 5, 2]), (2, 3, [0, 5, 4]), (0, 2, [3, 3, 1])];
            for &(u, pos, negs) in &rows {
                batch.push_row(u, pos).copy_from_slice(&negs[..k]);
            }
            let mut serial_infos = Vec::new();
            serial.update_batch(&batch, 0.05, 0.01, &mut serial_infos);
            let mut hog_infos = Vec::new();
            let mut scratch = HogwildScratch::default();
            shared.apply_batch(&batch, 0.05, 0.01, &mut hog_infos, &mut scratch);
            assert_eq!(serial_infos.len(), hog_infos.len());
            for (a, b) in serial_infos.iter().zip(&hog_infos) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k}: info diverged");
            }
            let back = shared.to_mf();
            for u in 0..4 {
                assert_eq!(serial.user_embedding(u), back.user_embedding(u), "k={k}");
            }
            for i in 0..6 {
                assert_eq!(serial.item_embedding(i), back.item_embedding(i), "k={k}");
            }
        }
    }

    #[test]
    fn concurrent_updates_keep_model_finite() {
        let m = mf(3);
        let shared = HogwildMf::from_mf(&m);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let shared = &shared;
                s.spawn(move || {
                    for step in 0..500u32 {
                        let u = (w + step) % 4;
                        let pos = step % 6;
                        let neg = (step + 1) % 6;
                        shared.apply_triple(u, pos, neg, 0.05, 0.01);
                    }
                });
            }
        });
        let back = shared.to_mf();
        assert!(back.sq_norm().is_finite());
    }

    #[test]
    fn atomic_embedding_accessors() {
        let e = Embedding::zeros(2, 3).unwrap();
        let a = AtomicEmbedding::from_embedding(&e);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dim(), 3);
        assert!(!a.is_empty());
        a.set(1, 2, 7.5);
        assert_eq!(a.get(1, 2), 7.5);
        let mut row = vec![0.0f32; 3];
        a.read_row(1, &mut row);
        assert_eq!(row, vec![0.0, 0.0, 7.5]);
    }
}
