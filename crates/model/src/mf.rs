//! Matrix factorization trained with BPR (the paper's first CF model).
//!
//! Scores are dot products `x̂ᵤᵢ = ⟨wᵤ, hᵢ⟩`. For a triple `(u, i, j)` the
//! BPR stochastic gradient step with learning rate `α` and L2 constant `λ`
//! is (Rendle et al., UAI 2009):
//!
//! ```text
//! g  = 1 − σ(x̂ᵤᵢ − x̂ᵤⱼ)          // = info(j), Eq. (4)
//! wᵤ += α (g·(hᵢ − hⱼ) − λ wᵤ)
//! hᵢ += α (g·wᵤ        − λ hᵢ)
//! hⱼ += α (−g·wᵤ       − λ hⱼ)
//! ```
//!
//! The paper trains MF with batch size 1, so updates are applied immediately
//! inside [`PairwiseModel::accumulate_triple`].

use crate::batch::TripleBatch;
use crate::embedding::Embedding;
use crate::loss::info;
use crate::scorer::{PairwiseModel, Scorer};
use crate::{ModelError, Result};
use rand::Rng;

/// BPR matrix factorization model.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    users: Embedding,
    items: Embedding,
    /// Reusable scratch of the blocked `update_batch` path (gather ids,
    /// gathered scores, per-triple gradients, the pre-update user row).
    scratch: BatchScratch,
}

/// Reusable buffers of the blocked batch update; steady-state
/// allocation-free once capacities are reached.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    ids: Vec<u32>,
    scores: Vec<f32>,
    gs: Vec<f32>,
    wu0: Vec<f32>,
}

impl MatrixFactorization {
    /// Creates a model with `N(0, init_std)` embeddings (paper: d = 32).
    pub fn new<R: Rng + ?Sized>(
        n_users: u32,
        n_items: u32,
        dim: usize,
        init_std: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if n_users == 0 || n_items == 0 {
            return Err(ModelError::InvalidConfig("need users and items".into()));
        }
        Ok(Self {
            users: Embedding::normal_init(n_users as usize, dim, init_std, rng)?,
            items: Embedding::normal_init(n_items as usize, dim, init_std, rng)?,
            scratch: BatchScratch::default(),
        })
    }

    /// Wraps existing user/item embedding tables into a model (used by the
    /// hogwild storage to convert back after a parallel run).
    pub fn from_embeddings(users: Embedding, items: Embedding) -> Result<Self> {
        if users.dim() != items.dim() {
            return Err(ModelError::ShapeMismatch(format!(
                "user dim {} != item dim {}",
                users.dim(),
                items.dim()
            )));
        }
        if users.is_empty() || items.is_empty() {
            return Err(ModelError::InvalidConfig("need users and items".into()));
        }
        Ok(Self {
            users,
            items,
            scratch: BatchScratch::default(),
        })
    }

    /// The full user embedding table.
    pub fn users(&self) -> &Embedding {
        &self.users
    }

    /// The full item embedding table.
    pub fn items(&self) -> &Embedding {
        &self.items
    }

    /// User embedding row.
    pub fn user_embedding(&self, u: u32) -> &[f32] {
        self.users.row(u as usize)
    }

    /// Item embedding row.
    pub fn item_embedding(&self, i: u32) -> &[f32] {
        self.items.row(i as usize)
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.users.dim()
    }

    /// Sum of squared embedding norms (diagnostic for regularization tests).
    pub fn sq_norm(&self) -> f64 {
        self.users.sq_norm() + self.items.sq_norm()
    }

    /// Mutable user row, exposed for gradient-check tests only.
    #[cfg(test)]
    pub(crate) fn users_mut_for_test(&mut self, u: u32) -> &mut [f32] {
        self.users.row_mut(u as usize)
    }

    /// One InfoNCE update for `(u, pos)` against `negs` (the contrastive
    /// extension the paper's §VI proposes: "generalize BNS to
    /// contrastive-based learning methods").
    ///
    /// Loss: `L = −ln( e^{s₊/τ} / (e^{s₊/τ} + Σₖ e^{sₖ/τ}) )` with
    /// `sⱼ = ⟨wᵤ, hⱼ⟩`. Gradients follow the softmax weights
    /// `wⱼ = e^{sⱼ/τ}/Z` over `{pos} ∪ negs`:
    /// `∂L/∂s₊ = (w₊ − 1)/τ`, `∂L/∂sₖ = wₖ/τ`.
    ///
    /// Returns the loss value. Repeated negatives are allowed (their
    /// gradients accumulate); `negs` must not contain `pos`.
    pub fn infonce_update(
        &mut self,
        u: u32,
        pos: u32,
        negs: &[u32],
        lr: f32,
        reg: f32,
        temperature: f32,
    ) -> f32 {
        debug_assert!(temperature > 0.0, "temperature must be positive");
        debug_assert!(!negs.is_empty(), "InfoNCE requires at least one negative");
        debug_assert!(!negs.contains(&pos), "negatives must exclude the positive");
        let tau = temperature;
        let dim = self.users.dim();

        // Stable softmax over {pos} ∪ negs.
        let s_pos = self.score(u, pos) / tau;
        let s_negs: Vec<f32> = negs.iter().map(|&j| self.score(u, j) / tau).collect();
        let max_logit = s_negs.iter().copied().fold(s_pos, f32::max);
        let e_pos = (s_pos - max_logit).exp();
        let e_negs: Vec<f32> = s_negs.iter().map(|&s| (s - max_logit).exp()).collect();
        let z = e_pos + e_negs.iter().sum::<f32>();
        let w_pos = e_pos / z;
        let loss = -(w_pos.max(f32::MIN_POSITIVE)).ln();

        // Gradient on the user embedding: Σⱼ ∂L/∂sⱼ · hⱼ / (nothing else).
        let mut user_grad = vec![0.0f32; dim];
        {
            let g_pos = (w_pos - 1.0) / tau;
            let h_pos = self.items.row(pos as usize);
            for (g, &h) in user_grad.iter_mut().zip(h_pos) {
                *g += g_pos * h;
            }
            for (k, &j) in negs.iter().enumerate() {
                let g_k = (e_negs[k] / z) / tau;
                let h_j = self.items.row(j as usize);
                for (g, &h) in user_grad.iter_mut().zip(h_j) {
                    *g += g_k * h;
                }
            }
        }

        // Item updates use the *pre-update* user embedding.
        let wu_snapshot: Vec<f32> = self.users.row(u as usize).to_vec();
        {
            let g_pos = (w_pos - 1.0) / tau;
            let h_pos = self.items.row_mut(pos as usize);
            for (k, h) in h_pos.iter_mut().enumerate() {
                *h -= lr * (g_pos * wu_snapshot[k] + reg * *h);
            }
        }
        for (k, &j) in negs.iter().enumerate() {
            let g_k = (e_negs[k] / z) / tau;
            let h_j = self.items.row_mut(j as usize);
            for (d, h) in h_j.iter_mut().enumerate() {
                *h -= lr * (g_k * wu_snapshot[d] + reg * *h);
            }
        }
        let wu = self.users.row_mut(u as usize);
        for (k, w) in wu.iter_mut().enumerate() {
            *w -= lr * (user_grad[k] + reg * *w);
        }
        loss
    }
}

impl Scorer for MatrixFactorization {
    fn n_users(&self) -> u32 {
        self.users.len() as u32
    }

    fn n_items(&self) -> u32 {
        self.items.len() as u32
    }

    #[inline]
    fn score(&self, u: u32, i: u32) -> f32 {
        Embedding::dot(self.users.row(u as usize), self.items.row(i as usize))
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.items.len());
        // Algorithm 1 line 4 (get rating vector x̂ᵤ): one streaming GEMV
        // over the contiguous item table with the unrolled kernel.
        crate::kernel::gemv(self.users.row(u as usize), self.items.as_slice(), out);
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        crate::kernel::gather_dots(
            self.users.row(u as usize),
            self.items.as_slice(),
            items,
            out,
        );
    }
}

impl PairwiseModel for MatrixFactorization {
    fn begin_epoch(&mut self, _epoch: usize) {}

    fn begin_batch(&mut self) {}

    fn accumulate_triple(&mut self, u: u32, pos: u32, neg: u32, lr: f32, reg: f32) -> f32 {
        debug_assert_ne!(pos, neg, "positive and negative item must differ");
        let g = info(self.score(u, pos), self.score(u, neg));
        let wu = self.users.row_mut(u as usize);
        let (hi, hj) = self.items.two_rows_mut(pos as usize, neg as usize);
        crate::kernel::bpr_step(wu, hi, hj, g, lr, reg);
        g
    }

    /// The blocked batch update: for every `(u, i, {j₁…jₖ})` row group the
    /// `k + 1` item scores are produced by **one** [`crate::kernel::gather_dots`]
    /// pass over the embedding rows instead of `2k` independent `score`
    /// calls, and the gradients are applied with the vectorized kernel
    /// step.
    ///
    /// * `k = 1` rows take the exact [`crate::kernel::bpr_step`] path of
    ///   [`PairwiseModel::accumulate_triple`] with bitwise-identical scores
    ///   (the kernel contract), so the batched trainer reproduces the
    ///   per-triple trace bit for bit — `tests/trainer_repro_guard.rs`.
    /// * `k > 1` rows apply the multi-negative BPR group step: all k + 1
    ///   scores and gradients `gₜ` are evaluated against the row group's
    ///   *pre-update* state, then `wᵤ` receives the summed gradient in one
    ///   write, `hᵢ` the summed positive-side pull, and each `hⱼₜ` its own
    ///   push (sequentially, so duplicate negatives accumulate). This is
    ///   standard mini-batch semantics over the negative group rather than
    ///   k sequential SGD steps.
    ///
    /// Row groups are processed sequentially: group 2's scores see group
    /// 1's updates, exactly like the per-triple loop at `k = 1`.
    fn update_batch(&mut self, batch: &TripleBatch, lr: f32, reg: f32, infos: &mut Vec<f32>) {
        infos.clear();
        infos.reserve(batch.n_triples());
        let k = batch.k();
        let dim = self.users.dim();
        for (row, (&u, &pos)) in batch.users().iter().zip(batch.pos()).enumerate() {
            let negs = batch.negs_of(row);
            // One gather for pos + negatives (bitwise equal to score()).
            self.scratch.ids.clear();
            self.scratch.ids.push(pos);
            self.scratch.ids.extend_from_slice(negs);
            self.scratch.scores.clear();
            self.scratch.scores.resize(k + 1, 0.0);
            crate::kernel::gather_dots(
                self.users.row(u as usize),
                self.items.as_slice(),
                &self.scratch.ids,
                &mut self.scratch.scores,
            );
            let s_pos = self.scratch.scores[0];
            if k == 1 {
                let neg = negs[0];
                debug_assert_ne!(pos, neg, "positive and negative item must differ");
                let g = info(s_pos, self.scratch.scores[1]);
                let wu = self.users.row_mut(u as usize);
                let (hi, hj) = self.items.two_rows_mut(pos as usize, neg as usize);
                crate::kernel::bpr_step(wu, hi, hj, g, lr, reg);
                infos.push(g);
                continue;
            }

            // Multi-negative group step against the pre-update state.
            self.scratch.gs.clear();
            let mut g_sum = 0.0f32;
            for &s_neg in &self.scratch.scores[1..] {
                let g = info(s_pos, s_neg);
                self.scratch.gs.push(g);
                g_sum += g;
                infos.push(g);
            }
            // Pre-update user row snapshot (hᵢ/hⱼ updates read it).
            self.scratch.wu0.clear();
            self.scratch
                .wu0
                .extend_from_slice(self.users.row(u as usize));
            // wᵤ: summed gradient over the group, pre-update item rows.
            {
                let items = self.items.as_slice();
                let wu = self.users.row_mut(u as usize);
                for (d, w) in wu.iter_mut().enumerate() {
                    let hid = items[pos as usize * dim + d];
                    let mut acc = 0.0f32;
                    for (t, &neg) in negs.iter().enumerate() {
                        acc += self.scratch.gs[t] * (hid - items[neg as usize * dim + d]);
                    }
                    *w += lr * (acc - reg * *w);
                }
            }
            // hᵢ: summed positive-side pull with the snapshot user row.
            {
                let hi = self.items.row_mut(pos as usize);
                for (d, h) in hi.iter_mut().enumerate() {
                    *h += lr * (g_sum * self.scratch.wu0[d] - reg * *h);
                }
            }
            // hⱼₜ: one push per negative, sequential so duplicates stack.
            for (t, &neg) in negs.iter().enumerate() {
                debug_assert_ne!(pos, neg, "positive and negative item must differ");
                let g = self.scratch.gs[t];
                let hj = self.items.row_mut(neg as usize);
                for (d, h) in hj.iter_mut().enumerate() {
                    *h += lr * (-g * self.scratch.wu0[d] - reg * *h);
                }
            }
        }
    }

    fn end_batch(&mut self, _lr: f32, _reg: f32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(seed);
        MatrixFactorization::new(4, 6, 8, 0.1, &mut rng).unwrap()
    }

    #[test]
    fn shapes() {
        let m = model(0);
        assert_eq!(m.n_users(), 4);
        assert_eq!(m.n_items(), 6);
        assert_eq!(m.dim(), 8);
    }

    #[test]
    fn rejects_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MatrixFactorization::new(0, 5, 8, 0.1, &mut rng).is_err());
        assert!(MatrixFactorization::new(5, 0, 8, 0.1, &mut rng).is_err());
        assert!(MatrixFactorization::new(5, 5, 0, 0.1, &mut rng).is_err());
    }

    #[test]
    fn score_all_matches_score() {
        let m = model(1);
        let mut out = vec![0.0f32; 6];
        m.score_all(2, &mut out);
        for i in 0..6 {
            assert_eq!(out[i as usize], m.score(2, i));
        }
    }

    #[test]
    fn update_widens_pairwise_margin() {
        let mut m = model(2);
        let (u, pos, neg) = (1u32, 2u32, 4u32);
        let before = m.score(u, pos) - m.score(u, neg);
        for _ in 0..50 {
            m.accumulate_triple(u, pos, neg, 0.1, 0.0);
        }
        let after = m.score(u, pos) - m.score(u, neg);
        assert!(after > before, "margin did not grow: {before} → {after}");
    }

    #[test]
    fn update_returns_info() {
        let mut m = model(3);
        let g = m.accumulate_triple(0, 1, 2, 0.0, 0.0); // lr 0: model unchanged
        let expected = crate::loss::info(m.score(0, 1), m.score(0, 2));
        assert!((g - expected).abs() < 1e-6);
        assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn regularization_shrinks_norms() {
        let mut m = model(4);
        let before = m.sq_norm();
        // Many high-reg, zero-gradient-ish updates shrink the touched rows.
        for _ in 0..200 {
            m.accumulate_triple(0, 1, 2, 0.1, 0.5);
        }
        // The model still learns, but with reg = 0.5 and repeated touching,
        // the touched rows stay bounded. Check no explosion.
        let after = m.sq_norm();
        assert!(after.is_finite());
        assert!(after < before * 100.0, "norms exploded: {before} → {after}");
    }

    #[test]
    fn training_separates_planted_preference() {
        // One user who likes item 0 (always positive) vs item 1 (always
        // negative): after training the score gap must be decisive.
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = MatrixFactorization::new(1, 2, 4, 0.1, &mut rng).unwrap();
        for _ in 0..300 {
            m.accumulate_triple(0, 0, 1, 0.05, 0.001);
        }
        assert!(m.score(0, 0) - m.score(0, 1) > 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = model(7);
        let b = model(7);
        assert_eq!(a.score(0, 0), b.score(0, 0));
        assert_eq!(a.user_embedding(3), b.user_embedding(3));
    }

    #[test]
    fn update_batch_k1_matches_sequential_triples_bitwise() {
        // The blocked path at k = 1 must be indistinguishable from looping
        // accumulate_triple — the repro-guard contract.
        let mut seq = model(20);
        let mut blocked = seq.clone();
        let rows = [(0u32, 1u32, 4u32), (1, 2, 5), (0, 0, 3), (3, 5, 1)];
        let mut seq_infos = Vec::new();
        for &(u, pos, neg) in &rows {
            seq_infos.push(seq.accumulate_triple(u, pos, neg, 0.05, 0.01));
        }
        let mut batch = TripleBatch::new();
        batch.begin_fill(1);
        for &(u, pos, neg) in &rows {
            batch.push_row(u, pos)[0] = neg;
        }
        let mut infos = Vec::new();
        blocked.update_batch(&batch, 0.05, 0.01, &mut infos);
        assert_eq!(infos.len(), seq_infos.len());
        for (a, b) in infos.iter().zip(&seq_infos) {
            assert_eq!(a.to_bits(), b.to_bits(), "info diverged");
        }
        for u in 0..4u32 {
            assert_eq!(seq.user_embedding(u), blocked.user_embedding(u));
        }
        for i in 0..6u32 {
            assert_eq!(seq.item_embedding(i), blocked.item_embedding(i));
        }
    }

    #[test]
    fn update_batch_multi_negative_widens_margins() {
        let mut m = model(21);
        let (u, pos) = (2u32, 3u32);
        let negs = [0u32, 1, 5];
        let before: f32 = negs.iter().map(|&j| m.score(u, pos) - m.score(u, j)).sum();
        let mut batch = TripleBatch::new();
        let mut infos = Vec::new();
        for _ in 0..60 {
            batch.begin_fill(negs.len());
            batch.push_row(u, pos).copy_from_slice(&negs);
            m.update_batch(&batch, 0.05, 0.001, &mut infos);
            assert_eq!(infos.len(), negs.len());
            for &g in &infos {
                assert!((0.0..=1.0).contains(&g));
            }
        }
        let after: f32 = negs.iter().map(|&j| m.score(u, pos) - m.score(u, j)).sum();
        assert!(after > before, "margins did not grow: {before} → {after}");
    }

    #[test]
    fn update_batch_duplicate_negatives_accumulate() {
        // A duplicated negative must receive both pushes — compare against
        // the same group with distinct negatives only through finiteness
        // and the doubled gradient on the duplicated row.
        let base = model(22);
        let mut once = base.clone();
        let mut twice = base.clone();
        let mut infos = Vec::new();
        let mut batch = TripleBatch::new();
        batch.begin_fill(2);
        batch.push_row(0, 1).copy_from_slice(&[4, 5]);
        once.update_batch(&batch, 0.1, 0.0, &mut infos);
        batch.begin_fill(2);
        batch.push_row(0, 1).copy_from_slice(&[4, 4]);
        twice.update_batch(&batch, 0.1, 0.0, &mut infos);
        let delta = |m: &MatrixFactorization, i: u32| -> f32 {
            m.item_embedding(i)
                .iter()
                .zip(base.item_embedding(i))
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(delta(&twice, 4) > delta(&once, 4) * 1.5);
    }

    #[test]
    fn infonce_loss_decreases_under_training() {
        let mut m = model(8);
        let (u, pos) = (0u32, 1u32);
        let negs = [2u32, 3, 4];
        let first = m.infonce_update(u, pos, &negs, 0.05, 0.0, 0.5);
        let mut last = first;
        for _ in 0..200 {
            last = m.infonce_update(u, pos, &negs, 0.05, 0.0, 0.5);
        }
        assert!(
            last < first,
            "InfoNCE loss did not decrease: {first} → {last}"
        );
        // The positive now dominates every negative.
        for &j in &negs {
            assert!(m.score(u, pos) > m.score(u, j));
        }
    }

    #[test]
    fn infonce_gradient_matches_finite_difference() {
        // Check ∂L/∂wᵤ[0] numerically: run one zero-lr pass to get the loss
        // function, then compare a lr-scaled parameter delta with the
        // central difference.
        let m0 = model(9);
        let (u, pos) = (1u32, 0u32);
        let negs = [2u32, 5];
        let tau = 0.7f32;
        let loss_at = |m: &MatrixFactorization| {
            // Recompute the InfoNCE loss without mutating.
            let s_pos = m.score(u, pos) / tau;
            let mx = negs
                .iter()
                .map(|&j| m.score(u, j) / tau)
                .fold(s_pos, f32::max);
            let e_pos = (s_pos - mx).exp();
            let z: f32 = e_pos
                + negs
                    .iter()
                    .map(|&j| (m.score(u, j) / tau - mx).exp())
                    .sum::<f32>();
            -((e_pos / z).ln())
        };
        // Analytic step: lr = 1 on a copy; parameter delta = −gradient.
        let mut stepped = m0.clone();
        stepped.infonce_update(u, pos, &negs, 1.0, 0.0, tau);
        let grad0 = m0.user_embedding(u)[0] - stepped.user_embedding(u)[0];

        // Numeric gradient for coordinate 0 of wᵤ.
        let eps = 1e-3f32;
        let mut up = m0.clone();
        up.users_mut_for_test(u)[0] += eps;
        let mut down = m0.clone();
        down.users_mut_for_test(u)[0] -= eps;
        let numeric = (loss_at(&up) - loss_at(&down)) / (2.0 * eps);
        assert!(
            (grad0 - numeric).abs() < 2e-3,
            "analytic {grad0} vs numeric {numeric}"
        );
    }

    #[test]
    fn infonce_temperature_sharpens_gradients() {
        // Lower temperature → larger update magnitude for the same state.
        let base = model(10);
        let mut cold = base.clone();
        let mut warm = base.clone();
        cold.infonce_update(0, 1, &[2, 3], 0.1, 0.0, 0.1);
        warm.infonce_update(0, 1, &[2, 3], 0.1, 0.0, 2.0);
        let delta = |m: &MatrixFactorization| -> f32 {
            m.user_embedding(0)
                .iter()
                .zip(base.user_embedding(0))
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(delta(&cold) > delta(&warm));
    }
}
