//! Flat row-major embedding tables.
//!
//! Both models learn `d`-dimensional user and item representations
//! (`wᵤ`, `hᵢ` in the paper, d = 32 in §IV-B1). A single contiguous
//! `Vec<f32>` keeps rows cache-adjacent and avoids per-row allocations, per
//! the performance guide.

use crate::{ModelError, Result};
use bns_stats::dist::{Continuous, Normal};
use rand::Rng;

/// An `n × dim` table of `f32` embeddings.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    data: Vec<f32>,
    n: usize,
    dim: usize,
}

impl Embedding {
    /// All-zeros table.
    pub fn zeros(n: usize, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(ModelError::InvalidConfig(
                "embedding dim must be > 0".into(),
            ));
        }
        Ok(Self {
            data: vec![0.0; n * dim],
            n,
            dim,
        })
    }

    /// Gaussian `N(0, std)` initialization — the conventional init for BPR
    /// models (std = 0.1 in the reference implementations).
    pub fn normal_init<R: Rng + ?Sized>(
        n: usize,
        dim: usize,
        std: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if dim == 0 {
            return Err(ModelError::InvalidConfig(
                "embedding dim must be > 0".into(),
            ));
        }
        if std <= 0.0 || !std.is_finite() {
            return Err(ModelError::InvalidConfig(
                "init std must be finite and > 0".into(),
            ));
        }
        let dist = Normal::new(0.0, std).expect("validated std");
        let data = (0..n * dim).map(|_| dist.sample(rng) as f32).collect();
        Ok(Self { data, n, dim })
    }

    /// Wraps an existing row-major buffer of `n · dim` values.
    pub fn from_vec(n: usize, dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(ModelError::InvalidConfig(
                "embedding dim must be > 0".into(),
            ));
        }
        if data.len() != n * dim {
            return Err(ModelError::ShapeMismatch(format!(
                "buffer of {} values cannot hold {n} rows × {dim}",
                data.len()
            )));
        }
        Ok(Self { data, n, dim })
    }

    /// Xavier/Glorot-style initialization: `N(0, 1/√dim)`.
    pub fn xavier_init<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Result<Self> {
        Self::normal_init(n, dim, 1.0 / (dim as f64).sqrt(), rng)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as an immutable slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.n, "row index out of range");
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.n, "row index out of range");
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Two distinct rows mutably at once (needed by the BPR update, which
    /// touches the positive and negative item rows together).
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert!(a != b, "two_rows_mut requires distinct rows");
        assert!(a < self.n && b < self.n, "row index out of range");
        let d = self.dim;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * d);
            (&mut lo[a * d..(a + 1) * d], &mut hi[..d])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * d);
            let (bs, as_) = (&mut lo[b * d..(b + 1) * d], &mut hi[..d]);
            (as_, bs)
        }
    }

    /// The full backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The full backing buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Dot product of two rows of (possibly different) tables.
    ///
    /// Delegates to the unrolled [`crate::kernel::dot`], so every score in
    /// the workspace — single pairs, full rating vectors, candidate
    /// gathers, hogwild reads — uses one summation order and agrees to the
    /// bit.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        crate::kernel::dot(a, b)
    }

    /// Squared L2 norm of the whole table (for regularization diagnostics).
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let e = Embedding::zeros(3, 4).unwrap();
        assert_eq!(e.len(), 3);
        assert_eq!(e.dim(), 4);
        assert!(e.row(2).iter().all(|&x| x == 0.0));
        assert!(!e.is_empty());
        assert!(Embedding::zeros(0, 4).unwrap().is_empty());
    }

    #[test]
    fn rejects_zero_dim() {
        assert!(Embedding::zeros(3, 0).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Embedding::normal_init(3, 0, 0.1, &mut rng).is_err());
        assert!(Embedding::normal_init(3, 4, 0.0, &mut rng).is_err());
    }

    #[test]
    fn normal_init_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Embedding::normal_init(100, 64, 0.1, &mut rng).unwrap();
        let n = (100 * 64) as f64;
        let mean: f64 = e.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = e
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std = {}", var.sqrt());
    }

    #[test]
    fn row_mut_writes_through() {
        let mut e = Embedding::zeros(2, 3).unwrap();
        e.row_mut(1)[2] = 5.0;
        assert_eq!(e.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(e.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut e = Embedding::zeros(3, 2).unwrap();
        {
            let (a, b) = e.two_rows_mut(0, 2);
            a[0] = 1.0;
            b[1] = 2.0;
        }
        assert_eq!(e.row(0), &[1.0, 0.0]);
        assert_eq!(e.row(2), &[0.0, 2.0]);
        {
            let (a, b) = e.two_rows_mut(2, 0);
            assert_eq!(a[1], 2.0);
            assert_eq!(b[0], 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn two_rows_mut_rejects_same_row() {
        let mut e = Embedding::zeros(2, 2).unwrap();
        let _ = e.two_rows_mut(1, 1);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Embedding::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(Embedding::dot(&[], &[]), 0.0);
    }

    #[test]
    fn xavier_scales_with_dim() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Embedding::xavier_init(50, 16, &mut rng).unwrap();
        let n = (50 * 16) as f64;
        let var: f64 = e
            .as_slice()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / n;
        assert!((var - 1.0 / 16.0).abs() < 0.02, "var = {var}");
    }
}
