#![deny(missing_docs)]

//! # bns-model — recommendation models for the BNS reproduction
//!
//! The paper evaluates negative samplers inside two recommendation models
//! (§IV-A3): classic matrix factorization (MF, Koren et al.) and LightGCN
//! (He et al., SIGIR 2020), both trained with the pairwise BPR objective of
//! Eq. (1). This crate implements both from scratch:
//!
//! * [`embedding`] — flat row-major `f32` embedding tables with seeded
//!   initialization.
//! * [`scorer`] — the [`scorer::Scorer`] trait (read-only score access
//!   used by samplers and evaluation) and the [`scorer::PairwiseModel`]
//!   trait (adds BPR updates).
//! * [`mf`] — matrix factorization with per-triple SGD (the paper trains MF
//!   with batch size 1).
//! * [`lightgcn`] — LightGCN: symmetric-normalized bipartite adjacency,
//!   K-layer propagation with mean layer combination, and the exact
//!   transposed-propagation backward pass.
//! * [`optim`] — learning-rate schedules (constant, and the step decay the
//!   paper uses for LightGCN) and SGD hyperparameters.
//! * [`loss`] — sigmoid / BPR loss / the `info(·)` gradient magnitude of
//!   Eq. (4).
//! * [`hogwild`] — lock-free shared MF storage for hogwild-style parallel
//!   SGD (relaxed-atomic embedding tables behind a safe API).
//! * [`kernel`] — the unrolled `mul_add` scoring kernels (dot / GEMV /
//!   gather-dot and the atomic hogwild variant) with one fixed summation
//!   order shared by every scoring entry point, plus the shared per-triple
//!   BPR step.
//! * [`batch`] — the SoA [`batch::TripleBatch`] buffer: `{users, pos,
//!   negs}` with `k ≥ 1` negatives per positive, filled by batched
//!   samplers and consumed by [`scorer::PairwiseModel::update_batch`].
//! * [`snapshot`] — the [`snapshot::SnapshotScorer`] freeze point: dense
//!   `(users, items)` tables reproducing a trained scorer's values
//!   bitwise, consumed by the `bns-serve` artifact format.

pub mod batch;
pub mod embedding;
pub mod hogwild;
pub mod kernel;
pub mod lightgcn;
pub mod loss;
pub mod mf;
pub mod optim;
pub mod scorer;
pub mod snapshot;

pub use batch::TripleBatch;
pub use embedding::Embedding;
pub use hogwild::{AtomicEmbedding, HogwildMf, HogwildScratch};
pub use lightgcn::LightGcn;
pub use mf::MatrixFactorization;
pub use optim::{LrSchedule, SgdConfig};
pub use scorer::{PairwiseModel, Scorer};
pub use snapshot::{SnapshotKind, SnapshotScorer};

/// Errors produced by the model layer.
#[derive(Debug)]
pub enum ModelError {
    /// A hyperparameter was outside its valid domain.
    InvalidConfig(String),
    /// Model/dataset shape mismatch.
    ShapeMismatch(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidConfig(m) => write!(f, "invalid model config: {m}"),
            ModelError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;
