//! Fused scoring kernels: the one dot-product the whole workspace shares.
//!
//! Algorithm 1 line 4 ("get rating vector x̂ᵤ") makes user-vs-catalog
//! scoring the hottest loop in the system: every model-aware sampler pays
//! it once per training pair. A naive `iter().zip().map().sum()` dot is
//! *latency*-bound — each `f32` add waits on the previous one, so a d = 32
//! dot costs ~d·latency cycles instead of ~d/throughput. These kernels
//! break the dependency chain with [`LANES`] independent accumulators
//! updated via [`f32::mul_add`], then reduce them in a **fixed balanced
//! tree**, which makes the summation order deterministic and identical
//! across every entry point:
//!
//! * [`dot`] — one row · row product (single score),
//! * [`gemv`] — user row × the whole item table (the full rating vector),
//! * [`gather_dots`] — user row × an arbitrary subset of item rows (the
//!   candidate-scoring path of `ScoreAccess::Candidates` samplers),
//! * [`dot_atomic`] — the same arithmetic over [`AtomicF32Cell`] rows (the
//!   hogwild tables of [`crate::hogwild`]).
//!
//! Because all four share one accumulation structure, `score(u, i)`,
//! `score_all(u, ..)[i]` and `score_items(u, [i], ..)` return **bitwise
//! identical** values for the same model state — the property the fused
//! BNS draw relies on when it compares candidate thresholds against
//! catalog scores computed in a separate blocked pass.
//!
//! Changing this module changes the bit-level training trace (a different
//! but still deterministic summation order); re-pin the repro guards when
//! touching it. Accuracy against an `f64` scalar reference is property-
//! tested here and in `tests/proptests.rs` (≤ 1e-5 relative).

use bns_sync::AtomicF32Cell;

/// Number of independent accumulators in the unrolled kernels.
pub const LANES: usize = 8;

/// One multiply-accumulate step.
///
/// `f32::mul_add` is only a win when the target actually codegens an FMA
/// instruction; on baseline x86-64 (SSE2) it lowers to a **libm call**,
/// which is an order of magnitude slower than the loop it lives in. The
/// workspace builds with `target-cpu=native` (see `.cargo/config.toml`),
/// so machines with FMA take the fused path; anything else falls back to
/// separate multiply+add, which the independent lanes still let LLVM
/// vectorize. Either way the summation order is fixed; the chosen path is
/// part of the binary's deterministic identity (same binary → same bits),
/// which is all the repro guards require.
#[inline(always)]
fn fmadd(a: f32, b: f32, acc: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Reduces the lane accumulators plus a scalar tail in a fixed balanced
/// tree. One reduction order for every kernel — the bit-consistency
/// contract of the module.
#[inline(always)]
fn reduce(acc: [f32; LANES], tail: f32) -> f32 {
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

/// Unrolled dot product with [`LANES`] accumulators and `mul_add`.
///
/// Panics in debug builds when the lengths differ; the release path
/// truncates to the shorter slice via `chunks_exact`/`zip`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut acc = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        for l in 0..LANES {
            acc[l] = fmadd(ca[l], cb[l], acc[l]);
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a_rem.iter().zip(b_rem) {
        tail = fmadd(x, y, tail);
    }
    reduce(acc, tail)
}

/// [`dot`] over one plain row and one row of relaxed-atomic bit cells —
/// the hogwild variant. Identical accumulation structure, so for equal
/// values the result is bitwise equal to [`dot`].
#[inline]
pub fn dot_atomic(a: &[f32], cells: &[AtomicF32Cell]) -> f32 {
    debug_assert_eq!(a.len(), cells.len(), "dot operands must have equal length");
    let mut acc = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let c_chunks = cells.chunks_exact(LANES);
    let a_rem = a_chunks.remainder();
    let c_rem = c_chunks.remainder();
    for (ca, cc) in a_chunks.zip(c_chunks) {
        for l in 0..LANES {
            acc[l] = fmadd(ca[l], cc[l].load(), acc[l]);
        }
    }
    let mut tail = 0.0f32;
    for (&x, cell) in a_rem.iter().zip(c_rem) {
        tail = fmadd(x, cell.load(), tail);
    }
    reduce(acc, tail)
}

/// Dense GEMV: fills `out[i] = dot(user, items[i·d .. (i+1)·d])` for the
/// row-major `out.len() × user.len()` table `items`.
///
/// The user row stays resident in registers/L1 while the item table
/// streams through once — the blocked form of Algorithm 1 line 4.
#[inline]
pub fn gemv(user: &[f32], items: &[f32], out: &mut [f32]) {
    let d = user.len();
    debug_assert_eq!(
        items.len(),
        d * out.len(),
        "item table shape does not match user dim × out len"
    );
    for (slot, row) in out.iter_mut().zip(items.chunks_exact(d.max(1))) {
        *slot = dot(user, row);
    }
}

/// Gather-dot: fills `out[k] = dot(user, items[ids[k]])` for an arbitrary
/// id subset of the row-major item table — the batched
/// `Scorer::score_items` kernel behind `ScoreAccess::Candidates`.
#[inline]
pub fn gather_dots(user: &[f32], items: &[f32], ids: &[u32], out: &mut [f32]) {
    let d = user.len();
    debug_assert_eq!(ids.len(), out.len(), "one output slot per gathered id");
    for (slot, &i) in out.iter_mut().zip(ids) {
        let row = &items[i as usize * d..(i as usize + 1) * d];
        *slot = dot(user, row);
    }
}

/// Row block size of [`gemm_block`]: the number of item rows a user block
/// revisits before the kernel moves on. 64 rows × d = 32 floats is 8 KiB —
/// comfortably L1-resident while every user row in the block streams over
/// it.
pub const GEMM_ITEM_BLOCK: usize = 64;

/// Blocked multi-user GEMM: fills `out[u · n_items + i] = dot(users_row_u,
/// items_row_i)` for the row-major user block `users` (`B × d`) and item
/// table `items` (`n_items × d`).
///
/// This is the request-coalescing kernel of the serve loop: a lone query
/// streams the whole item table through the cache for one GEMV, so `B`
/// concurrent queries cost `B` full traversals. Here the item table is
/// walked **once** in [`GEMM_ITEM_BLOCK`]-row tiles, and every user row in
/// the block is scored against the resident tile before the next tile is
/// loaded — the per-user memory traffic drops by ~`B×` while the
/// arithmetic is unchanged.
///
/// Every output is produced by the same [`dot`] as [`gemv`], so
/// `gemm_block(users, items, d, out)[u·n + i]` is **bitwise identical** to
/// `gemv(users_row_u, items, ..)[i]` — batching never changes an answer,
/// which is what lets the serve loop coalesce opportunistically.
#[inline]
pub fn gemm_block(users: &[f32], items: &[f32], dim: usize, out: &mut [f32]) {
    assert!(dim > 0, "gemm_block requires dim >= 1");
    debug_assert_eq!(users.len() % dim, 0, "user block must be row-major B × d");
    debug_assert_eq!(items.len() % dim, 0, "item table must be row-major n × d");
    let n_items = items.len() / dim;
    debug_assert_eq!(
        out.len(),
        (users.len() / dim) * n_items,
        "out must be B × n_items"
    );
    for (tile_idx, tile) in items.chunks(GEMM_ITEM_BLOCK * dim).enumerate() {
        let i0 = tile_idx * GEMM_ITEM_BLOCK;
        let rows = tile.len() / dim;
        for (u, user) in users.chunks_exact(dim).enumerate() {
            let base = u * n_items + i0;
            gemv(user, tile, &mut out[base..base + rows]);
        }
    }
}

/// One BPR SGD step over the three rows of a triple `(u, i, j)` with
/// gradient magnitude `g = info(j)` (Rendle et al., UAI 2009):
///
/// ```text
/// wᵤ += α (g·(hᵢ − hⱼ) − λ wᵤ)
/// hᵢ += α (g·wᵤ        − λ hᵢ)
/// hⱼ += α (−g·wᵤ       − λ hⱼ)
/// ```
///
/// All three writes use the pre-update values of the current dimension.
/// This is the **one** copy of the per-triple update arithmetic: both
/// `MatrixFactorization::accumulate_triple` and the `k = 1` rows of the
/// blocked `update_batch` path call it, which is what keeps the batched
/// trainer bitwise identical to the per-triple trace at `k = 1`.
#[inline]
pub fn bpr_step(wu: &mut [f32], hi: &mut [f32], hj: &mut [f32], g: f32, lr: f32, reg: f32) {
    let dim = wu.len();
    debug_assert_eq!(hi.len(), dim, "row dims must agree");
    debug_assert_eq!(hj.len(), dim, "row dims must agree");
    for k in 0..dim {
        let (wuk, hik, hjk) = (wu[k], hi[k], hj[k]);
        wu[k] += lr * (g * (hik - hjk) - reg * wuk);
        hi[k] += lr * (g * wuk - reg * hik);
        hj[k] += lr * (-g * wuk - reg * hjk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f64 scalar reference for accuracy checks.
    fn dot_ref(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum::<f64>()
    }

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        // Deterministic, sign-alternating values in ~[-1, 1].
        (0..n)
            .map(|i| {
                let h = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(40503));
                ((h % 2000) as f32 / 1000.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn dot_matches_reference_across_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100] {
            let a = pseudo(n, 1);
            let b = pseudo(n, 2);
            let got = dot(&a, &b) as f64;
            let want = dot_ref(&a, &b);
            let tol = 1e-5 * want.abs().max(1.0);
            assert!((got - want).abs() <= tol, "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn dot_exact_small_integers() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn atomic_dot_is_bitwise_equal_to_plain_dot() {
        for n in [3usize, 8, 32, 50] {
            let a = pseudo(n, 3);
            let b = pseudo(n, 4);
            let cells: Vec<AtomicF32Cell> = b.iter().map(|&x| AtomicF32Cell::new(x)).collect();
            assert_eq!(dot(&a, &b).to_bits(), dot_atomic(&a, &cells).to_bits());
        }
    }

    #[test]
    fn gemv_rows_are_bitwise_equal_to_dot() {
        let d = 32;
        let n = 17;
        let user = pseudo(d, 5);
        let table = pseudo(d * n, 6);
        let mut out = vec![0.0f32; n];
        gemv(&user, &table, &mut out);
        for i in 0..n {
            assert_eq!(
                out[i].to_bits(),
                dot(&user, &table[i * d..(i + 1) * d]).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn gemm_block_rows_are_bitwise_equal_to_gemv() {
        // Shapes straddling the tile boundary: below, at, and above
        // GEMM_ITEM_BLOCK, with user-block sizes the serve loop coalesces.
        for (b, n) in [(1usize, 7usize), (3, 64), (4, 129), (8, 200)] {
            let d = 16;
            let users = pseudo(b * d, 9);
            let items = pseudo(n * d, 10);
            let mut blocked = vec![0.0f32; b * n];
            gemm_block(&users, &items, d, &mut blocked);
            let mut row = vec![0.0f32; n];
            for u in 0..b {
                gemv(&users[u * d..(u + 1) * d], &items, &mut row);
                for i in 0..n {
                    assert_eq!(
                        blocked[u * n + i].to_bits(),
                        row[i].to_bits(),
                        "B={b} n={n} user {u} item {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_dots_matches_gemv_subset() {
        let d = 16;
        let n = 40;
        let user = pseudo(d, 7);
        let table = pseudo(d * n, 8);
        let mut full = vec![0.0f32; n];
        gemv(&user, &table, &mut full);
        let ids = [0u32, 5, 5, 39, 17];
        let mut out = vec![0.0f32; ids.len()];
        gather_dots(&user, &table, &ids, &mut out);
        for (k, &i) in ids.iter().enumerate() {
            assert_eq!(out[k].to_bits(), full[i as usize].to_bits());
        }
    }
}
