//! Optimization hyperparameters and learning-rate schedules.
//!
//! The paper's setups (§IV-B1): MF uses a constant learning rate 0.01 with
//! L2 regularization 0.01; LightGCN uses initial rate 0.01 decaying by ×0.1
//! every 20 epochs with regularization 1e-5.

use crate::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// Learning-rate schedule over epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Same rate every epoch.
    Constant(f32),
    /// `initial · factor^{⌊epoch / every⌋}` — the paper's LightGCN schedule
    /// with `every = 20`, `factor = 0.1`.
    StepDecay {
        /// Rate at epoch 0.
        initial: f32,
        /// Epochs between decays.
        every: usize,
        /// Multiplicative decay factor.
        factor: f32,
    },
}

impl LrSchedule {
    /// The learning rate at a 0-based epoch.
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                initial,
                every,
                factor,
            } => {
                let steps = epoch.checked_div(every).unwrap_or(0) as i32;
                initial * factor.powi(steps)
            }
        }
    }

    /// Validates rates and factors.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            LrSchedule::Constant(lr) => lr > 0.0 && lr.is_finite(),
            LrSchedule::StepDecay {
                initial,
                every,
                factor,
            } => initial > 0.0 && initial.is_finite() && every > 0 && factor > 0.0 && factor <= 1.0,
        };
        if ok {
            Ok(())
        } else {
            Err(ModelError::InvalidConfig(
                "invalid learning-rate schedule".into(),
            ))
        }
    }
}

/// SGD hyperparameters shared by both models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// L2 regularization constant applied to the embeddings touched by each
    /// update.
    pub reg: f32,
}

impl SgdConfig {
    /// The paper's MF setup: constant lr 0.01, reg 0.01.
    pub fn paper_mf() -> Self {
        Self {
            lr: LrSchedule::Constant(0.01),
            reg: 0.01,
        }
    }

    /// The paper's LightGCN setup: lr 0.01 decayed ×0.1 every 20 epochs,
    /// reg 1e-5.
    pub fn paper_lightgcn() -> Self {
        Self {
            lr: LrSchedule::StepDecay {
                initial: 0.01,
                every: 20,
                factor: 0.1,
            },
            reg: 1e-5,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.lr.validate()?;
        if self.reg < 0.0 || !self.reg.is_finite() {
            return Err(ModelError::InvalidConfig(
                "reg must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::Constant(0.01);
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(99), 0.01);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn step_decay_matches_paper_lightgcn() {
        let s = LrSchedule::StepDecay {
            initial: 0.01,
            every: 20,
            factor: 0.1,
        };
        assert!((s.at(0) - 0.01).abs() < 1e-9);
        assert!((s.at(19) - 0.01).abs() < 1e-9);
        assert!((s.at(20) - 0.001).abs() < 1e-9);
        assert!((s.at(59) - 1e-4).abs() < 1e-9); // two decays by epoch 59
        assert!((s.at(60) - 1e-5).abs() < 1e-9); // third decay at epoch 60
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(LrSchedule::Constant(0.0).validate().is_err());
        assert!(LrSchedule::Constant(f32::NAN).validate().is_err());
        assert!(LrSchedule::StepDecay {
            initial: 0.01,
            every: 0,
            factor: 0.1
        }
        .validate()
        .is_err());
        assert!(LrSchedule::StepDecay {
            initial: 0.01,
            every: 5,
            factor: 1.5
        }
        .validate()
        .is_err());
        let bad_reg = SgdConfig {
            lr: LrSchedule::Constant(0.01),
            reg: -1.0,
        };
        assert!(bad_reg.validate().is_err());
    }

    #[test]
    fn paper_presets_validate() {
        assert!(SgdConfig::paper_mf().validate().is_ok());
        assert!(SgdConfig::paper_lightgcn().validate().is_ok());
    }
}
