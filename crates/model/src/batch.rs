//! The SoA triple-batch buffer shared by the whole training stack.
//!
//! Algorithm 1 is written per-triple, but at production scale the hot path
//! wants batches: samplers amortize score gathers and ECDF passes across
//! all pairs of a batch, and models apply vectorized multi-negative BPR
//! updates. [`TripleBatch`] is the one buffer both sides agree on — a
//! structure-of-arrays `{ users, pos, negs }` with a fixed number of
//! negatives `k ≥ 1` per positive (`k = 1` is the paper's Algorithm 1;
//! `k > 1` is the multi-negative workload of contrastive/adaptive-hardness
//! training).
//!
//! The buffer is reusable: the trainer allocates one per run and refills it
//! per mini-batch via [`TripleBatch::begin_fill`] / [`TripleBatch::push_row`],
//! so the steady-state loop is allocation-free once capacity has been
//! reached.

/// A structure-of-arrays batch of training triples with `k` negatives per
/// `(user, positive)` row.
///
/// Rows are appended by the sampler; pairs whose user has no negatives are
/// simply not pushed (or removed with [`TripleBatch::pop_row`]), so
/// `len() ≤` the number of input pairs.
#[derive(Debug, Clone, Default)]
pub struct TripleBatch {
    users: Vec<u32>,
    pos: Vec<u32>,
    /// Row-major `len × k` negatives.
    negs: Vec<u32>,
    k: usize,
}

impl TripleBatch {
    /// Creates an empty batch (call [`TripleBatch::begin_fill`] before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the batch and fixes the negatives-per-row count for the
    /// upcoming fill. Capacity is retained, so a reused buffer does not
    /// re-allocate in steady state.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn begin_fill(&mut self, k: usize) {
        assert!(k > 0, "a triple batch needs at least one negative per row");
        self.users.clear();
        self.pos.clear();
        self.negs.clear();
        self.k = k;
    }

    /// Appends a `(user, positive)` row and returns its `k` negative slots
    /// (zero-initialized) for the sampler to fill.
    pub fn push_row(&mut self, u: u32, pos: u32) -> &mut [u32] {
        self.users.push(u);
        self.pos.push(pos);
        let start = self.negs.len();
        self.negs.resize(start + self.k, 0);
        &mut self.negs[start..]
    }

    /// Removes the most recently pushed row (a sampler aborting a row whose
    /// user turned out to have no negatives).
    pub fn pop_row(&mut self) {
        if self.users.pop().is_some() {
            self.pos.pop();
            self.negs.truncate(self.negs.len() - self.k);
        }
    }

    /// Number of `(user, positive)` rows.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Negatives per row.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total triples in the batch (`len · k`).
    pub fn n_triples(&self) -> usize {
        self.negs.len()
    }

    /// The user column.
    pub fn users(&self) -> &[u32] {
        &self.users
    }

    /// The positive-item column.
    pub fn pos(&self) -> &[u32] {
        &self.pos
    }

    /// The flat row-major `len × k` negatives.
    pub fn negs(&self) -> &[u32] {
        &self.negs
    }

    /// Mutable access to the flat negatives (samplers that fill slots in a
    /// later pass than the one that pushed the rows).
    pub fn negs_mut(&mut self) -> &mut [u32] {
        &mut self.negs
    }

    /// The negatives of row `row`.
    pub fn negs_of(&self, row: usize) -> &[u32] {
        &self.negs[row * self.k..(row + 1) * self.k]
    }

    /// Iterates rows as `(user, pos, negatives)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &[u32])> + '_ {
        self.users
            .iter()
            .zip(&self.pos)
            .zip(self.negs.chunks_exact(self.k.max(1)))
            .map(|((&u, &p), n)| (u, p, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_iterate() {
        let mut b = TripleBatch::new();
        b.begin_fill(2);
        b.push_row(0, 5).copy_from_slice(&[1, 2]);
        b.push_row(3, 7).copy_from_slice(&[4, 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.k(), 2);
        assert_eq!(b.n_triples(), 4);
        assert_eq!(b.users(), &[0, 3]);
        assert_eq!(b.pos(), &[5, 7]);
        assert_eq!(b.negs(), &[1, 2, 4, 6]);
        assert_eq!(b.negs_of(1), &[4, 6]);
        let rows: Vec<(u32, u32, Vec<u32>)> =
            b.iter().map(|(u, p, n)| (u, p, n.to_vec())).collect();
        assert_eq!(rows, vec![(0, 5, vec![1, 2]), (3, 7, vec![4, 6])]);
    }

    #[test]
    fn pop_row_aborts_the_last_row() {
        let mut b = TripleBatch::new();
        b.begin_fill(3);
        b.push_row(1, 1).copy_from_slice(&[2, 3, 4]);
        b.push_row(2, 2);
        b.pop_row();
        assert_eq!(b.len(), 1);
        assert_eq!(b.negs(), &[2, 3, 4]);
        // Popping on empty is a no-op.
        b.pop_row();
        b.pop_row();
        assert!(b.is_empty());
        assert_eq!(b.n_triples(), 0);
    }

    #[test]
    fn refill_resets_rows_and_k() {
        let mut b = TripleBatch::new();
        b.begin_fill(2);
        b.push_row(0, 1).copy_from_slice(&[2, 3]);
        b.begin_fill(1);
        assert!(b.is_empty());
        b.push_row(4, 5)[0] = 6;
        assert_eq!(b.negs(), &[6]);
        assert_eq!(b.k(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one negative")]
    fn zero_k_is_rejected() {
        TripleBatch::new().begin_fill(0);
    }
}
