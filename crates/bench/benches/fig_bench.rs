//! Miniature regenerations of Figs. 1–5 as benchmarks.

use bns_core::{BnsConfig, LambdaSchedule, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;
use bns_eval::{QualityTracker, ScoreDistributionProbe};
use bns_experiments::common::cli::HarnessArgs;
use bns_experiments::common::config::{ModelKind, RunConfig};
use bns_experiments::common::runner::{prepare_dataset, train_and_eval, train_model};
use bns_experiments::experiments::{fig2, fig3};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cfg() -> RunConfig {
    RunConfig {
        scale: 0.06,
        epochs: 4,
        dim: 16,
        threads: 2,
        ..RunConfig::default()
    }
}

fn fig1_distribution_probe(c: &mut Criterion) {
    let cfg = bench_cfg();
    let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("train_with_score_probe", |b| {
        b.iter(|| {
            let mut probe = ScoreDistributionProbe::new(&prepared.dataset, vec![0, cfg.epochs - 1]);
            train_model(
                &prepared,
                DatasetPreset::Ml100k,
                ModelKind::Mf,
                &SamplerConfig::Rns,
                &cfg,
                &mut probe,
            );
            black_box(probe.snapshots().len())
        })
    });
    group.finish();
}

fn fig2_theoretical_densities(c: &mut Criterion) {
    c.bench_function("fig2_density_grids", |b| {
        b.iter(|| black_box(fig2::run(&HarnessArgs::default())))
    });
}

fn fig3_unbias_surface(c: &mut Criterion) {
    c.bench_function("fig3_surface", |b| b.iter(|| black_box(fig3::surface())));
}

fn fig4_quality_tracked_run(c: &mut Criterion) {
    let cfg = bench_cfg();
    let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
    let sampler = SamplerConfig::Bns {
        config: BnsConfig::default(),
        prior: PriorKind::Popularity,
    };
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("bns_with_quality_tracker", |b| {
        b.iter(|| {
            let mut tracker = QualityTracker::new(&prepared.dataset);
            train_model(
                &prepared,
                DatasetPreset::Ml100k,
                ModelKind::Mf,
                &sampler,
                &cfg,
                &mut tracker,
            );
            black_box(tracker.mean_tnr())
        })
    });
    group.finish();
}

fn fig5_sweep_cell(c: &mut Criterion) {
    let cfg = bench_cfg();
    let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
    let sampler = SamplerConfig::Bns {
        config: BnsConfig {
            lambda: LambdaSchedule::Constant(5.0),
            ..BnsConfig::default()
        },
        prior: PriorKind::Popularity,
    };
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("lambda5_cell", |b| {
        b.iter(|| {
            black_box(train_and_eval(
                &prepared,
                DatasetPreset::Ml100k,
                ModelKind::Mf,
                &sampler,
                &cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fig1_distribution_probe,
    fig2_theoretical_densities,
    fig3_unbias_surface,
    fig4_quality_tracked_run,
    fig5_sweep_cell
);
criterion_main!(benches);
