//! Statistics-substrate benchmarks: special functions, ECDF variants,
//! alias-method sampling, order-statistic densities.

use bns_stats::dist::Continuous;
use bns_stats::special::{beta_inc, erf, gamma_p};
use bns_stats::{AliasTable, Ecdf, GammaDist, Normal, StudentT, TrueNegativeDensity};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn special_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("special");
    group.bench_function("erf", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1e-6;
            black_box(erf(x % 3.0))
        })
    });
    group.bench_function("gamma_p", |b| {
        let mut x = 0.1f64;
        b.iter(|| {
            x += 1e-6;
            black_box(gamma_p(2.5, x % 10.0 + 0.1).unwrap())
        })
    });
    group.bench_function("beta_inc", |b| {
        let mut x = 0.01f64;
        b.iter(|| {
            x += 1e-7;
            black_box(beta_inc(2.0, 3.0, x % 0.98 + 0.01).unwrap())
        })
    });
    group.finish();
}

fn ecdf_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<f64> = (0..4_000).map(|_| rng.random_range(-1.0..1.0)).collect();
    let data32: Vec<f32> = data.iter().map(|&x| x as f32).collect();
    let mut group = c.benchmark_group("ecdf");
    group.bench_function("build_sorted_4k", |b| {
        b.iter(|| black_box(Ecdf::new(&data).unwrap()))
    });
    let built = Ecdf::new(&data).unwrap();
    group.bench_function("eval_binary_search", |b| {
        let mut x = -1.0f64;
        b.iter(|| {
            x += 1e-5;
            black_box(built.eval(x % 1.0))
        })
    });
    group.bench_function("scan_f32_4k", |b| {
        let mut x = -1.0f32;
        b.iter(|| {
            x += 1e-5;
            black_box(bns_stats::ecdf::ecdf_scan_f32(&data32, x % 1.0))
        })
    });
    group.finish();
}

fn alias_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias");
    for &n in &[1_000usize, 100_000] {
        let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(0.75)).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(AliasTable::new(&weights).unwrap()))
        });
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::new("draw", n), &n, |b, _| {
            b.iter(|| black_box(table.sample(&mut rng)))
        });
    }
    group.finish();
}

fn order_statistic_densities(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_density");
    let normal = TrueNegativeDensity::new(Normal::standard());
    let student = TrueNegativeDensity::new(StudentT::new(3.0).unwrap());
    let gamma = TrueNegativeDensity::new(GammaDist::new(2.0, 1.0).unwrap());
    group.bench_function("gaussian_g", |b| {
        let mut x = -3.0f64;
        b.iter(|| {
            x += 1e-5;
            black_box(bns_stats::order::OrderStatisticDensity::density(
                &normal,
                x % 3.0,
            ))
        })
    });
    group.bench_function("student_g", |b| {
        let mut x = -3.0f64;
        b.iter(|| {
            x += 1e-5;
            black_box(bns_stats::order::OrderStatisticDensity::density(
                &student,
                x % 3.0,
            ))
        })
    });
    group.bench_function("gamma_g", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1e-5;
            black_box(bns_stats::order::OrderStatisticDensity::density(
                &gamma,
                x % 8.0,
            ))
        })
    });
    // Sampling throughput feeding the synthetic generator.
    let mut rng = StdRng::seed_from_u64(3);
    let n = Normal::standard();
    group.bench_function("normal_sample", |b| {
        b.iter(|| black_box(n.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    special_functions,
    ecdf_variants,
    alias_sampling,
    order_statistic_densities
);
criterion_main!(benches);
