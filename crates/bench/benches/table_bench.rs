//! Miniature regenerations of Tables I–IV as benchmarks: each target runs
//! the same code path as the corresponding `bns-experiments` binary at a
//! small fixed scale, so regressions in any table's pipeline are caught by
//! `cargo bench`.

use bns_core::{BnsConfig, PriorKind, SamplerConfig};
use bns_data::{DatasetPreset, DatasetStats};
use bns_experiments::common::config::{ModelKind, RunConfig};
use bns_experiments::common::runner::{prepare_dataset, train_and_eval};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cfg() -> RunConfig {
    RunConfig {
        scale: 0.06,
        epochs: 4,
        dim: 16,
        threads: 2,
        ..RunConfig::default()
    }
}

fn table1_dataset_statistics(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("table1_generate_and_stats", |b| {
        b.iter(|| {
            let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
            black_box(DatasetStats::of(&prepared.dataset))
        })
    });
}

fn table2_one_cell(c: &mut Criterion) {
    let cfg = bench_cfg();
    let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
    let mut group = c.benchmark_group("table2_cell");
    group.sample_size(10);
    for sampler in [
        SamplerConfig::Rns,
        SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: PriorKind::Popularity,
        },
    ] {
        group.bench_function(sampler.display_name(), |b| {
            b.iter(|| {
                black_box(train_and_eval(
                    &prepared,
                    DatasetPreset::Ml100k,
                    ModelKind::Mf,
                    &sampler,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

fn table3_variant_cell(c: &mut Criterion) {
    let cfg = bench_cfg();
    let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
    let sampler = SamplerConfig::Bns {
        config: BnsConfig::default(),
        prior: PriorKind::Occupation,
    };
    let mut group = c.benchmark_group("table3_cell");
    group.sample_size(10);
    group.bench_function("BNS-4_occupation_prior", |b| {
        b.iter(|| {
            black_box(train_and_eval(
                &prepared,
                DatasetPreset::Ml100k,
                ModelKind::Mf,
                &sampler,
                &cfg,
            ))
        })
    });
    group.finish();
}

fn table4_oracle_cell(c: &mut Criterion) {
    let cfg = bench_cfg();
    let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
    let sampler = SamplerConfig::Bns {
        config: BnsConfig {
            m: 10,
            ..BnsConfig::default()
        },
        prior: PriorKind::Oracle {
            p_if_fn: 0.64,
            p_if_tn: 0.04,
        },
    };
    let mut group = c.benchmark_group("table4_cell");
    group.sample_size(10);
    group.bench_function("oracle_prior_m10", |b| {
        b.iter(|| {
            black_box(train_and_eval(
                &prepared,
                DatasetPreset::Ml100k,
                ModelKind::Mf,
                &sampler,
                &cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    table1_dataset_statistics,
    table2_one_cell,
    table3_variant_cell,
    table4_oracle_cell
);
criterion_main!(benches);
