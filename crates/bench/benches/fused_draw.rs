//! Fused vs. pre-fused BNS draw cost — the headline measurement of the
//! fused-kernel PR.
//!
//! `fused` is the production sampler: candidates drawn first, one
//! `score_items` gather for pos + candidates, then all m Eq. (16) counts
//! in a single blocked pass over the catalog (unrolled `mul_add` kernels,
//! no catalog-sized buffer). `unfused` is the seed implementation kept in
//! [`bns_bench::UnfusedBns`]: scalar `score_all` into an `n_items` buffer
//! plus one independent ECDF scan per candidate.
//!
//! Acceptance gate: at paper-scale dims (d = 32) and n_items ≥ 10k the
//! fused path must clear **2×** the unfused draws/sec; `bench_json`
//! records the same comparison into `BENCH_samplers.json`.

use bns_bench::{fixture, UnfusedBns};
use bns_core::sampler::SampleContext;
use bns_core::trainer::sample_pair;
use bns_core::{build_sampler, BnsConfig, PriorKind, SamplerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fused_vs_unfused(c: &mut Criterion) {
    let mut group = c.benchmark_group("bns_fused_vs_unfused");
    group.sample_size(20);
    for &n_items in &[2_000u32, 10_000] {
        let fx = fixture(100, n_items, 23);
        let train = fx.dataset.train();
        let pos = train.items_of(0)[0];

        let cfg = SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: PriorKind::Popularity,
        };
        let mut sampler = build_sampler(&cfg, &fx.dataset, None).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut user_scores = vec![0.0f32; n_items as usize];
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("fused", n_items), &n_items, |b, _| {
            b.iter(|| {
                black_box(sample_pair(
                    sampler.as_mut(),
                    &fx.model,
                    train,
                    fx.dataset.popularity(),
                    &mut user_scores,
                    0,
                    pos,
                    0,
                    &mut rng,
                ))
            })
        });

        let mut reference = UnfusedBns::new(&fx.dataset);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("unfused", n_items), &n_items, |b, _| {
            b.iter(|| black_box(reference.draw(&fx.model, train, 0, pos, &mut rng)))
        });
    }
    group.finish();
}

/// The same comparison through the gather path only: how much of the win
/// comes from the kernel vs. from skipping the buffer round-trips.
fn gemv_kernel_throughput(c: &mut Criterion) {
    let fx = fixture(100, 10_000, 29);
    let mut group = c.benchmark_group("score_all_10k_items");
    group.sample_size(30);
    let mut out = vec![0.0f32; 10_000];
    group.bench_function("kernel_gemv", |b| {
        b.iter(|| {
            use bns_model::Scorer;
            fx.model.score_all(0, &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

/// DNS under `ScoreAccess::Candidates`: m gather-dots instead of a full
/// rating vector — the satellite win of the access refactor.
fn dns_candidates_access(c: &mut Criterion) {
    let fx = fixture(100, 10_000, 31);
    let train = fx.dataset.train();
    let pos = train.items_of(0)[0];
    let mut group = c.benchmark_group("dns_draw_10k_items");
    group.sample_size(30);
    let mut sampler = build_sampler(&SamplerConfig::Dns { m: 5 }, &fx.dataset, None).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    group.bench_function("gather_only", |b| {
        b.iter(|| {
            let ctx = SampleContext {
                scorer: &fx.model,
                train,
                popularity: fx.dataset.popularity(),
                user_scores: &[],
                epoch: 0,
            };
            black_box(sampler.sample(0, pos, &ctx, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fused_vs_unfused,
    gemv_kernel_throughput,
    dns_candidates_access
);
criterion_main!(benches);
