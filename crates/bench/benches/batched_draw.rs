//! Batched vs. per-pair sampler throughput — the measurement behind the
//! batch-pipeline PR.
//!
//! Sweeps `sample_batch` over batch sizes 1 / 32 / 256 / 1024 for every
//! lineup sampler on a realistic shuffled pair stream (mixed users, so the
//! by-user grouping has real runs to amortize), and times the per-pair
//! `sample_pair` reference on the same stream. Where the win comes from,
//! per sampler: RNS/PNS shed per-pair dispatch; DNS/SRNS/BNS fold all of a
//! user's candidate gathers into one `score_items` call (BNS additionally
//! folds all of a user's Eq. 16 thresholds into one blocked catalog pass);
//! AOBPR computes `score_all` once per distinct user instead of once per
//! pair. `bench_json` records the same comparison into
//! `BENCH_samplers.json`.

use bns_bench::fixture;
use bns_core::sampler::SampleContext;
use bns_core::trainer::sample_pair;
use bns_core::{build_sampler, SamplerConfig};
use bns_model::TripleBatch;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn batched_sweep(c: &mut Criterion) {
    let fx = fixture(100, 5_000, 29);
    let train = fx.dataset.train();
    let popularity = fx.dataset.popularity();
    let mut pairs: Vec<(u32, u32)> = train.iter_pairs().collect();
    pairs.shuffle(&mut StdRng::seed_from_u64(5));

    for cfg in SamplerConfig::paper_lineup() {
        let group_name = format!("batched_draw/{}", cfg.display_name());
        let mut group = c.benchmark_group(&group_name);
        group.sample_size(10);

        // Per-pair reference on the same mixed-user stream.
        {
            let mut sampler =
                build_sampler(&cfg, &fx.dataset, Some(&fx.occupations)).expect("valid sampler");
            sampler.on_epoch_start(0);
            let mut user_scores: Vec<f32> = Vec::new();
            let mut rng = StdRng::seed_from_u64(17);
            let stream = &pairs[..pairs.len().min(256)];
            group.bench_function("per_pair", |b| {
                b.iter(|| {
                    for &(u, pos) in stream {
                        black_box(sample_pair(
                            sampler.as_mut(),
                            &fx.model,
                            train,
                            popularity,
                            &mut user_scores,
                            u,
                            pos,
                            0,
                            &mut rng,
                        ));
                    }
                })
            });
        }

        for &batch_size in &[1usize, 32, 256, 1024] {
            let mut sampler =
                build_sampler(&cfg, &fx.dataset, Some(&fx.occupations)).expect("valid sampler");
            sampler.on_epoch_start(0);
            let mut rng = StdRng::seed_from_u64(17);
            let mut batch = TripleBatch::new();
            let stream = &pairs[..pairs.len().min(batch_size)];
            let ctx = SampleContext {
                scorer: &fx.model,
                train,
                popularity,
                user_scores: &[],
                epoch: 0,
            };
            group.bench_with_input(
                BenchmarkId::new("batched", batch_size),
                &batch_size,
                |b, _| {
                    b.iter(|| {
                        sampler.sample_batch(stream, 1, &ctx, &mut rng, &mut batch);
                        black_box(batch.len())
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, batched_sweep);
criterion_main!(benches);
