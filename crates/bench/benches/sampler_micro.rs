//! Sampler micro-benchmarks.
//!
//! Validates the paper's §III-D complexity claim: one BNS draw is linear in
//! the catalog (`time(draw) ∝ n_items` from the fused scoring/ECDF pass),
//! and near-linear in |Mᵤ| at fixed catalog. Also ablates the exact ECDF
//! against the subsampled variant and compares per-draw cost across all six
//! samplers. (`user_scores` is precomputed once outside the loops; under
//! the `ScoreAccess` contract only AOBPR still reads it — the trainer-side
//! cost of refreshing it per pair is measured by `fused_draw` and
//! `bench_json`, which go through `sample_pair`.)

use bns_bench::fixture;
use bns_core::bns::EcdfStrategy;
use bns_core::sampler::SampleContext;
use bns_core::{build_sampler, BnsConfig, NegativeSampler, PriorKind, SamplerConfig};
use bns_model::Scorer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn draw_loop(
    sampler: &mut dyn NegativeSampler,
    fx: &bns_bench::BenchFixture,
    user_scores: &[f32],
    rng: &mut StdRng,
) -> u32 {
    let ctx = SampleContext {
        scorer: &fx.model,
        train: fx.dataset.train(),
        popularity: fx.dataset.popularity(),
        user_scores,
        epoch: 0,
    };
    let pos = fx.dataset.train().items_of(0)[0];
    sampler.sample(0, pos, &ctx, rng).unwrap_or(0)
}

fn per_sampler_draw_cost(c: &mut Criterion) {
    let fx = fixture(200, 1_000, 7);
    let mut user_scores = vec![0.0f32; 1_000];
    fx.model.score_all(0, &mut user_scores);
    let mut group = c.benchmark_group("draw_cost_1k_items");
    group.sample_size(30);
    for cfg in SamplerConfig::paper_lineup() {
        let mut sampler =
            build_sampler(&cfg, &fx.dataset, Some(&fx.occupations)).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(cfg.display_name(), |b| {
            b.iter(|| black_box(draw_loop(sampler.as_mut(), &fx, &user_scores, &mut rng)))
        });
    }
    group.finish();
}

fn bns_linear_in_catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("bns_draw_vs_catalog");
    group.sample_size(25);
    for &n_items in &[500u32, 1_000, 2_000, 4_000] {
        let fx = fixture(100, n_items, 11);
        let mut user_scores = vec![0.0f32; n_items as usize];
        fx.model.score_all(0, &mut user_scores);
        let cfg = SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: PriorKind::Popularity,
        };
        let mut sampler = build_sampler(&cfg, &fx.dataset, None).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |b, _| {
            b.iter(|| black_box(draw_loop(sampler.as_mut(), &fx, &user_scores, &mut rng)))
        });
    }
    group.finish();
}

fn bns_cost_vs_candidate_size(c: &mut Criterion) {
    let fx = fixture(100, 2_000, 13);
    let mut user_scores = vec![0.0f32; 2_000];
    fx.model.score_all(0, &mut user_scores);
    let mut group = c.benchmark_group("bns_draw_vs_m");
    group.sample_size(25);
    for &m in &[1usize, 5, 20, 100] {
        let cfg = SamplerConfig::Bns {
            config: BnsConfig {
                m,
                ..BnsConfig::default()
            },
            prior: PriorKind::Popularity,
        };
        let mut sampler = build_sampler(&cfg, &fx.dataset, None).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(draw_loop(sampler.as_mut(), &fx, &user_scores, &mut rng)))
        });
    }
    group.finish();
}

fn ecdf_exact_vs_subsample(c: &mut Criterion) {
    let fx = fixture(100, 4_000, 17);
    let mut user_scores = vec![0.0f32; 4_000];
    fx.model.score_all(0, &mut user_scores);
    let mut group = c.benchmark_group("bns_ecdf_strategy_4k_items");
    group.sample_size(25);
    for (label, strategy) in [
        ("exact", EcdfStrategy::Exact),
        ("subsample_256", EcdfStrategy::Subsample(256)),
    ] {
        let cfg = SamplerConfig::Bns {
            config: BnsConfig {
                ecdf: strategy,
                ..BnsConfig::default()
            },
            prior: PriorKind::Popularity,
        };
        let mut sampler = build_sampler(&cfg, &fx.dataset, None).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut rng = StdRng::seed_from_u64(4);
        group.bench_function(label, |b| {
            b.iter(|| black_box(draw_loop(sampler.as_mut(), &fx, &user_scores, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    per_sampler_draw_cost,
    bns_linear_in_catalog,
    bns_cost_vs_candidate_size,
    ecdf_exact_vs_subsample
);
criterion_main!(benches);
