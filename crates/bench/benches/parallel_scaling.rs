//! Parallel-trainer scaling: triples/second at 1/2/4/8 hogwild shards
//! versus the serial engine, on the synthetic dataset.
//!
//! Every benchmark in the group trains the same workload (same dataset,
//! same epochs, fresh model per iteration), so wall-time ratios are
//! throughput ratios: `serial time / hogwild-at-T time` is the speedup at
//! `T` threads. Run with
//!
//! ```sh
//! cargo bench -p bns-bench --bench parallel_scaling
//! ```
//!
//! Two sampler workloads bracket the cost spectrum: RNS (trainer-bound,
//! the update loop dominates) and BNS (sampler-bound, the Eq. 16 ECDF
//! scan dominates). On a machine with ≥ 4 cores the 4-shard hogwild runs
//! should clear 2× serial throughput on both; results on fewer cores
//! measure engine overhead only.

use bns_bench::fixture;
use bns_core::{
    build_sampler, train, BnsConfig, NoopObserver, ParallelConfig, ParallelTrainer, PriorKind,
    SamplerConfig, TrainConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const EPOCHS: usize = 2;
const SEED: u64 = 0xB15;

fn train_config() -> TrainConfig {
    TrainConfig::paper_mf(EPOCHS, SEED)
}

fn samplers() -> Vec<(&'static str, SamplerConfig)> {
    vec![
        ("rns", SamplerConfig::Rns),
        (
            "bns",
            SamplerConfig::Bns {
                config: BnsConfig::default(),
                prior: PriorKind::Popularity,
            },
        ),
    ]
}

/// The sampler-bound regime at a larger catalog: BNS draws dominate the
/// epoch, so shard scaling here measures how well the **fused draw**
/// parallelizes (each worker gathers scores straight from the shared
/// hogwild tables — no rating-vector buffers anywhere).
fn bench_parallel_scaling_large_catalog(c: &mut Criterion) {
    let fx = fixture(64, 2_000, 13);
    let mut group = c.benchmark_group("parallel_scaling_bns_2k_items");
    group.sample_size(10);
    let sampler_cfg = SamplerConfig::Bns {
        config: BnsConfig::default(),
        prior: PriorKind::Popularity,
    };
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("bns_fused/hogwild", threads),
            &threads,
            |b, &threads| {
                let trainer = ParallelTrainer::new(
                    TrainConfig::paper_mf(1, SEED),
                    ParallelConfig::hogwild(threads),
                )
                .unwrap();
                b.iter(|| {
                    let mut model = fx.model.clone();
                    let stats = trainer
                        .train(
                            &mut model,
                            &fx.dataset,
                            &sampler_cfg,
                            None,
                            &mut NoopObserver,
                        )
                        .unwrap();
                    black_box(stats.triples)
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let fx = fixture(256, 320, 7);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    for (name, sampler_cfg) in samplers() {
        // Serial baseline: the bit-exact engine.
        group.bench_function(BenchmarkId::new(&format!("{name}/serial"), 1), |b| {
            b.iter(|| {
                let mut model = fx.model.clone();
                let mut sampler = build_sampler(&sampler_cfg, &fx.dataset, None).unwrap();
                let stats = train(
                    &mut model,
                    &fx.dataset,
                    sampler.as_mut(),
                    &train_config(),
                    &mut NoopObserver,
                )
                .unwrap();
                black_box(stats.triples)
            })
        });

        // Hogwild at 1/2/4/8 shards.
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(&format!("{name}/hogwild"), threads),
                &threads,
                |b, &threads| {
                    let trainer =
                        ParallelTrainer::new(train_config(), ParallelConfig::hogwild(threads))
                            .unwrap();
                    b.iter(|| {
                        let mut model = fx.model.clone();
                        let stats = trainer
                            .train(
                                &mut model,
                                &fx.dataset,
                                &sampler_cfg,
                                None,
                                &mut NoopObserver,
                            )
                            .unwrap();
                        black_box(stats.triples)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_scaling,
    bench_parallel_scaling_large_catalog
);
criterion_main!(benches);
