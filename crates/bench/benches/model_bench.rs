//! Model benchmarks: the score/update primitives whose costs dominate
//! training, for both MF and LightGCN.

use bns_bench::fixture;
use bns_model::lightgcn::NormAdjacency;
use bns_model::{LightGcn, PairwiseModel, Scorer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn mf_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("mf");
    for &n_items in &[1_000u32, 4_000] {
        let fx = fixture(200, n_items, 5);
        let mut out = vec![0.0f32; n_items as usize];
        group.bench_with_input(
            BenchmarkId::new("score_all_d32", n_items),
            &n_items,
            |b, _| b.iter(|| fx.model.score_all(black_box(0), &mut out)),
        );
    }
    let fx = fixture(200, 1_000, 5);
    let mut model = fx.model.clone();
    group.bench_function("bpr_triple_update_d32", |b| {
        b.iter(|| black_box(model.accumulate_triple(0, 1, 2, 0.01, 0.01)))
    });
    group.finish();
}

fn lightgcn_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("lightgcn");
    group.sample_size(30);
    let fx = fixture(300, 1_200, 9);
    let adj = NormAdjacency::from_interactions(fx.dataset.train());
    let n = adj.n_nodes();
    let dim = 32usize;
    let src = vec![0.1f32; n * dim];
    let mut dst = vec![0.0f32; n * dim];
    group.bench_function("propagate_full_graph_d32", |b| {
        b.iter(|| adj.propagate(black_box(&src), &mut dst, dim))
    });

    let mut rng = StdRng::seed_from_u64(1);
    let mut gcn = LightGcn::new(fx.dataset.train(), dim, 1, 0.1, &mut rng).unwrap();
    let pairs: Vec<(u32, u32)> = fx.dataset.train().iter_pairs().take(128).collect();
    group.bench_function("batch128_accumulate_and_backward", |b| {
        b.iter(|| {
            gcn.begin_batch();
            for &(u, i) in &pairs {
                let neg = (i + 1) % gcn.n_items();
                if !fx.dataset.train().contains(u, neg) {
                    black_box(gcn.accumulate_triple(u, i, neg, 0.01, 1e-5));
                }
            }
            gcn.end_batch(0.01, 1e-5);
        })
    });
    group.finish();
}

criterion_group!(benches, mf_primitives, lightgcn_primitives);
criterion_main!(benches);
