//! Serving load generator → `BENCH_serve.json`.
//!
//! Freezes a paper-scale MF model into a `bns-serve` artifact and replays
//! Zipf-distributed user traffic against the [`bns_serve::QueryEngine`],
//! recording per-request latency percentiles and aggregate throughput the
//! same machine-readable way `bench_json` records sampler draws:
//!
//! * artifact freeze/save/load wall time and encoded size;
//! * single-thread and multi-thread engine runs (p50/p99 ms, queries/sec,
//!   **scored items/sec** = queries × catalog — the acceptance number of
//!   the serving PR is ≥ 1M at d = 32, 10k items multi-threaded), each
//!   recording both the requested and the effective worker count (workers
//!   clamp to the core count — on a small box a "multi_thread" section can
//!   legitimately have run serial, and now says so);
//! * a cached multi-thread run (generation-stamped LRU in front of the
//!   GEMV path) with its hit rate;
//! * an **IVF section**: the same traffic through the probe path
//!   ([`bns_serve::IndexMode::Ivf`]), with the measured recall@10 of the
//!   approximate answers against the exact ranking and the throughput
//!   ratio — the exact-vs-IVF comparison this file exists to pin;
//! * a **wire section**: the same Zipf traffic replayed through loopback
//!   TCP sockets against a live [`bns_serve::NetServer`]
//!   (`--wire-clients` concurrent [`bns_serve::WireClient`]s), recording
//!   client-observed p50/p99 and queries/sec — engine-vs-wire is the
//!   protocol + socket overhead, pinned in the same file.
//!
//! `--index auto` (default) runs the IVF section whenever the artifact
//! froze with an index; `--index ivf:<nprobe>` forces an index build and a
//! probe width (plain `ivf` takes the default width); `--index exact`
//! skips the section.
//!
//! ```sh
//! cargo run --release -p bns-bench --bin serve_bench              # paper scale
//! cargo run --release -p bns-bench --bin serve_bench -- \
//!     --scale 0.05 --index ivf:8 --out target/BENCH_serve_smoke.json  # CI smoke
//! ```

use bns_bench::fixture;
use bns_data::synthetic::clustered_item_embedding;
use bns_model::{Embedding, MatrixFactorization, Scorer};
use bns_serve::proto::ModeRequest;
use bns_serve::{
    IndexMode, IvfConfig, ModelArtifact, NetConfig, NetServer, QueryEngine, Request, ServeReport,
    Status, WireClient,
};
use bns_stats::AliasTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// What `--index` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IndexArg {
    /// IVF section iff the artifact froze with an index (the auto
    /// threshold), at the default probe width.
    Auto,
    /// No IVF section.
    Exact,
    /// Force an index build; `Some(n)` pins the probe width, `None` takes
    /// the default.
    Ivf(Option<usize>),
}

struct Args {
    users: u32,
    items: u32,
    requests: usize,
    k: usize,
    threads: usize,
    zipf: f64,
    cache: usize,
    seed: u64,
    scale: f64,
    index: IndexArg,
    wire_clients: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 200,
        items: 10_000,
        requests: 20_000,
        k: 10,
        // Default to exactly the core count: requesting more threads than
        // cores only oversubscribes the CPU and inflates p99 by scheduler
        // timeslices (the engine clamps to the core count regardless).
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        zipf: 1.0,
        cache: 0, // 0 → capacity defaults to n_users in the cached run
        seed: 41,
        scale: 1.0,
        index: IndexArg::Auto,
        wire_clients: 4,
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--users" => args.users = value().parse().expect("--users takes a u32"),
            "--items" => args.items = value().parse().expect("--items takes a u32"),
            "--requests" => args.requests = value().parse().expect("--requests takes a usize"),
            "--k" => args.k = value().parse().expect("--k takes a usize"),
            "--threads" => args.threads = value().parse().expect("--threads takes a usize"),
            "--zipf" => args.zipf = value().parse().expect("--zipf takes an f64"),
            "--cache" => args.cache = value().parse().expect("--cache takes a usize"),
            "--seed" => args.seed = value().parse().expect("--seed takes a u64"),
            "--scale" => args.scale = value().parse().expect("--scale takes an f64"),
            "--index" => {
                let v = value();
                args.index = match v.as_str() {
                    "auto" => IndexArg::Auto,
                    "exact" => IndexArg::Exact,
                    "ivf" => IndexArg::Ivf(None),
                    other => match other.strip_prefix("ivf:") {
                        Some(n) => IndexArg::Ivf(Some(
                            n.parse().expect("--index ivf:<nprobe> takes a usize"),
                        )),
                        None => panic!("--index takes auto|exact|ivf|ivf:<nprobe>, got {v}"),
                    },
                };
            }
            "--wire-clients" => {
                args.wire_clients = value().parse().expect("--wire-clients takes a usize");
                assert!(args.wire_clients >= 1, "--wire-clients must be >= 1");
            }
            "--out" => args.out = value(),
            other => panic!(
                "unknown flag {other} (expected --users/--items/--requests/--k/--threads/--zipf/--cache/--seed/--scale/--index/--wire-clients/--out)"
            ),
        }
    }
    assert!(
        args.scale > 0.0 && args.scale <= 1.0,
        "--scale must be in (0, 1]"
    );
    if args.scale < 1.0 {
        let s = args.scale;
        args.users = ((args.users as f64 * s) as u32).max(8);
        args.items = ((args.items as f64 * s) as u32).max(64);
        args.requests = ((args.requests as f64 * s) as usize).max(200);
    }
    args
}

/// Zipf-distributed users: user `u` has weight `1 / (u + 1)^s`, sampled
/// through the alias table (O(1) per draw) — the standard skewed-traffic
/// model where a few head users dominate the request stream.
fn zipf_requests(args: &Args, rng: &mut StdRng) -> Vec<Request> {
    let weights: Vec<f64> = (0..args.users)
        .map(|u| 1.0 / ((u + 1) as f64).powf(args.zipf))
        .collect();
    let alias = AliasTable::new(&weights).expect("valid Zipf weights");
    (0..args.requests)
        .map(|_| Request {
            user: alias.sample(rng) as u32,
            k: args.k,
            exclude_seen: true,
        })
        .collect()
}

struct RunStats {
    label: &'static str,
    requested_threads: usize,
    threads: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    scored_items_per_sec: f64,
    cache_hit_rate: f64,
}

fn run_stats(
    label: &'static str,
    report: &ServeReport,
    n_items: u32,
    scored_queries: usize,
    cache_hit_rate: f64,
) -> RunStats {
    RunStats {
        label,
        requested_threads: report.requested_threads,
        threads: report.threads,
        qps: report.queries_per_sec(),
        p50_ms: report.latency_percentile_ms(0.5),
        p99_ms: report.latency_percentile_ms(0.99),
        scored_items_per_sec: scored_queries as f64 * n_items as f64
            / report.wall_seconds.max(1e-12),
        cache_hit_rate,
    }
}

fn write_run(json: &mut String, r: &RunStats, indent: &str, comma: &str) {
    let _ = writeln!(
        json,
        "{indent}\"{}\": {{ \"requested_threads\": {}, \"threads\": {}, \"queries_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"scored_items_per_sec\": {:.1}, \"cache_hit_rate\": {:.4} }}{comma}",
        r.label, r.requested_threads, r.threads, r.qps, r.p50_ms, r.p99_ms, r.scored_items_per_sec, r.cache_hit_rate
    );
}

/// Client-observed statistics of the loopback TCP replay.
struct WireStats {
    clients: usize,
    requests: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Replays `requests` through `clients` concurrent loopback connections
/// against a live [`NetServer`] over the artifact, measuring latency at
/// the client (send → full response decoded). Also curls `/metrics` once
/// over the HTTP shim as a liveness check of the exposition path.
fn wire_run(artifact: &ModelArtifact, requests: &[Request], clients: usize, k: u16) -> WireStats {
    let server = NetServer::bind(
        "127.0.0.1:0",
        QueryEngine::new(artifact.clone()),
        NetConfig {
            queue_depth: 256,
            max_connections: clients + 8,
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");
    let addr = server.local_addr();

    let t_wall = Instant::now();
    let latencies_ns: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let slice: Vec<Request> =
                    requests.iter().skip(c).step_by(clients).copied().collect();
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr).expect("loopback connect");
                    let mut lat = Vec::with_capacity(slice.len());
                    for req in &slice {
                        let t = Instant::now();
                        let resp = client
                            .top_k(req.user, k, req.exclude_seen, ModeRequest::Default)
                            .expect("wire request");
                        assert_eq!(resp.status, Status::Ok, "wire request refused");
                        lat.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_seconds = t_wall.elapsed().as_secs_f64();

    // Liveness check of the HTTP shim while the server is still up.
    {
        use std::io::{Read as _, Write as _};
        let mut s = std::net::TcpStream::connect(addr).expect("metrics connect");
        write!(s, "GET /metrics HTTP/1.1\r\nhost: bench\r\n\r\n").expect("metrics request");
        let mut body = String::new();
        s.read_to_string(&mut body).expect("metrics response");
        assert!(
            body.contains("bns_requests_ok"),
            "/metrics exposition missing series"
        );
    }

    let mut all: Vec<u64> = latencies_ns.into_iter().flatten().collect();
    all.sort_unstable();
    let n = all.len().max(1);
    let pct = |q: f64| all[((q * (n - 1) as f64).round() as usize).min(n - 1)] as f64 / 1e6;
    WireStats {
        clients,
        requests: all.len(),
        qps: all.len() as f64 / wall_seconds.max(1e-12),
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
    }
}

fn main() {
    let args = parse_args();
    let fx = fixture(args.users, args.items, args.seed);
    let n_items = fx.dataset.n_items();

    // The fixture's random-init item table is the degenerate worst case
    // for cluster probing (trained tables concentrate around preference
    // modes). Re-plant it as a latent group mixture — the same stand-in
    // the scale benchmark uses — so the IVF section measures the regime
    // the index serves, while the exact sections are unaffected (an
    // exhaustive GEMV costs the same over any geometry).
    let dim = fx.model.dim();
    let n_groups = ((4.0 * f64::from(n_items).sqrt()) as u32).clamp(1, n_items);
    let mut item_data = vec![0f32; n_items as usize * dim];
    for (i, row) in item_data.chunks_exact_mut(dim).enumerate() {
        clustered_item_embedding(args.seed ^ 0xC1, n_groups, 0.25, i as u32, row);
    }
    let items = Embedding::from_vec(n_items as usize, dim, item_data).expect("item table");
    let model = MatrixFactorization::from_embeddings(fx.model.users().clone(), items)
        .expect("valid serve model");

    // Freeze → save → load round trip, timed. `--index ivf*` forces an
    // index build below the auto threshold; otherwise freeze decides.
    let t0 = Instant::now();
    let artifact = match args.index {
        IndexArg::Ivf(_) => {
            ModelArtifact::freeze_with(&model, fx.dataset.train(), Some(IvfConfig::default()))
        }
        _ => ModelArtifact::freeze(&model, fx.dataset.train()),
    }
    .expect("freezable model");
    let freeze_ms = t0.elapsed().as_secs_f64() * 1e3;
    let encoded = artifact.encode();
    let artifact_bytes = encoded.len();
    // PID-suffixed: concurrent invocations (ci.sh plus a manual run) must
    // not race on one file with non-atomic writes.
    let path = std::env::temp_dir().join(format!("bns_serve_bench_{}.bnsa", std::process::id()));
    let t0 = Instant::now();
    artifact.save(&path).expect("artifact saved");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let loaded = ModelArtifact::load(&path).expect("artifact reloaded");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::fs::remove_file(&path).ok();

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x21F);
    let requests = zipf_requests(&args, &mut rng);

    let mut runs: Vec<RunStats> = Vec::new();

    // Single-thread baseline.
    let engine = QueryEngine::new(loaded.clone());
    let warm: Vec<Request> = requests.iter().take(200).copied().collect();
    engine.serve(&warm, 1).expect("warm-up");
    let report = engine.serve(&requests, 1).expect("valid requests");
    runs.push(run_stats(
        "single_thread",
        &report,
        n_items,
        requests.len(),
        0.0,
    ));
    let exact_qps = report.queries_per_sec();

    // Multi-thread work-stealing run — the acceptance configuration.
    let engine = QueryEngine::new(loaded.clone());
    engine.serve(&warm, args.threads).expect("warm-up");
    let report = engine
        .serve(&requests, args.threads)
        .expect("valid requests");
    runs.push(run_stats(
        "multi_thread",
        &report,
        n_items,
        requests.len(),
        0.0,
    ));

    // Cached multi-thread run: Zipf traffic repeats head users constantly,
    // so the generation-stamped LRU absorbs most of the scoring work.
    let capacity = if args.cache > 0 {
        args.cache
    } else {
        args.users as usize
    };
    let engine = QueryEngine::with_cache(loaded.clone(), capacity);
    let report = engine
        .serve(&requests, args.threads)
        .expect("valid requests");
    let hits = engine.cache_hits() as usize;
    let hit_rate = hits as f64 / engine.cache_lookups().max(1) as f64;
    runs.push(run_stats(
        "cached_multi_thread",
        &report,
        n_items,
        requests.len() - hits, // cache hits score nothing
        hit_rate,
    ));

    // IVF section: the same traffic through the probe path, plus the
    // measured recall@10 of the approximate answers vs the exact ranking.
    let nprobe = match (args.index, loaded.index()) {
        (IndexArg::Exact, _) | (IndexArg::Auto, None) => None,
        (IndexArg::Ivf(Some(n)), _) => Some(n),
        (IndexArg::Ivf(None), ix) | (IndexArg::Auto, ix) => Some(
            ix.expect("--index ivf froze an index above")
                .default_nprobe(),
        ),
    };
    let ivf = nprobe.map(|nprobe| {
        let exact = QueryEngine::new(loaded.clone());
        let engine = QueryEngine::with_index_mode(loaded.clone(), IndexMode::Ivf { nprobe })
            .expect("artifact carries an index");
        engine.serve(&warm, 1).expect("IVF warm-up");
        let single = engine.serve(&requests, 1).expect("valid requests");
        engine.serve(&warm, args.threads).expect("IVF warm-up");
        let multi = engine
            .serve(&requests, args.threads)
            .expect("valid requests");

        let sample_users = args.users.min(200);
        let mut total = 0.0f64;
        for u in 0..sample_users {
            let truth = exact.top_k(u, 10, true).expect("exact top-10");
            let approx = engine.top_k(u, 10, true).expect("IVF top-10");
            let hit = truth.iter().filter(|i| approx.contains(i)).count();
            total += hit as f64 / truth.len().max(1) as f64;
        }
        let n_clusters = loaded.index().expect("index present").n_clusters();
        (single, multi, total / f64::from(sample_users), n_clusters)
    });

    // Wire section: the same traffic over loopback TCP sockets.
    let wire = wire_run(
        &loaded,
        &requests,
        args.wire_clients,
        u16::try_from(args.k).unwrap_or(u16::MAX),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": 3,");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"n_users\": {}, \"n_items\": {}, \"dim\": {}, \"requests\": {}, \"k\": {}, \"zipf_exponent\": {}, \"threads\": {}, \"cache_capacity\": {}, \"wire_clients\": {} }},",
        args.users,
        args.items,
        model.dim(),
        args.requests,
        args.k,
        args.zipf,
        args.threads,
        capacity,
        args.wire_clients
    );
    let _ = writeln!(
        json,
        "  \"artifact\": {{ \"bytes\": {artifact_bytes}, \"kind\": \"{}\", \"freeze_ms\": {freeze_ms:.3}, \"save_ms\": {save_ms:.3}, \"load_ms\": {load_ms:.3}, \"indexed\": {} }},",
        artifact.kind().name(),
        loaded.index().is_some(),
    );
    for r in &runs {
        write_run(&mut json, r, "  ", ",");
    }
    match &ivf {
        Some((single, multi, recall, n_clusters)) => {
            let nprobe = nprobe.expect("ivf implies nprobe");
            let _ = writeln!(json, "  \"ivf\": {{");
            let _ = writeln!(
                json,
                "    \"nprobe\": {nprobe}, \"n_clusters\": {n_clusters}, \"recall_at_10\": {recall:.4}, \"speedup_vs_exact_single\": {:.2},",
                single.queries_per_sec() / exact_qps.max(1e-9)
            );
            for (label, report, comma) in
                [("single_thread", single, ","), ("multi_thread", multi, "")]
            {
                let _ = writeln!(
                    json,
                    "    \"{label}\": {{ \"requested_threads\": {}, \"threads\": {}, \"queries_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}{comma}",
                    report.requested_threads,
                    report.threads,
                    report.queries_per_sec(),
                    report.latency_percentile_ms(0.5),
                    report.latency_percentile_ms(0.99),
                );
            }
            let _ = writeln!(json, "  }},");
        }
        None => {
            let _ = writeln!(json, "  \"ivf\": null,");
        }
    }
    let _ = writeln!(
        json,
        "  \"wire\": {{ \"clients\": {}, \"requests\": {}, \"queries_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}",
        wire.clients, wire.requests, wire.qps, wire.p50_ms, wire.p99_ms
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).expect("writing the serve benchmark JSON");
    println!("wrote {}", args.out);
    print!("{json}");

    // Sanity: the loaded artifact must reproduce the live model bitwise —
    // a load generator that silently served wrong scores would be worse
    // than useless.
    let u = requests[0].user;
    for i in 0..n_items.min(64) {
        assert_eq!(
            loaded.score(u, i).to_bits(),
            model.score(u, i).to_bits(),
            "frozen score diverged from the live model"
        );
    }
}
