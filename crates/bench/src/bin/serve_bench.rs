//! Serving load generator → `BENCH_serve.json`.
//!
//! Freezes a paper-scale MF model into a `bns-serve` artifact and replays
//! Zipf-distributed user traffic against the [`bns_serve::QueryEngine`],
//! recording per-request latency percentiles and aggregate throughput the
//! same machine-readable way `bench_json` records sampler draws:
//!
//! * artifact freeze/save/load wall time and encoded size;
//! * single-thread and multi-thread engine runs (p50/p99 ms, queries/sec,
//!   **scored items/sec** = queries × catalog — the acceptance number of
//!   the serving PR is ≥ 1M at d = 32, 10k items multi-threaded);
//! * a cached multi-thread run (generation-stamped LRU in front of the
//!   GEMV path) with its hit rate.
//!
//! ```sh
//! cargo run --release -p bns-bench --bin serve_bench              # paper scale
//! cargo run --release -p bns-bench --bin serve_bench -- \
//!     --scale 0.05 --out target/BENCH_serve_smoke.json            # CI smoke
//! ```

use bns_bench::fixture;
use bns_model::Scorer;
use bns_serve::{ModelArtifact, QueryEngine, Request, ServeReport};
use bns_stats::AliasTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    users: u32,
    items: u32,
    requests: usize,
    k: usize,
    threads: usize,
    zipf: f64,
    cache: usize,
    seed: u64,
    scale: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 200,
        items: 10_000,
        requests: 20_000,
        k: 10,
        // Default to exactly the core count: requesting more threads than
        // cores only oversubscribes the CPU and inflates p99 by scheduler
        // timeslices (the engine clamps to the core count regardless).
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        zipf: 1.0,
        cache: 0, // 0 → capacity defaults to n_users in the cached run
        seed: 41,
        scale: 1.0,
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--users" => args.users = value().parse().expect("--users takes a u32"),
            "--items" => args.items = value().parse().expect("--items takes a u32"),
            "--requests" => args.requests = value().parse().expect("--requests takes a usize"),
            "--k" => args.k = value().parse().expect("--k takes a usize"),
            "--threads" => args.threads = value().parse().expect("--threads takes a usize"),
            "--zipf" => args.zipf = value().parse().expect("--zipf takes an f64"),
            "--cache" => args.cache = value().parse().expect("--cache takes a usize"),
            "--seed" => args.seed = value().parse().expect("--seed takes a u64"),
            "--scale" => args.scale = value().parse().expect("--scale takes an f64"),
            "--out" => args.out = value(),
            other => panic!(
                "unknown flag {other} (expected --users/--items/--requests/--k/--threads/--zipf/--cache/--seed/--scale/--out)"
            ),
        }
    }
    assert!(
        args.scale > 0.0 && args.scale <= 1.0,
        "--scale must be in (0, 1]"
    );
    if args.scale < 1.0 {
        let s = args.scale;
        args.users = ((args.users as f64 * s) as u32).max(8);
        args.items = ((args.items as f64 * s) as u32).max(64);
        args.requests = ((args.requests as f64 * s) as usize).max(200);
    }
    args
}

/// Zipf-distributed users: user `u` has weight `1 / (u + 1)^s`, sampled
/// through the alias table (O(1) per draw) — the standard skewed-traffic
/// model where a few head users dominate the request stream.
fn zipf_requests(args: &Args, rng: &mut StdRng) -> Vec<Request> {
    let weights: Vec<f64> = (0..args.users)
        .map(|u| 1.0 / ((u + 1) as f64).powf(args.zipf))
        .collect();
    let alias = AliasTable::new(&weights).expect("valid Zipf weights");
    (0..args.requests)
        .map(|_| Request {
            user: alias.sample(rng) as u32,
            k: args.k,
            exclude_seen: true,
        })
        .collect()
}

struct RunStats {
    label: &'static str,
    threads: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    scored_items_per_sec: f64,
    cache_hit_rate: f64,
}

fn run_stats(
    label: &'static str,
    report: &ServeReport,
    n_items: u32,
    scored_queries: usize,
    cache_hit_rate: f64,
) -> RunStats {
    RunStats {
        label,
        threads: report.threads,
        qps: report.queries_per_sec(),
        p50_ms: report.latency_percentile_ms(0.5),
        p99_ms: report.latency_percentile_ms(0.99),
        scored_items_per_sec: scored_queries as f64 * n_items as f64
            / report.wall_seconds.max(1e-12),
        cache_hit_rate,
    }
}

fn main() {
    let args = parse_args();
    let fx = fixture(args.users, args.items, args.seed);
    let n_items = fx.dataset.n_items();

    // Freeze → save → load round trip, timed.
    let t0 = Instant::now();
    let artifact = ModelArtifact::freeze(&fx.model, fx.dataset.train()).expect("freezable model");
    let freeze_ms = t0.elapsed().as_secs_f64() * 1e3;
    let encoded = artifact.encode();
    let artifact_bytes = encoded.len();
    // PID-suffixed: concurrent invocations (ci.sh plus a manual run) must
    // not race on one file with non-atomic writes.
    let path = std::env::temp_dir().join(format!("bns_serve_bench_{}.bnsa", std::process::id()));
    let t0 = Instant::now();
    artifact.save(&path).expect("artifact saved");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let loaded = ModelArtifact::load(&path).expect("artifact reloaded");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::fs::remove_file(&path).ok();

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x21F);
    let requests = zipf_requests(&args, &mut rng);

    let mut runs: Vec<RunStats> = Vec::new();

    // Single-thread baseline.
    let engine = QueryEngine::new(loaded.clone());
    let warm: Vec<Request> = requests.iter().take(200).copied().collect();
    engine.serve(&warm, 1).expect("warm-up");
    let report = engine.serve(&requests, 1).expect("valid requests");
    runs.push(run_stats(
        "single_thread",
        &report,
        n_items,
        requests.len(),
        0.0,
    ));

    // Multi-thread work-stealing run — the acceptance configuration.
    let engine = QueryEngine::new(loaded.clone());
    engine.serve(&warm, args.threads).expect("warm-up");
    let report = engine
        .serve(&requests, args.threads)
        .expect("valid requests");
    runs.push(run_stats(
        "multi_thread",
        &report,
        n_items,
        requests.len(),
        0.0,
    ));

    // Cached multi-thread run: Zipf traffic repeats head users constantly,
    // so the generation-stamped LRU absorbs most of the scoring work.
    let capacity = if args.cache > 0 {
        args.cache
    } else {
        args.users as usize
    };
    let engine = QueryEngine::with_cache(loaded.clone(), capacity);
    let report = engine
        .serve(&requests, args.threads)
        .expect("valid requests");
    let hits = engine.cache_hits() as usize;
    let hit_rate = hits as f64 / engine.cache_lookups().max(1) as f64;
    runs.push(run_stats(
        "cached_multi_thread",
        &report,
        n_items,
        requests.len() - hits, // cache hits score nothing
        hit_rate,
    ));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"n_users\": {}, \"n_items\": {}, \"dim\": {}, \"requests\": {}, \"k\": {}, \"zipf_exponent\": {}, \"threads\": {}, \"cache_capacity\": {} }},",
        args.users,
        args.items,
        fx.model.dim(),
        args.requests,
        args.k,
        args.zipf,
        args.threads,
        capacity
    );
    let _ = writeln!(
        json,
        "  \"artifact\": {{ \"bytes\": {artifact_bytes}, \"kind\": \"{}\", \"freeze_ms\": {freeze_ms:.3}, \"save_ms\": {save_ms:.3}, \"load_ms\": {load_ms:.3} }},",
        artifact.kind().name()
    );
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "  \"{}\": {{ \"threads\": {}, \"queries_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"scored_items_per_sec\": {:.1}, \"cache_hit_rate\": {:.4} }}{comma}",
            r.label, r.threads, r.qps, r.p50_ms, r.p99_ms, r.scored_items_per_sec, r.cache_hit_rate
        );
    }
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).expect("writing the serve benchmark JSON");
    println!("wrote {}", args.out);
    print!("{json}");

    // Sanity: the loaded artifact must reproduce the live model bitwise —
    // a load generator that silently served wrong scores would be worse
    // than useless.
    let u = requests[0].user;
    for i in 0..n_items.min(64) {
        assert_eq!(
            loaded.score(u, i).to_bits(),
            fx.model.score(u, i).to_bits(),
            "frozen score diverged from the live model"
        );
    }
}
