//! Machine-readable sampler benchmarks → `BENCH_samplers.json`.
//!
//! Criterion output is human-oriented; this runner times the same hot
//! paths with plain `Instant` loops and writes one JSON file so the
//! repo's perf trajectory can be diffed PR-over-PR:
//!
//! * draws/sec for every lineup sampler (RNS / PNS / AOBPR / DNS / SRNS /
//!   BNS), measured through `sample_pair` so each sampler pays exactly its
//!   declared `ScoreAccess` cost;
//! * GEMV items/sec (the `score_all` kernel);
//! * the fused BNS draw vs. the pre-fused reference
//!   ([`bns_bench::UnfusedBns`]) and their speedup ratio — the
//!   acceptance number of the fused-kernel PR (≥ 2× at d = 32,
//!   n_items ≥ 10k);
//! * the batched pipeline: per-pair vs `sample_batch` draws/sec on the
//!   same shuffled mixed-user pair stream (batch 256, k = 1) — the
//!   acceptance number of the batch-pipeline PR (batched BNS and DNS/SRNS
//!   must beat the per-pair path at paper scale).
//!
//! ```sh
//! cargo run --release -p bns-bench --bin bench_json            # paper scale
//! cargo run --release -p bns-bench --bin bench_json -- \
//!     --users 50 --items 200 --draws 500 --out target/smoke.json   # CI smoke
//! ```

use bns_bench::{fixture, UnfusedBns};
use bns_core::sampler::SampleContext;
use bns_core::trainer::sample_pair;
use bns_core::{build_sampler, SamplerConfig};
use bns_model::{Scorer, TripleBatch};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Args {
    users: u32,
    items: u32,
    draws: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 200,
        items: 10_000,
        draws: 20_000,
        out: "BENCH_samplers.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--users" => args.users = value().parse().expect("--users takes a u32"),
            "--items" => args.items = value().parse().expect("--items takes a u32"),
            "--draws" => args.draws = value().parse().expect("--draws takes a usize"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other} (expected --users/--items/--draws/--out)"),
        }
    }
    args
}

/// Times `f` over `n` iterations and returns iterations/sec.
fn rate(n: usize, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..n {
        f();
    }
    n as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let args = parse_args();
    let fx = fixture(args.users, args.items, 41);
    let train = fx.dataset.train();
    let popularity = fx.dataset.popularity();
    let pos = train.items_of(0)[0];
    let n_items = fx.dataset.n_items() as usize;
    let dim = 32usize; // the fixture's embedding dim (paper §IV-B1)

    // Sampler lineup, each through sample_pair (pays its ScoreAccess cost).
    let lineup = SamplerConfig::paper_lineup();
    let mut sampler_rates: Vec<(String, f64)> = Vec::new();
    for cfg in &lineup {
        let mut sampler =
            build_sampler(cfg, &fx.dataset, Some(&fx.occupations)).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut user_scores = vec![0.0f32; n_items];
        let mut rng = StdRng::seed_from_u64(7);
        // Warm caches and lazily-initialized sampler state.
        for _ in 0..args.draws.min(100) {
            sample_pair(
                sampler.as_mut(),
                &fx.model,
                train,
                popularity,
                &mut user_scores,
                0,
                pos,
                0,
                &mut rng,
            );
        }
        let per_sec = rate(args.draws, || {
            black_box(sample_pair(
                sampler.as_mut(),
                &fx.model,
                train,
                popularity,
                &mut user_scores,
                0,
                pos,
                0,
                &mut rng,
            ));
        });
        sampler_rates.push((cfg.display_name().to_string(), per_sec));
    }

    // Batched pipeline vs per-pair on one shuffled mixed-user stream: the
    // by-user grouping only has runs to amortize when users actually
    // repeat, so both sides are measured on the same realistic epoch
    // schedule (unlike the single-user lineup rates above).
    const BATCH: usize = 256;
    let mut mixed_pairs: Vec<(u32, u32)> = train.iter_pairs().collect();
    {
        use rand::seq::SliceRandom;
        mixed_pairs.shuffle(&mut StdRng::seed_from_u64(3));
    }
    let mut per_pair_mixed: Vec<(String, f64)> = Vec::new();
    let mut batched: Vec<(String, f64)> = Vec::new();
    for cfg in &lineup {
        let passes = (args.draws / mixed_pairs.len().max(1)).max(2);
        // Per-pair reference.
        {
            let mut sampler =
                build_sampler(cfg, &fx.dataset, Some(&fx.occupations)).expect("valid sampler");
            sampler.on_epoch_start(0);
            let mut user_scores = vec![0.0f32; n_items];
            let mut rng = StdRng::seed_from_u64(7);
            for &(u, pos) in mixed_pairs.iter().take(200) {
                sample_pair(
                    sampler.as_mut(),
                    &fx.model,
                    train,
                    popularity,
                    &mut user_scores,
                    u,
                    pos,
                    0,
                    &mut rng,
                );
            }
            let started = Instant::now();
            for _ in 0..passes {
                for &(u, pos) in &mixed_pairs {
                    black_box(sample_pair(
                        sampler.as_mut(),
                        &fx.model,
                        train,
                        popularity,
                        &mut user_scores,
                        u,
                        pos,
                        0,
                        &mut rng,
                    ));
                }
            }
            let rate =
                (passes * mixed_pairs.len()) as f64 / started.elapsed().as_secs_f64().max(1e-9);
            per_pair_mixed.push((cfg.display_name().to_string(), rate));
        }
        // Batched pipeline, batch 256, k = 1.
        {
            let mut sampler =
                build_sampler(cfg, &fx.dataset, Some(&fx.occupations)).expect("valid sampler");
            sampler.on_epoch_start(0);
            let mut rng = StdRng::seed_from_u64(7);
            let mut batch = TripleBatch::new();
            let ctx = SampleContext {
                scorer: &fx.model,
                train,
                popularity,
                user_scores: &[],
                epoch: 0,
            };
            for chunk in mixed_pairs.chunks(BATCH).take(2) {
                sampler.sample_batch(chunk, 1, &ctx, &mut rng, &mut batch);
            }
            let started = Instant::now();
            for _ in 0..passes {
                for chunk in mixed_pairs.chunks(BATCH) {
                    sampler.sample_batch(chunk, 1, &ctx, &mut rng, &mut batch);
                    black_box(batch.len());
                }
            }
            let rate =
                (passes * mixed_pairs.len()) as f64 / started.elapsed().as_secs_f64().max(1e-9);
            batched.push((cfg.display_name().to_string(), rate));
        }
    }

    // GEMV throughput: items scored per second by score_all.
    let gemv_items_per_sec = {
        let mut out = vec![0.0f32; n_items];
        let passes = (args.draws / 10).max(10);
        let passes_per_sec = rate(passes, || {
            fx.model.score_all(0, &mut out);
            black_box(out[0]);
        });
        passes_per_sec * n_items as f64
    };

    // Fused vs. pre-fused BNS draw.
    let fused_per_sec = sampler_rates
        .iter()
        .find(|(name, _)| name == "BNS")
        .map(|&(_, r)| r)
        .expect("BNS is in the lineup");
    let unfused_per_sec = {
        let mut reference = UnfusedBns::new(&fx.dataset);
        let mut rng = StdRng::seed_from_u64(7);
        let n = (args.draws / 4).max(50);
        rate(n, || {
            black_box(reference.draw(&fx.model, train, 0, pos, &mut rng));
        })
    };
    let speedup = fused_per_sec / unfused_per_sec;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"n_users\": {}, \"n_items\": {}, \"dim\": {}, \"draws\": {} }},",
        args.users, args.items, dim, args.draws
    );
    let _ = writeln!(json, "  \"samplers_draws_per_sec\": {{");
    for (k, (name, r)) in sampler_rates.iter().enumerate() {
        let comma = if k + 1 < sampler_rates.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {r:.1}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"batched\": {{");
    let _ = writeln!(json, "    \"batch_size\": {BATCH},");
    let _ = writeln!(json, "    \"k_negatives\": 1,");
    let _ = writeln!(json, "    \"per_pair_mixed_draws_per_sec\": {{");
    for (i, (name, r)) in per_pair_mixed.iter().enumerate() {
        let comma = if i + 1 < per_pair_mixed.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(json, "      \"{name}\": {r:.1}{comma}");
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"batched_draws_per_sec\": {{");
    for (i, (name, r)) in batched.iter().enumerate() {
        let comma = if i + 1 < batched.len() { "," } else { "" };
        let _ = writeln!(json, "      \"{name}\": {r:.1}{comma}");
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"batched_speedup\": {{");
    for (i, ((name, b), (_, p))) in batched.iter().zip(&per_pair_mixed).enumerate() {
        let comma = if i + 1 < batched.len() { "," } else { "" };
        let _ = writeln!(json, "      \"{name}\": {:.3}{comma}", b / p);
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gemv_items_per_sec\": {gemv_items_per_sec:.1},");
    let _ = writeln!(json, "  \"bns_ecdf\": {{");
    let _ = writeln!(json, "    \"fused_draws_per_sec\": {fused_per_sec:.1},");
    let _ = writeln!(json, "    \"unfused_draws_per_sec\": {unfused_per_sec:.1},");
    let _ = writeln!(json, "    \"fused_speedup\": {speedup:.3}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).expect("writing the benchmark JSON");
    println!("wrote {}", args.out);
    print!("{json}");
}
