//! Million-scale substrate benchmark → `BENCH_scale.json`.
//!
//! Pins the four numbers the data-substrate PR is about, at catalog sizes
//! where the pre-streamed pipeline would have materialized multi-GB latent
//! matrices: 10k → 100k → 1M users (square catalogs, ~20 interactions per
//! user, model dim 16):
//!
//! * **generator rows/sec** — the streamed CSR generator
//!   ([`bns_data::synthetic::generate_streamed`]), which derives every
//!   latent coordinate from a hash of `(seed, id)` on the fly and keeps
//!   only O(n_items) popularity state resident;
//! * **artifact load_ms** — buffered (`read` + copy + full verify) vs
//!   mmap-backed zero-copy ([`ModelArtifact::load_mapped`]), same chunked
//!   checksum verification on both paths;
//! * **sampler draws/sec** — RNS (the O(1) floor) and BNS (the paper's
//!   linear-in-catalog sampler) through the real `sample_pair` path;
//! * **serve queries/sec** — the work-stealing engine over the mapped
//!   artifact, Zipf-skewed traffic, p50/p99 per tier — exhaustive scan
//!   **and** the IVF probe path at the default width, with measured
//!   recall@10 and the speedup pinned next to each other. The item table
//!   is planted as a latent group mixture
//!   ([`bns_data::synthetic::clustered_item_embedding`]) so the catalog
//!   is clusterable the way a trained table is; uniform-random items
//!   would make cluster probing meaningless at any width.
//!
//! Each tier also records `VmRSS`/`VmHWM` so "no dense latent tables"
//! is a number in the JSON, not a claim in a doc.
//!
//! ```sh
//! cargo run --release -p bns-bench --bin scale_bench               # full 3 tiers
//! cargo run --release -p bns-bench --bin scale_bench -- \
//!     --scale 0.01 --out target/BENCH_scale_smoke.json              # CI smoke
//! ```

use bns_core::trainer::sample_pair;
use bns_core::{build_sampler, SamplerConfig};
use bns_data::synthetic::{
    clustered_item_embedding, generate_streamed, EmissionMode, SyntheticConfig,
};
use bns_data::{split_random, Dataset, SplitConfig};
use bns_model::{Embedding, MatrixFactorization};
use bns_serve::{IndexMode, ModelArtifact, QueryEngine, Request};
use bns_stats::AliasTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Full-scale tier sizes (users = items).
const TIERS: [u32; 3] = [10_000, 100_000, 1_000_000];
/// Model/embedding dimension for the artifact + serving stages.
const DIM: usize = 16;
/// Target interactions per user.
const PER_USER: usize = 20;

struct Args {
    scale: f64,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 47,
        out: "BENCH_scale.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value().parse().expect("--scale takes an f64"),
            "--seed" => args.seed = value().parse().expect("--seed takes a u64"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other} (expected --scale/--seed/--out)"),
        }
    }
    assert!(
        args.scale > 0.0 && args.scale <= 1.0,
        "--scale must be in (0, 1]"
    );
    args
}

/// Reads a `VmRSS`-style field from `/proc/self/status`, in MiB.
/// Returns 0 where procfs is unavailable (non-Linux).
fn proc_status_mb(field: &str) -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .and_then(|rest| {
            rest.trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<f64>()
                .ok()
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

struct TierStats {
    n_users: u32,
    n_items: u32,
    interactions: usize,
    emission: &'static str,
    gen_rows_per_sec: f64,
    gen_interactions_per_sec: f64,
    gen_wall_ms: f64,
    rss_after_generate_mb: f64,
    artifact_bytes: usize,
    load_ms_buffered: f64,
    load_ms_mapped: f64,
    mapped_zero_copy: bool,
    rns_draws_per_sec: f64,
    bns_draws_per_sec: f64,
    serve_threads: usize,
    serve_qps: f64,
    serve_p50_ms: f64,
    serve_p99_ms: f64,
    ivf: Option<IvfStats>,
    vm_hwm_mb: f64,
}

/// The sublinear serving section of a tier: probe width, throughput, and
/// the measured quality of the approximation against the exact ranking.
struct IvfStats {
    n_clusters: usize,
    nprobe: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
    speedup_x: f64,
}

fn run_tier(full_users: u32, args: &Args) -> TierStats {
    let n_users = ((full_users as f64 * args.scale) as u32).max(64);
    let n_items = n_users;
    let cfg = SyntheticConfig {
        n_users,
        n_items,
        target_interactions: n_users as usize * PER_USER,
        seed: args.seed ^ u64::from(full_users),
        ..SyntheticConfig::default()
    };

    // Streamed generation: the only O(catalog) state is popularity.
    let t0 = Instant::now();
    let interactions = generate_streamed(&cfg).expect("valid scale config");
    let gen_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let rss_after_generate_mb = proc_status_mb("VmRSS");
    let emission = match cfg.resolved_emission() {
        EmissionMode::Exact => "exact",
        EmissionMode::Pooled { .. } => "pooled",
        EmissionMode::Auto => unreachable!("resolved"),
    };

    // Freeze a dim-16 MF model over the generated CSR, then time both
    // load paths on the same file. Users are random; the item table is a
    // planted latent group mixture (≈ one group per auto IVF cluster) so
    // the catalog has the modal structure a trained table has — the
    // regime cluster-probed retrieval is built for.
    let mut model_rng = StdRng::seed_from_u64(cfg.seed ^ 0xF0);
    let users =
        Embedding::normal_init(n_users as usize, DIM, 0.1, &mut model_rng).expect("user table");
    let n_groups = ((4.0 * f64::from(n_items).sqrt()) as u32).clamp(1, n_items);
    let mut item_data = vec![0f32; n_items as usize * DIM];
    for (i, row) in item_data.chunks_exact_mut(DIM).enumerate() {
        clustered_item_embedding(cfg.seed ^ 0xF1, n_groups, 0.25, i as u32, row);
    }
    let items = Embedding::from_vec(n_items as usize, DIM, item_data).expect("item table");
    let model = MatrixFactorization::from_embeddings(users, items).expect("valid scale model");
    let artifact = ModelArtifact::freeze(&model, &interactions).expect("freezable model");
    let path = std::env::temp_dir().join(format!(
        "bns_scale_bench_{}_{}.bnsa",
        n_users,
        std::process::id()
    ));
    artifact.save(&path).expect("artifact saved");
    let artifact_bytes = std::fs::metadata(&path).expect("artifact stat").len() as usize;
    let t0 = Instant::now();
    let buffered = ModelArtifact::load(&path).expect("buffered load");
    let load_ms_buffered = t0.elapsed().as_secs_f64() * 1e3;
    drop(buffered);
    let t0 = Instant::now();
    let mapped = ModelArtifact::load_mapped(&path).expect("mapped load");
    let load_ms_mapped = t0.elapsed().as_secs_f64() * 1e3;
    let mapped_zero_copy = mapped.is_mapped();

    // Sampler draws through the real training entry point. RNS is the
    // O(1) floor; BNS pays its full linear-in-catalog cost per draw, so
    // its draw budget shrinks as the tier grows.
    let mut split_rng = StdRng::seed_from_u64(cfg.seed ^ 0xBE);
    let (train_set, test_set) =
        split_random(&interactions, SplitConfig::default(), &mut split_rng).expect("scale split");
    let dataset = Dataset::new("scale", train_set, test_set).expect("valid scale dataset");
    let train = dataset.train();
    let popularity = dataset.popularity();
    let u0 = *dataset
        .train()
        .active_users()
        .first()
        .expect("tier has active users");
    let pos = train.items_of(u0)[0];
    let draws_per_sec = |config: &SamplerConfig, draws: usize| -> f64 {
        let mut sampler = build_sampler(config, &dataset, None).expect("valid sampler");
        sampler.on_epoch_start(0);
        let mut user_scores: Vec<f32> = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..draws.min(20) {
            sample_pair(
                sampler.as_mut(),
                &model,
                train,
                popularity,
                &mut user_scores,
                u0,
                pos,
                0,
                &mut rng,
            );
        }
        let started = Instant::now();
        for _ in 0..draws {
            black_box(sample_pair(
                sampler.as_mut(),
                &model,
                train,
                popularity,
                &mut user_scores,
                u0,
                pos,
                0,
                &mut rng,
            ));
        }
        draws as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let rns_draws = 200_000;
    let bns_draws = (40_000_000 / n_users as usize).clamp(40, 10_000);
    let rns_draws_per_sec = draws_per_sec(&SamplerConfig::Rns, rns_draws);
    let bns_draws_per_sec = draws_per_sec(
        &SamplerConfig::Bns {
            config: Default::default(),
            prior: bns_core::PriorKind::Popularity,
        },
        bns_draws,
    );

    // Serve Zipf traffic over the *mapped* artifact — queries score
    // straight out of the page cache, no decoded copy in between.
    let has_index = mapped.index().is_some();
    let engine = QueryEngine::new(mapped.clone());
    let n_requests = (80_000_000 / n_users as usize).clamp(100, 20_000);
    let weights: Vec<f64> = (0..n_users).map(|u| 1.0 / f64::from(u + 1)).collect();
    let alias = AliasTable::new(&weights).expect("valid Zipf weights");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x21F);
    let make_requests = |rng: &mut StdRng, n: usize| -> Vec<Request> {
        (0..n)
            .map(|_| Request {
                user: alias.sample(rng) as u32,
                k: 10,
                exclude_seen: true,
            })
            .collect()
    };
    let requests = make_requests(&mut rng, n_requests);
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let warm: Vec<Request> = requests.iter().take(50).copied().collect();
    engine.serve(&warm, threads).expect("warm-up");
    let report = engine.serve(&requests, threads).expect("valid requests");

    // The IVF probe path at the default width over the *same* mapped
    // artifact, plus a measured recall@10 against the exact ranking. The
    // approximate path is far faster, so it gets a proportionally larger
    // request batch for a stable clock.
    let ivf = has_index.then(|| {
        let index = mapped.index().expect("index checked above");
        let nprobe = index.default_nprobe();
        let n_clusters = index.n_clusters();
        let ivf_engine = QueryEngine::with_index_mode(mapped.clone(), IndexMode::Ivf { nprobe })
            .expect("artifact carries an index");
        let ivf_requests = make_requests(&mut rng, (n_requests * 32).clamp(2_000, 20_000));
        let warm: Vec<Request> = ivf_requests.iter().take(50).copied().collect();
        ivf_engine.serve(&warm, threads).expect("IVF warm-up");
        let ivf_report = ivf_engine
            .serve(&ivf_requests, threads)
            .expect("valid IVF requests");

        let sample_users = 200u32.min(n_users);
        let mut total = 0.0f64;
        for u in 0..sample_users {
            let truth = engine.top_k(u, 10, true).expect("exact top-10");
            let approx = ivf_engine.top_k(u, 10, true).expect("IVF top-10");
            let hit = truth.iter().filter(|i| approx.contains(i)).count();
            total += hit as f64 / truth.len().max(1) as f64;
        }
        IvfStats {
            n_clusters,
            nprobe,
            qps: ivf_report.queries_per_sec(),
            p50_ms: ivf_report.latency_percentile_ms(0.5),
            p99_ms: ivf_report.latency_percentile_ms(0.99),
            recall_at_10: total / f64::from(sample_users),
            speedup_x: ivf_report.queries_per_sec() / report.queries_per_sec().max(1e-9),
        }
    });

    std::fs::remove_file(&path).ok();
    TierStats {
        n_users,
        n_items,
        interactions: interactions.len(),
        emission,
        gen_rows_per_sec: n_users as f64 / gen_secs,
        gen_interactions_per_sec: interactions.len() as f64 / gen_secs,
        gen_wall_ms: gen_secs * 1e3,
        rss_after_generate_mb,
        artifact_bytes,
        load_ms_buffered,
        load_ms_mapped,
        mapped_zero_copy,
        rns_draws_per_sec,
        bns_draws_per_sec,
        serve_threads: report.threads,
        serve_qps: report.queries_per_sec(),
        serve_p50_ms: report.latency_percentile_ms(0.5),
        serve_p99_ms: report.latency_percentile_ms(0.99),
        ivf,
        vm_hwm_mb: proc_status_mb("VmHWM"),
    }
}

fn main() {
    let args = parse_args();
    let mut tiers: Vec<TierStats> = Vec::new();
    for full_users in TIERS {
        let t = run_tier(full_users, &args);
        let ivf_line = t.ivf.as_ref().map_or_else(
            || " (no index below auto threshold)".to_string(),
            |v| {
                format!(
                    ", ivf {:.0} q/s ({:.1}x, recall@10 {:.3}, nprobe {}/{})",
                    v.qps, v.speedup_x, v.recall_at_10, v.nprobe, v.n_clusters
                )
            },
        );
        println!(
            "tier {}x{}: {} interactions, gen {:.0} rows/s, load {:.2}ms buffered / {:.2}ms mapped, serve exact {:.0} q/s{}",
            t.n_users,
            t.n_items,
            t.interactions,
            t.gen_rows_per_sec,
            t.load_ms_buffered,
            t.load_ms_mapped,
            t.serve_qps,
            ivf_line
        );
        tiers.push(t);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"scale\": {}, \"dim\": {DIM}, \"per_user\": {PER_USER}, \"seed\": {} }},",
        args.scale, args.seed
    );
    let _ = writeln!(json, "  \"tiers\": [");
    for (k, t) in tiers.iter().enumerate() {
        let comma = if k + 1 < tiers.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"n_users\": {}, \"n_items\": {}, \"interactions\": {},",
            t.n_users, t.n_items, t.interactions
        );
        let _ = writeln!(
            json,
            "      \"generator\": {{ \"emission\": \"{}\", \"rows_per_sec\": {:.1}, \"interactions_per_sec\": {:.1}, \"wall_ms\": {:.2}, \"rss_after_mb\": {:.1} }},",
            t.emission,
            t.gen_rows_per_sec,
            t.gen_interactions_per_sec,
            t.gen_wall_ms,
            t.rss_after_generate_mb
        );
        let _ = writeln!(
            json,
            "      \"artifact\": {{ \"bytes\": {}, \"load_ms_buffered\": {:.3}, \"load_ms_mapped\": {:.3}, \"mapped_zero_copy\": {} }},",
            t.artifact_bytes, t.load_ms_buffered, t.load_ms_mapped, t.mapped_zero_copy
        );
        let _ = writeln!(
            json,
            "      \"samplers_draws_per_sec\": {{ \"RNS\": {:.1}, \"BNS\": {:.1} }},",
            t.rns_draws_per_sec, t.bns_draws_per_sec
        );
        let _ = writeln!(
            json,
            "      \"serve\": {{ \"threads\": {}, \"queries_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }},",
            t.serve_threads, t.serve_qps, t.serve_p50_ms, t.serve_p99_ms
        );
        match &t.ivf {
            Some(v) => {
                let _ = writeln!(
                    json,
                    "      \"serve_ivf\": {{ \"n_clusters\": {}, \"nprobe\": {}, \"queries_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"recall_at_10\": {:.4}, \"speedup_x\": {:.1} }},",
                    v.n_clusters, v.nprobe, v.qps, v.p50_ms, v.p99_ms, v.recall_at_10, v.speedup_x
                );
            }
            None => {
                let _ = writeln!(json, "      \"serve_ivf\": null,");
            }
        }
        let _ = writeln!(json, "      \"vm_hwm_mb\": {:.1}", t.vm_hwm_mb);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).expect("writing the scale benchmark JSON");
    println!("wrote {}", args.out);
}
