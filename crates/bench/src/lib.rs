//! Shared fixtures for the Criterion benches.
//!
//! The benchmark targets live in `benches/`:
//!
//! * `sampler_micro`  — per-draw sampler latency; the BNS linear-complexity
//!   claim (§III-D) as draw-time vs catalog size; exact-vs-subsampled ECDF
//!   ablation.
//! * `stats_bench`    — special functions, ECDF, alias sampling.
//! * `model_bench`    — MF/LightGCN scoring, updates, propagation.
//! * `table_bench`    — miniature regenerations of Tables I–IV.
//! * `fig_bench`      — miniature regenerations of Figs. 1–5.
//! * `parallel_scaling` — sharded-trainer throughput at 1/2/4/8 hogwild
//!   shards vs the serial engine (triples/sec ratios).

use bns_data::synthetic::{generate, SyntheticConfig};
use bns_data::{split_random, Dataset, Occupations, SplitConfig};
use bns_model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-train fixture: dataset + occupations + model.
pub struct BenchFixture {
    /// The train/test dataset.
    pub dataset: Dataset,
    /// Occupation labels.
    pub occupations: Occupations,
    /// An MF model with random embeddings.
    pub model: MatrixFactorization,
}

/// Builds a deterministic fixture with density ≈ 5%.
pub fn fixture(n_users: u32, n_items: u32, seed: u64) -> BenchFixture {
    let cfg = SyntheticConfig {
        n_users,
        n_items,
        target_interactions: (n_users as usize * n_items as usize) / 20,
        seed,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("valid bench config");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("bench split");
    let dataset = Dataset::new("bench", train_set, test_set).expect("valid bench dataset");
    let mut model_rng = StdRng::seed_from_u64(seed ^ 0xF0);
    let model = MatrixFactorization::new(
        dataset.n_users(),
        dataset.n_items(),
        32,
        0.1,
        &mut model_rng,
    )
    .expect("valid bench model");
    BenchFixture {
        dataset,
        occupations: synthetic.occupations,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = fixture(40, 80, 1);
        assert_eq!(f.dataset.n_users(), 40);
        assert_eq!(f.dataset.n_items(), 80);
        assert!(!f.dataset.train().is_empty());
    }
}
