//! Shared fixtures for the Criterion benches.
//!
//! The benchmark targets live in `benches/`:
//!
//! * `sampler_micro`  — per-draw sampler latency; the BNS linear-complexity
//!   claim (§III-D) as draw-time vs catalog size; exact-vs-subsampled ECDF
//!   ablation.
//! * `stats_bench`    — special functions, ECDF, alias sampling.
//! * `model_bench`    — MF/LightGCN scoring, updates, propagation.
//! * `table_bench`    — miniature regenerations of Tables I–IV.
//! * `fig_bench`      — miniature regenerations of Figs. 1–5.
//! * `parallel_scaling` — sharded-trainer throughput at 1/2/4/8 hogwild
//!   shards vs the serial engine (triples/sec ratios).
//! * `fused_draw`     — the fused BNS draw against the pre-fused
//!   reference implementation kept in [`UnfusedBns`].
//!
//! The `bench_json` binary (`cargo run -p bns-bench --bin bench_json`)
//! re-times the sampler lineup without Criterion and writes the results to
//! `BENCH_samplers.json`, so the repo's perf trajectory is
//! machine-readable.

use bns_core::bns::prior::{PopularityPrior, Prior};
use bns_core::bns::risk::selection_value;
use bns_core::sampler::draw_candidate_set;
use bns_data::synthetic::{generate, SyntheticConfig};
use bns_data::{split_random, Dataset, Interactions, Occupations, SplitConfig};
use bns_model::loss::info;
use bns_model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-train fixture: dataset + occupations + model.
pub struct BenchFixture {
    /// The train/test dataset.
    pub dataset: Dataset,
    /// Occupation labels.
    pub occupations: Occupations,
    /// An MF model with random embeddings.
    pub model: MatrixFactorization,
}

/// Builds a deterministic fixture with density ≈ 5%.
pub fn fixture(n_users: u32, n_items: u32, seed: u64) -> BenchFixture {
    let cfg = SyntheticConfig {
        n_users,
        n_items,
        target_interactions: (n_users as usize * n_items as usize) / 20,
        seed,
        ..SyntheticConfig::default()
    };
    let synthetic = generate(&cfg).expect("valid bench config");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("bench split");
    let dataset = Dataset::new("bench", train_set, test_set).expect("valid bench dataset");
    let mut model_rng = StdRng::seed_from_u64(seed ^ 0xF0);
    let model = MatrixFactorization::new(
        dataset.n_users(),
        dataset.n_items(),
        32,
        0.1,
        &mut model_rng,
    )
    .expect("valid bench model");
    BenchFixture {
        dataset,
        occupations: synthetic.occupations,
        model,
    }
}

/// The **pre-fused** BNS draw, kept verbatim as the baseline the fused
/// path is benchmarked against (`fused_draw` bench, `bench_json` runner).
///
/// This is what the seed implementation did per draw, including its
/// sequential (non-unrolled) dot products: materialize the full rating
/// vector x̂ᵤ into an `n_items` buffer, draw m candidates, then run one
/// independent Eq. (16) scan over that buffer per candidate and apply the
/// Eq. (32) min-risk rule. Total traffic: `n·d` scalar MACs + `(m+1)·n`
/// buffer touches per draw — the cost profile the fused kernel collapses.
pub struct UnfusedBns {
    m: usize,
    lambda: f64,
    prior: PopularityPrior,
    scores: Vec<f32>,
    candidates: Vec<u32>,
}

impl UnfusedBns {
    /// Builds the reference sampler (paper defaults: |Mᵤ| = 5, λ = 5,
    /// Eq. 17 popularity prior) for the given dataset.
    pub fn new(dataset: &Dataset) -> Self {
        Self {
            m: 5,
            lambda: 5.0,
            prior: PopularityPrior::new(dataset.popularity()),
            scores: vec![0.0f32; dataset.n_items() as usize],
            candidates: Vec::with_capacity(5),
        }
    }

    /// The seed's scalar `score_all`: one latency-bound sequential dot per
    /// item row (the pre-kernel Algorithm 1 line 4).
    fn scalar_score_all(model: &MatrixFactorization, u: u32, out: &mut [f32]) {
        let wu = model.user_embedding(u);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = wu
                .iter()
                .zip(model.item_embedding(i as u32))
                .map(|(a, b)| a * b)
                .sum();
        }
    }

    /// One pre-fused draw for `(u, pos)`; `None` when the user has no
    /// negatives.
    pub fn draw(
        &mut self,
        model: &MatrixFactorization,
        train: &Interactions,
        u: u32,
        pos: u32,
        rng: &mut StdRng,
    ) -> Option<u32> {
        Self::scalar_score_all(model, u, &mut self.scores);
        if !draw_candidate_set(train, u, self.m, &mut self.candidates, rng) {
            return None;
        }
        let positives = train.items_of(u);
        let n_neg = self.scores.len() - positives.len();
        let score_pos = self.scores[pos as usize];
        let mut best: Option<(f64, u32)> = None;
        for &l in &self.candidates {
            let x = self.scores[l as usize];
            // Independent Eq. (16) scan per candidate — the m catalog-sized
            // re-reads the fused pass eliminates.
            let all_le = self.scores.iter().filter(|&&s| s <= x).count();
            let pos_le = positives
                .iter()
                .filter(|&&p| self.scores[p as usize] <= x)
                .count();
            let f_hat = if n_neg == 0 {
                0.5
            } else {
                (all_le - pos_le) as f64 / n_neg as f64
            };
            let unb = bns_core::bns::unbias(f_hat, self.prior.p_fn(u, l));
            let risk = selection_value(info(score_pos, x) as f64, unb, self.lambda);
            if best.map(|(r, _)| risk < r).unwrap_or(true) {
                best = Some((risk, l));
            }
        }
        best.map(|(_, l)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = fixture(40, 80, 1);
        assert_eq!(f.dataset.n_users(), 40);
        assert_eq!(f.dataset.n_items(), 80);
        assert!(!f.dataset.train().is_empty());
    }

    #[test]
    fn unfused_reference_draws_valid_negatives() {
        let f = fixture(30, 60, 2);
        let mut reference = UnfusedBns::new(&f.dataset);
        let mut rng = StdRng::seed_from_u64(3);
        let train = f.dataset.train();
        let pos = train.items_of(0)[0];
        for _ in 0..200 {
            let j = reference.draw(&f.model, train, 0, pos, &mut rng).unwrap();
            assert!(!train.contains(0, j), "reference sampled a positive");
        }
    }
}
