//! The multi-threaded request loop: scoped workers over a work-stealing
//! request queue.
//!
//! A request batch is split into one contiguous shard per worker, each
//! with an atomic claim cursor. A worker drains its own shard first
//! (cache-friendly: its requests are adjacent), then **steals** from the
//! other shards' cursors until every shard is exhausted — the same
//! shard-then-steal structure as a classic work-stealing deque, built from
//! nothing but `AtomicUsize::fetch_add`. Skewed request costs (cache hits
//! vs full GEMV queries, hot vs cold users) therefore cannot strand work
//! behind a slow shard.
//!
//! Each claim drains up to [`QueryEngine::coalesce`] **adjacent** requests
//! in one `ClaimCursor::claim_many` RMW; multi-request runs go through
//! [`QueryEngine::top_k_batch_into`], which scores exact-mode misses as
//! one blocked multi-user GEMM. Coalescing changes throughput and the
//! latency distribution (a coalesced request's latency is its batch's
//! wall time), never answers.
//!
//! Scheduling never changes answers: each request is claimed by exactly
//! one worker, computed with that worker's private [`QueryScratch`], and
//! written back to its input position. The report is identical whatever
//! the thread count — only the latency distribution moves.
//!
//! The worker count is capped at `available_parallelism()`: every worker
//! is CPU-bound for its whole life, so threads beyond the core count add
//! no throughput but push the latency tail out by the scheduler timeslice
//! — a preempted worker holds its claimed request for a full quantum
//! (~10ms under default CFS), which is three orders of magnitude above a
//! normal query. Each shard cursor lives on its own cache line
//! ([`CachePadded`]) so claims on different shards never contend.

use crate::query::{QueryEngine, QueryScratch};
use bns_sync::{CachePadded, ClaimCursor};
use std::time::Instant;

/// One top-k query: `user`, cutoff `k`, and whether the user's frozen
/// training positives are excluded from the list (§II protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// User id within the artifact's id space.
    pub user: u32,
    /// Recommendation-list cutoff.
    pub k: usize,
    /// Mask the user's seen items out of the list.
    pub exclude_seen: bool,
}

/// One answered request: the ranked list and its service latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedList {
    /// The requesting user.
    pub user: u32,
    /// Item ids, best first; shorter than `k` when the candidate pool is.
    pub items: Vec<u32>,
    /// Wall-clock service time of this single request, in nanoseconds.
    pub latency_ns: u64,
}

/// The outcome of one [`QueryEngine::serve`] batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Answers aligned with the request batch (index i answers request i).
    pub results: Vec<RankedList>,
    /// Wall-clock duration of the whole batch.
    pub wall_seconds: f64,
    /// Worker threads actually used, after clamping to the request count
    /// and `available_parallelism()`. When this is below
    /// [`requested_threads`](Self::requested_threads), the host could not
    /// honor the request — a "multi-thread" benchmark section with
    /// `threads: 1` ran serial and should be read as such.
    pub threads: usize,
    /// Worker threads the caller asked for, before clamping.
    pub requested_threads: usize,
}

impl ServeReport {
    /// Aggregate queries per second over the batch.
    pub fn queries_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.wall_seconds.max(1e-12)
    }

    /// Nearest-rank latency percentile in milliseconds (`q` in `[0, 1]`,
    /// e.g. `0.5` for p50, `0.99` for p99). Returns 0 for empty batches.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        if self.results.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<u64> = self.results.iter().map(|r| r.latency_ns).collect();
        lat.sort_unstable();
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1] as f64 / 1e6
    }
}

/// Runs the sharded work-stealing loop. Requests must be pre-validated
/// (the engine's public `serve` wrapper does); a worker panics on an
/// invalid user rather than dropping the request silently.
pub(crate) fn serve_parallel(
    engine: &QueryEngine,
    requests: &[Request],
    n_threads: usize,
) -> ServeReport {
    let requested_threads = n_threads;
    let n = requests.len();
    if n == 0 {
        return ServeReport {
            results: Vec::new(),
            wall_seconds: 0.0,
            threads: 0,
            requested_threads,
        };
    }
    // Cap at the core count: an extra CPU-bound worker on a saturated box
    // cannot raise throughput, but its preemptions stretch p99 by a whole
    // scheduler quantum per involuntary context switch.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let n_threads = n_threads.max(1).min(n).min(cores);
    let chunk = n.div_ceil(n_threads);
    // Shard s covers [s·chunk, min((s+1)·chunk, n)); cursor s is the next
    // unclaimed index in that shard. ClaimCursor claims are exclusive, so
    // every request is answered exactly once (pinned across interleavings
    // by the bns-check `steal` scenarios); overshoot past the shard end is
    // bounded by one failed claim per visiting worker.
    let bounds: Vec<(usize, usize)> = (0..n_threads)
        .map(|s| (s * chunk, ((s + 1) * chunk).min(n)))
        .collect();
    let cursors: Vec<CachePadded<ClaimCursor>> = bounds
        .iter()
        .map(|&(lo, _)| CachePadded::new(ClaimCursor::new(lo)))
        .collect();

    let started = Instant::now();
    let mut parts: Vec<Vec<(usize, RankedList)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                let cursors = &cursors;
                let bounds = &bounds;
                scope.spawn(move || {
                    let batch = engine.coalesce();
                    let mut scratch = QueryScratch::new();
                    let mut local: Vec<(usize, RankedList)> = Vec::new();
                    let mut outs: Vec<Vec<u32>> = Vec::new();
                    for visit in 0..n_threads {
                        let shard = (w + visit) % n_threads;
                        let (_, end) = bounds[shard];
                        loop {
                            // One claim grabs up to `batch` adjacent
                            // requests; the run is truncated at the shard
                            // end, so a thief's overshoot still wastes at
                            // most one claim.
                            let start = cursors[shard].claim_many(batch);
                            if start >= end {
                                break;
                            }
                            let run = &requests[start..(start + batch).min(end)];
                            if run.len() == 1 {
                                let r = run[0];
                                // Allocate the answer buffer before
                                // starting the clock: latency_ns measures
                                // the query, not the allocator.
                                let mut items = Vec::with_capacity(r.k);
                                let t0 = Instant::now();
                                engine
                                    .top_k_into(
                                        r.user,
                                        r.k,
                                        r.exclude_seen,
                                        &mut scratch,
                                        &mut items,
                                    )
                                    .expect("requests validated before serve_parallel");
                                local.push((
                                    start,
                                    RankedList {
                                        user: r.user,
                                        items,
                                        latency_ns: t0.elapsed().as_nanos() as u64,
                                    },
                                ));
                            } else {
                                outs.clear();
                                outs.extend(run.iter().map(|r| Vec::with_capacity(r.k)));
                                let t0 = Instant::now();
                                engine
                                    .top_k_batch_into(run, &mut scratch, &mut outs)
                                    .expect("requests validated before serve_parallel");
                                // Coalesced requests share the batch's
                                // wall time: each waited for the whole
                                // blocked GEMM, so that *is* its service
                                // latency.
                                let elapsed = t0.elapsed().as_nanos() as u64;
                                for (off, (r, items)) in run.iter().zip(outs.drain(..)).enumerate()
                                {
                                    local.push((
                                        start + off,
                                        RankedList {
                                            user: r.user,
                                            items,
                                            latency_ns: elapsed,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut slots: Vec<Option<RankedList>> = (0..n).map(|_| None).collect();
    for part in parts.iter_mut() {
        for (idx, ranked) in part.drain(..) {
            debug_assert!(slots[idx].is_none(), "request {idx} answered twice");
            slots[idx] = Some(ranked);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every request claimed exactly once"))
        .collect();
    ServeReport {
        results,
        wall_seconds,
        threads: n_threads,
        requested_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelArtifact;
    use bns_data::Interactions;
    use bns_model::MatrixFactorization;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine(cache: bool) -> QueryEngine {
        let mut rng = StdRng::seed_from_u64(17);
        let model = MatrixFactorization::new(12, 40, 8, 0.1, &mut rng).unwrap();
        let pairs: Vec<(u32, u32)> = (0..12u32).flat_map(|u| [(u, u), (u, u + 12)]).collect();
        let seen = Interactions::from_pairs(12, 40, &pairs).unwrap();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        if cache {
            QueryEngine::with_cache(artifact, 16)
        } else {
            QueryEngine::new(artifact)
        }
    }

    fn zipfish_requests(n: usize) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(23);
        (0..n)
            .map(|_| Request {
                user: (rng.random_range(0..12u32) * rng.random_range(0..12u32)) / 12,
                k: 5,
                exclude_seen: true,
            })
            .collect()
    }

    #[test]
    fn parallel_serve_matches_sequential_answers() {
        let e = engine(false);
        let requests = zipfish_requests(300);
        let seq = e.serve(&requests, 1).unwrap();
        let par = e.serve(&requests, 4).unwrap();
        assert_eq!(seq.results.len(), 300);
        // The requested 4 workers are clamped to the machine's core count,
        // so the exact value is host-dependent; the contract under test is
        // that answers are schedule-invariant.
        assert!((1..=4).contains(&par.threads), "threads {}", par.threads);
        for (i, (a, b)) in seq.results.iter().zip(&par.results).enumerate() {
            assert_eq!(a.user, requests[i].user);
            assert_eq!(a.items, b.items, "request {i} diverged across schedules");
        }
    }

    #[test]
    fn cached_serve_matches_uncached() {
        let plain = engine(false);
        let cached = engine(true);
        let requests = zipfish_requests(200);
        let a = plain.serve(&requests, 3).unwrap();
        let b = cached.serve(&requests, 3).unwrap();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.items, y.items);
        }
        assert!(cached.cache_hits() > 0, "repeated users must hit the cache");
    }

    #[test]
    fn report_statistics() {
        let e = engine(false);
        let requests = zipfish_requests(64);
        let report = e.serve(&requests, 2).unwrap();
        assert!(report.queries_per_sec() > 0.0);
        let p50 = report.latency_percentile_ms(0.5);
        let p99 = report.latency_percentile_ms(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn empty_batch_and_oversized_thread_count() {
        let e = engine(false);
        let report = e.serve(&[], 8).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.queries_per_sec(), 0.0);
        // More threads than requests clamps cleanly.
        let one = [Request {
            user: 0,
            k: 3,
            exclude_seen: false,
        }];
        let report = e.serve(&one, 16).unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.threads, 1);
        assert_eq!(
            report.requested_threads, 16,
            "the pre-clamp request must be preserved for reporting"
        );
    }

    #[test]
    fn report_distinguishes_requested_from_effective_threads() {
        let e = engine(false);
        let requests = zipfish_requests(40);
        let report = e.serve(&requests, 6).unwrap();
        assert_eq!(report.requested_threads, 6);
        assert!(report.threads <= 6);
        assert!(report.threads >= 1);
        let empty = e.serve(&[], 6).unwrap();
        assert_eq!(empty.requested_threads, 6);
        assert_eq!(empty.threads, 0);
    }

    #[test]
    fn invalid_request_rejected_before_any_work() {
        let e = engine(false);
        let requests = [
            Request {
                user: 0,
                k: 3,
                exclude_seen: true,
            },
            Request {
                user: 99,
                k: 3,
                exclude_seen: true,
            },
        ];
        assert!(matches!(
            e.serve(&requests, 2),
            Err(crate::ServeError::UnknownUser { user: 99, .. })
        ));
    }
}
