//! A generation-stamped LRU cache for repeated-user top-k queries.
//!
//! Real recommendation traffic is heavily skewed (the `serve_bench` load
//! generator models it as Zipf-distributed users), so a small cache in
//! front of the GEMV + top-k path absorbs most of the load. Entries are
//! stamped with the engine's **generation** counter: swapping in a new
//! artifact bumps the generation once, which logically invalidates every
//! cached list without walking the map — stale entries are then evicted
//! lazily on lookup or when capacity pressure reclaims them first.

use std::collections::HashMap;

/// An LRU map from query keys to frozen top-k lists.
///
/// Recency is tracked with a monotonic tick; eviction scans for the
/// least-recently-used entry in `O(capacity)`, which is deliberate — the
/// cache sits behind a mutex shared by all serve workers, so a simple
/// compact map beats a pointer-chasing linked-list LRU at the small
/// capacities (≤ tens of thousands of users) it is meant for.
///
/// ```
/// use bns_serve::TopKCache;
///
/// let mut cache = TopKCache::new(2);
/// cache.insert(1, 0, &[10, 20]);
/// assert_eq!(cache.get(1, 0), Some(&[10, 20][..]));
/// // A generation bump (artifact swap) invalidates the entry.
/// assert_eq!(cache.get(1, 1), None);
/// ```
#[derive(Debug)]
pub struct TopKCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    generation: u64,
    last_used: u64,
    items: Vec<u32>,
}

impl TopKCache {
    /// Creates a cache holding at most `capacity` lists (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be >= 1");
        Self {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Maximum number of cached lists.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached lists (stale generations included until
    /// they are lazily reclaimed).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key` at `generation`. A hit refreshes the entry's
    /// recency; an entry from an older generation is evicted and reported
    /// as a miss.
    pub fn get(&mut self, key: u64, generation: u64) -> Option<&[u32]> {
        let live = match self.map.get(&key) {
            Some(e) => e.generation == generation,
            None => return None,
        };
        if !live {
            self.map.remove(&key);
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(&key).expect("presence checked above");
        e.last_used = tick;
        Some(&e.items)
    }

    /// Inserts (or replaces) the list for `key` at `generation`, evicting
    /// the least-recently-used entry when at capacity.
    pub fn insert(&mut self, key: u64, generation: u64, items: &[u32]) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Prefer reclaiming a stale-generation entry; otherwise the LRU.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| (e.generation == generation, e.last_used))
                .map(|(&k, _)| k)
                .expect("non-empty at capacity");
            self.map.remove(&victim);
        }
        let tick = self.tick;
        let entry = self.map.entry(key).or_insert_with(|| CacheEntry {
            generation,
            last_used: tick,
            items: Vec::new(),
        });
        entry.generation = generation;
        entry.last_used = tick;
        entry.items.clear();
        entry.items.extend_from_slice(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = TopKCache::new(4);
        assert_eq!(c.get(1, 0), None);
        c.insert(1, 0, &[5, 6]);
        assert_eq!(c.get(1, 0), Some(&[5, 6][..]));
        assert_eq!(c.get(2, 0), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = TopKCache::new(2);
        c.insert(1, 0, &[1]);
        c.insert(2, 0, &[2]);
        let _ = c.get(1, 0); // 1 is now more recent than 2
        c.insert(3, 0, &[3]); // evicts 2
        assert_eq!(c.get(2, 0), None);
        assert_eq!(c.get(1, 0), Some(&[1][..]));
        assert_eq!(c.get(3, 0), Some(&[3][..]));
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut c = TopKCache::new(4);
        c.insert(1, 0, &[1, 2, 3]);
        c.insert(2, 0, &[4]);
        assert_eq!(c.get(1, 1), None, "old generation must miss");
        assert_eq!(c.len(), 1, "stale entry evicted on lookup");
        c.insert(1, 1, &[9]);
        assert_eq!(c.get(1, 1), Some(&[9][..]));
    }

    #[test]
    fn stale_entries_evicted_before_live_ones() {
        let mut c = TopKCache::new(2);
        c.insert(1, 0, &[1]); // stale after the bump below
        c.insert(2, 1, &[2]);
        c.insert(3, 1, &[3]); // at capacity: must evict stale key 1, not key 2
        assert_eq!(c.get(2, 1), Some(&[2][..]));
        assert_eq!(c.get(3, 1), Some(&[3][..]));
    }

    #[test]
    fn replace_reuses_entry() {
        let mut c = TopKCache::new(2);
        c.insert(1, 0, &[1, 2, 3]);
        c.insert(1, 0, &[4]);
        assert_eq!(c.get(1, 0), Some(&[4][..]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        TopKCache::new(0);
    }
}
