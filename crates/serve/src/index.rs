//! The freeze-time IVF index: deterministic k-means over the frozen item
//! table, giving the query engine a sublinear candidate-generation stage.
//!
//! ## Why
//!
//! `QueryEngine::top_k` in exact mode is an exhaustive GEMV — perfect
//! recall, `O(n_items)` per query, which collapses at million-item
//! catalogs (BENCH_scale.json: 15.7k q/s at 10k items down to 157 q/s at
//! 1M). The retrieval-vs-ranking split of the negative-sampling survey
//! (Ma et al., 2409.07237) assumes a candidate-generation stage in front
//! of exact scoring; this module is that stage, built entirely at
//! [`crate::ModelArtifact::freeze`] time and stored inside the artifact.
//!
//! ## What is stored
//!
//! An inverted-file (IVF) layout over the item table:
//!
//! * `centroids` — `n_clusters × dim` k-means cluster centers;
//! * `radii` — per cluster, the max distance of a member to its center
//!   (the Cauchy–Schwarz probe bound below);
//! * `perm` — the item ids permuted so each cluster's members are
//!   **contiguous** (within a cluster, ascending id);
//! * `offsets` — `n_clusters + 1` bounds into `perm`;
//! * `vectors` — the item rows copied into `perm` order (the classic
//!   IVF-Flat inverted-list layout). This spends one extra copy of the
//!   item table so that probing a cluster is a **sequential** scan: the
//!   gather-through-`perm` alternative turns every candidate into a
//!   random cache line, and at million-item catalogs that DRAM latency —
//!   not arithmetic — is what separates a ~10× win from the ≥ 50× the
//!   probe fraction promises.
//!
//! At query time the engine scores all centroids with the shared
//! [`kernel::gemv`], probes the best `nprobe` clusters' contiguous rows
//! through the same [`kernel::gemv`] (bound-ordered, terminating early
//! once no remaining bound can beat the current k-th best), and selects
//! with the same [`bns_eval::topk`] tie-break as the exact path. Clusters
//! are ranked by the **upper bound** `u·c + ‖u‖·r_c ≥ max_{i∈c} u·h_i`
//! rather than the raw centroid score: for max-inner-product retrieval
//! the bound stops high-variance clusters (which hide extreme items
//! behind a mediocre mean) from being skipped, which is what carries
//! recall@10 at small probe fractions — and it makes the early
//! termination lossless.
//!
//! ## Determinism
//!
//! The build is bit-reproducible from `(item table, IvfConfig)` alone:
//! std-only Lloyd's with a fixed iteration count, splitmix64-seeded
//! initialization, fixed-order accumulation, lowest-id tie-breaks on
//! assignment, and empty clusters keeping their previous center. Same
//! seed → byte-identical index section (pinned by
//! `crates/serve/tests/ivf_index.rs`). The ANN *answers* are likewise a
//! pure function of `(artifact, nprobe)` — approximate against the exact
//! ranking, but never nondeterministic.

use crate::{Result, ServeError};
use bns_data::storage::{F32Buf, Storage, U32Buf};
use bns_model::kernel;
use bytes::{BufMut, BytesMut};
use std::sync::Arc;

/// Configuration of the freeze-time k-means build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of clusters; `0` picks `clamp(4·√n_items, 1, n_items/8)`,
    /// which keeps the centroid scan two to three orders of magnitude
    /// under the catalog while leaving clusters fine-grained enough to
    /// probe ~1–2% of items at the default `nprobe`.
    pub n_clusters: usize,
    /// Lloyd iterations over the training sample. Fixed count — no
    /// convergence test — so the build cost and the result are both
    /// deterministic.
    pub iters: usize,
    /// Seed of the splitmix64 stream that picks the initial centers.
    pub seed: u64,
    /// Training-sample budget as a multiple of `n_clusters` (`0` trains
    /// on every item). Lloyd's runs on an evenly-strided sample of
    /// `sample_per_cluster · n_clusters` items, then one full assignment
    /// pass places all items — the standard IVF trick that keeps
    /// freeze-time sub-minute at million-item catalogs.
    pub sample_per_cluster: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            n_clusters: 0,
            iters: 10,
            seed: 0x1BF5_C0DE,
            sample_per_cluster: 32,
        }
    }
}

impl IvfConfig {
    /// The cluster count this config resolves to for an `n_items` catalog.
    pub fn resolved_clusters(&self, n_items: usize) -> usize {
        if self.n_clusters > 0 {
            return self.n_clusters.clamp(1, n_items.max(1));
        }
        let auto = (4.0 * (n_items as f64).sqrt()).ceil() as usize;
        auto.clamp(1, (n_items / 8).max(1))
    }
}

/// The splitmix64 finalizer — full-avalanche 64-bit mixer, the same
/// generator the streamed data substrate derives its latent state from.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A built (or decoded) IVF index over a frozen item table.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    n_items: usize,
    centroids: F32Buf,
    radii: F32Buf,
    offsets: U32Buf,
    perm: U32Buf,
    /// Item rows in `perm` order — bit-identical copies of the frozen
    /// table, laid out so each cluster scans sequentially.
    vectors: F32Buf,
    /// Largest cluster size — the steady-state capacity of the per-worker
    /// candidate-score scratch (derived from `offsets`, not stored).
    max_cluster_len: usize,
}

impl IvfIndex {
    /// Builds the index over a row-major `n_items × dim` item table with
    /// deterministic Lloyd's k-means (see the module doc for the exact
    /// protocol).
    pub fn build(items: &[f32], n_items: usize, dim: usize, cfg: &IvfConfig) -> Self {
        assert!(dim > 0, "IVF index requires dim >= 1");
        assert_eq!(items.len(), n_items * dim, "item table must be n × d");
        assert!(n_items > 0, "IVF index requires a non-empty catalog");
        let k = cfg.resolved_clusters(n_items);

        // Training sample: evenly strided over the catalog (deterministic,
        // order-preserving), capped at sample_per_cluster · k points.
        let budget = if cfg.sample_per_cluster == 0 {
            n_items
        } else {
            (cfg.sample_per_cluster * k).min(n_items)
        };
        let sample: Vec<u32> = if budget >= n_items {
            (0..n_items as u32).collect()
        } else {
            (0..budget)
                .map(|j| ((j as u64 * n_items as u64) / budget as u64) as u32)
                .collect()
        };

        // Seeded init: k distinct sample members via the splitmix64
        // stream, linear-probing past duplicates so the choice is still a
        // pure function of the seed.
        let mut taken = vec![false; sample.len()];
        let mut centroids = vec![0.0f32; k * dim];
        let mut state = cfg.seed;
        for c in 0..k {
            state = splitmix64(state);
            let mut at = (state % sample.len() as u64) as usize;
            while taken[at] {
                at = (at + 1) % sample.len();
            }
            taken[at] = true;
            let row = sample[at] as usize;
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&items[row * dim..(row + 1) * dim]);
        }

        // Lloyd's: fixed iteration count, f64 fixed-order accumulation,
        // empty clusters keep their previous center.
        let mut cnorm = vec![0.0f32; k];
        let mut scores = vec![0.0f32; k];
        let mut assign = vec![0u32; sample.len()];
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for _ in 0..cfg.iters {
            for c in 0..k {
                let row = &centroids[c * dim..(c + 1) * dim];
                cnorm[c] = kernel::dot(row, row);
            }
            for (slot, &id) in assign.iter_mut().zip(&sample) {
                let x = &items[id as usize * dim..(id as usize + 1) * dim];
                *slot = nearest(x, &centroids, &cnorm, &mut scores);
            }
            sums.iter_mut().for_each(|s| *s = 0.0);
            counts.iter_mut().for_each(|c| *c = 0);
            for (&c, &id) in assign.iter().zip(&sample) {
                let x = &items[id as usize * dim..(id as usize + 1) * dim];
                let acc = &mut sums[c as usize * dim..(c as usize + 1) * dim];
                for (a, &v) in acc.iter_mut().zip(x) {
                    *a += v as f64;
                }
                counts[c as usize] += 1;
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *dst = (s * inv) as f32;
                    }
                }
            }
        }

        // Final pass: assign every item, then recompute each center and
        // radius over its actual members (ascending-id order throughout).
        for c in 0..k {
            let row = &centroids[c * dim..(c + 1) * dim];
            cnorm[c] = kernel::dot(row, row);
        }
        let mut full_assign = vec![0u32; n_items];
        for (i, slot) in full_assign.iter_mut().enumerate() {
            let x = &items[i * dim..(i + 1) * dim];
            *slot = nearest(x, &centroids, &cnorm, &mut scores);
        }
        sums.iter_mut().for_each(|s| *s = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, &c) in full_assign.iter().enumerate() {
            let x = &items[i * dim..(i + 1) * dim];
            let acc = &mut sums[c as usize * dim..(c as usize + 1) * dim];
            for (a, &v) in acc.iter_mut().zip(x) {
                *a += v as f64;
            }
            counts[c as usize] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *dst = (s * inv) as f32;
                }
            }
        }

        // Counting sort by cluster: offsets, then the cluster-contiguous
        // permutation (within a cluster, ids ascend because the fill walks
        // items in id order).
        let mut offsets = vec![0u32; k + 1];
        for &c in &full_assign {
            offsets[c as usize + 1] += 1;
        }
        for c in 0..k {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor: Vec<u32> = offsets[..k].to_vec();
        let mut perm = vec![0u32; n_items];
        for (i, &c) in full_assign.iter().enumerate() {
            perm[cursor[c as usize] as usize] = i as u32;
            cursor[c as usize] += 1;
        }

        let mut radii = vec![0.0f32; k];
        for (i, &c) in full_assign.iter().enumerate() {
            let x = &items[i * dim..(i + 1) * dim];
            let ctr = &centroids[c as usize * dim..(c as usize + 1) * dim];
            let mut d2 = 0.0f32;
            for (&a, &b) in x.iter().zip(ctr) {
                let diff = a - b;
                d2 += diff * diff;
            }
            let r = d2.sqrt();
            if r > radii[c as usize] {
                radii[c as usize] = r;
            }
        }

        // Inverted-list vector copy: rows in perm order, bit-identical to
        // the frozen table, so probing streams instead of gathering.
        let mut vectors = vec![0.0f32; n_items * dim];
        for (slot, &id) in vectors.chunks_exact_mut(dim).zip(&perm) {
            slot.copy_from_slice(&items[id as usize * dim..(id as usize + 1) * dim]);
        }

        let max_cluster_len = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        Self {
            dim,
            n_items,
            centroids: F32Buf::from(centroids),
            radii: F32Buf::from(radii),
            offsets: U32Buf::from(offsets),
            perm: U32Buf::from(perm),
            vectors: F32Buf::from(vectors),
            max_cluster_len,
        }
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.offsets.as_slice().len() - 1
    }

    /// Number of indexed items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Size of the largest cluster (steady-state scratch capacity for the
    /// probe path).
    pub fn max_cluster_len(&self) -> usize {
        self.max_cluster_len
    }

    /// The default probe width: a constant 64 clusters (clamped to the
    /// cluster count). With the auto cluster count `k ≈ 4·√n` the probed
    /// *fraction* shrinks as the catalog grows — small test shapes visit
    /// ≥ 25% of clusters (measured recall@10 ≥ 0.95 even on uniform-random
    /// embeddings, the worst case for IVF-MIPS; see
    /// `crates/serve/tests/ivf_recall.rs`), while the 1M-item tier scores
    /// ~4000 centroids + 64 clusters of ~250 items ≈ 20k dots, ≥ 50× under
    /// the exhaustive scan.
    pub fn default_nprobe(&self) -> usize {
        64.min(self.n_clusters())
    }

    /// The cluster-contiguous item permutation.
    pub fn perm(&self) -> &[u32] {
        self.perm.as_slice()
    }

    /// Members of cluster `c` as a contiguous slice of item ids.
    pub fn cluster_items(&self, c: usize) -> &[u32] {
        let offsets = self.offsets.as_slice();
        &self.perm.as_slice()[offsets[c] as usize..offsets[c + 1] as usize]
    }

    /// The embedding rows of cluster `c`'s members, contiguous and in the
    /// same order as [`cluster_items`](Self::cluster_items) — the
    /// sequential scan surface of the probe path.
    pub fn cluster_vectors(&self, c: usize) -> &[f32] {
        let offsets = self.offsets.as_slice();
        &self.vectors.as_slice()[offsets[c] as usize * self.dim..offsets[c + 1] as usize * self.dim]
    }

    /// Scores every cluster for probe ordering: `out[c] = u·cᶜ + ‖u‖·r_c`,
    /// the Cauchy–Schwarz upper bound on any member's inner product with
    /// `u`. Centroid dots go through the shared [`kernel::gemv`], so the
    /// pass is bit-deterministic like every other scoring path.
    pub fn score_clusters(&self, user: &[f32], out: &mut [f32]) {
        debug_assert_eq!(user.len(), self.dim, "user row must match index dim");
        debug_assert_eq!(out.len(), self.n_clusters(), "one slot per cluster");
        kernel::gemv(user, self.centroids.as_slice(), out);
        let unorm = kernel::dot(user, user).sqrt();
        for (slot, &r) in out.iter_mut().zip(self.radii.as_slice()) {
            *slot += unorm * r;
        }
    }

    /// Whether every component serves zero-copy out of a live file mapping.
    pub fn is_mapped(&self) -> bool {
        self.centroids.is_mapped()
            && self.radii.is_mapped()
            && self.offsets.is_mapped()
            && self.perm.is_mapped()
            && self.vectors.is_mapped()
    }

    /// Encoded byte length of the index section body.
    pub(crate) fn encoded_len(&self) -> usize {
        let k = self.n_clusters();
        4 + 4 * (k * self.dim + k + (k + 1) + self.n_items + self.n_items * self.dim)
    }

    /// Appends the index section body: `n_clusters u32`, centroid f32 bit
    /// patterns, radii, offsets, perm, reordered vectors — every array at
    /// a 4-byte-aligned offset when the section itself starts aligned.
    pub(crate) fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.n_clusters() as u32);
        for &v in self.centroids.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
        for &v in self.radii.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
        for &v in self.offsets.as_slice() {
            buf.put_u32_le(v);
        }
        for &v in self.perm.as_slice() {
            buf.put_u32_le(v);
        }
        for &v in self.vectors.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
    }

    /// Decodes an index section at `bytes[at..at + len]` of `storage`,
    /// re-validating every structural invariant (cluster count bounds,
    /// monotone offsets covering exactly `n_items`, `perm` an exact
    /// permutation) — checksums upstream catch corruption, this catches a
    /// hostile-but-checksummed or buggy encoder. Components become
    /// zero-copy views into `storage` where the platform allows.
    pub(crate) fn parse(
        storage: &Arc<Storage>,
        at: usize,
        len: usize,
        n_items: usize,
        dim: usize,
    ) -> Result<Self> {
        let bytes = storage.as_bytes();
        let invalid = |msg: String| ServeError::Invalid(format!("ivf index: {msg}"));
        if len < 4 || at + len > bytes.len() {
            return Err(ServeError::Truncated {
                what: "ivf index section",
            });
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let k = u32_at(at) as usize;
        if k == 0 || k > n_items {
            return Err(invalid(format!("{k} clusters over {n_items} items")));
        }
        let want = 4 + 4 * (k * dim + k + (k + 1) + n_items + n_items * dim);
        if len != want {
            return Err(invalid(format!(
                "section length {len} does not match {k} clusters × dim {dim} over {n_items} items \
                 (expected {want})"
            )));
        }
        let centroids_at = at + 4;
        let radii_at = centroids_at + 4 * k * dim;
        let offsets_at = radii_at + 4 * k;
        let perm_at = offsets_at + 4 * (k + 1);
        let vectors_at = perm_at + 4 * n_items;

        let f32_view = |o: usize, n: usize| -> F32Buf {
            F32Buf::mapped(storage, o, n).unwrap_or_else(|| {
                F32Buf::from(
                    (0..n)
                        .map(|j| f32::from_bits(u32_at(o + 4 * j)))
                        .collect::<Vec<f32>>(),
                )
            })
        };
        let u32_view = |o: usize, n: usize| -> U32Buf {
            U32Buf::mapped(storage, o, n).unwrap_or_else(|| {
                U32Buf::from((0..n).map(|j| u32_at(o + 4 * j)).collect::<Vec<u32>>())
            })
        };
        let centroids = f32_view(centroids_at, k * dim);
        let radii = f32_view(radii_at, k);
        let offsets = u32_view(offsets_at, k + 1);
        let perm = u32_view(perm_at, n_items);
        let vectors = f32_view(vectors_at, n_items * dim);

        {
            let offs = offsets.as_slice();
            if offs[0] != 0 || offs[k] as usize != n_items {
                return Err(invalid("offsets must span [0, n_items]".into()));
            }
            if offs.windows(2).any(|w| w[0] > w[1]) {
                return Err(invalid("offsets must be monotone".into()));
            }
            // Exact-permutation check: each id once. A bitset pass keeps
            // this O(n) time and n/8 bytes of transient memory.
            let mut seen = vec![0u64; n_items.div_ceil(64)];
            for &id in perm.as_slice() {
                let id = id as usize;
                if id >= n_items {
                    return Err(invalid(format!("perm entry {id} out of range")));
                }
                let (w, b) = (id / 64, id % 64);
                if seen[w] & (1 << b) != 0 {
                    return Err(invalid(format!("perm repeats item {id}")));
                }
                seen[w] |= 1 << b;
            }
        }
        let max_cluster_len = offsets
            .as_slice()
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        Ok(Self {
            dim,
            n_items,
            centroids,
            radii,
            offsets,
            perm,
            vectors,
            max_cluster_len,
        })
    }
}

/// Nearest centroid of `x` under squared L2, lowest index on ties.
/// `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²`, and `‖x‖²` is constant across
/// centroids, so the argmin of `cnorm[c] − 2·(x·c)` suffices — one shared
/// [`kernel::gemv`] over the centroid table per point.
fn nearest(x: &[f32], centroids: &[f32], cnorm: &[f32], scores: &mut [f32]) -> u32 {
    kernel::gemv(x, centroids, scores);
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for (c, (&s, &n)) in scores.iter().zip(cnorm).enumerate() {
        let d = n - 2.0 * s;
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_table(n: usize, dim: usize, seed: u32) -> Vec<f32> {
        (0..n * dim)
            .map(|i| {
                let h = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(40503));
                ((h % 2000) as f32 / 1000.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn build_partitions_every_item_exactly_once() {
        let (n, d) = (300usize, 8usize);
        let items = pseudo_table(n, d, 1);
        let index = IvfIndex::build(&items, n, d, &IvfConfig::default());
        let mut seen = vec![false; n];
        for c in 0..index.n_clusters() {
            for &i in index.cluster_items(c) {
                assert!(!seen[i as usize], "item {i} in two clusters");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every item must be indexed");
        // The inverted-list rows are bit-identical copies of the table.
        for c in 0..index.n_clusters() {
            let rows = index.cluster_vectors(c);
            for (j, &i) in index.cluster_items(c).iter().enumerate() {
                let orig = &items[i as usize * d..(i as usize + 1) * d];
                let copy = &rows[j * d..(j + 1) * d];
                assert!(
                    orig.iter()
                        .zip(copy)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "cluster {c} row {j} diverges from item {i}"
                );
            }
        }
    }

    #[test]
    fn cluster_members_ascend_within_each_cluster() {
        let (n, d) = (200usize, 4usize);
        let items = pseudo_table(n, d, 2);
        let index = IvfIndex::build(&items, n, d, &IvfConfig::default());
        for c in 0..index.n_clusters() {
            let members = index.cluster_items(c);
            assert!(
                members.windows(2).all(|w| w[0] < w[1]),
                "cluster {c} not id-sorted"
            );
        }
    }

    #[test]
    fn same_seed_builds_identical_bytes_different_seed_differs() {
        let (n, d) = (256usize, 8usize);
        let items = pseudo_table(n, d, 3);
        let cfg = IvfConfig::default();
        let mut a = BytesMut::new();
        IvfIndex::build(&items, n, d, &cfg).encode_into(&mut a);
        let mut b = BytesMut::new();
        IvfIndex::build(&items, n, d, &cfg).encode_into(&mut b);
        assert_eq!(a, b, "same seed must build byte-identical indexes");
        let mut c = BytesMut::new();
        IvfIndex::build(&items, n, d, &IvfConfig { seed: 99, ..cfg }).encode_into(&mut c);
        assert_ne!(a, c, "a different seed should move some assignment");
    }

    #[test]
    fn encode_parse_round_trips() {
        let (n, d) = (180usize, 6usize);
        let items = pseudo_table(n, d, 4);
        let built = IvfIndex::build(&items, n, d, &IvfConfig::default());
        let mut buf = BytesMut::new();
        built.encode_into(&mut buf);
        assert_eq!(buf.len(), built.encoded_len());
        let storage = Arc::new(Storage::Owned(buf.to_vec()));
        let parsed = IvfIndex::parse(&storage, 0, buf.len(), n, d).unwrap();
        assert_eq!(parsed.n_clusters(), built.n_clusters());
        assert_eq!(parsed.perm(), built.perm());
        assert_eq!(parsed.max_cluster_len(), built.max_cluster_len());
        let user = pseudo_table(1, d, 5);
        let mut sa = vec![0.0f32; built.n_clusters()];
        let mut sb = vec![0.0f32; built.n_clusters()];
        built.score_clusters(&user, &mut sa);
        parsed.score_clusters(&user, &mut sb);
        for (a, b) in sa.iter().zip(&sb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parse_rejects_structural_corruption_behind_valid_bytes() {
        let (n, d) = (64usize, 4usize);
        let items = pseudo_table(n, d, 6);
        let built = IvfIndex::build(&items, n, d, &IvfConfig::default());
        let mut buf = BytesMut::new();
        built.encode_into(&mut buf);
        let good = buf.to_vec();

        // Duplicated perm entry (perm sits between offsets and the
        // reordered vector rows that end the section).
        let mut bad = good.clone();
        let perm_at = bad.len() - 4 * n * d - 4 * n;
        let first = bad[perm_at..perm_at + 4].to_vec();
        bad[perm_at + 4..perm_at + 8].copy_from_slice(&first);
        let storage = Arc::new(Storage::Owned(bad));
        assert!(matches!(
            IvfIndex::parse(&storage, 0, good.len(), n, d),
            Err(ServeError::Invalid(_))
        ));

        // Out-of-range perm entry.
        let mut bad = good.clone();
        let at = bad.len() - 4 * n * d - 4;
        bad[at..at + 4].copy_from_slice(&(n as u32 + 7).to_le_bytes());
        let storage = Arc::new(Storage::Owned(bad));
        assert!(matches!(
            IvfIndex::parse(&storage, 0, good.len(), n, d),
            Err(ServeError::Invalid(_))
        ));

        // Zero clusters.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&0u32.to_le_bytes());
        let storage = Arc::new(Storage::Owned(bad));
        assert!(IvfIndex::parse(&storage, 0, good.len(), n, d).is_err());

        // Wrong section length.
        let storage = Arc::new(Storage::Owned(good.clone()));
        assert!(IvfIndex::parse(&storage, 0, good.len() - 4, n, d).is_err());
    }

    #[test]
    fn probe_bound_dominates_member_scores() {
        // The cluster score must upper-bound every member's inner product
        // with the user — the property that makes bound-ordered probing
        // safe for recall.
        let (n, d) = (150usize, 8usize);
        let items = pseudo_table(n, d, 7);
        let index = IvfIndex::build(&items, n, d, &IvfConfig::default());
        let user = pseudo_table(1, d, 8);
        let mut bounds = vec![0.0f32; index.n_clusters()];
        index.score_clusters(&user, &mut bounds);
        for (c, &bound) in bounds.iter().enumerate() {
            for &i in index.cluster_items(c) {
                let s = kernel::dot(&user, &items[i as usize * d..(i as usize + 1) * d]);
                assert!(
                    s <= bound + 1e-4,
                    "member {i} score {s} exceeds cluster {c} bound {bound}"
                );
            }
        }
    }
}
