//! The TCP network front-end: a `std::net` thread-per-core server for
//! the binary protocol of [`crate::proto`], plus a minimal HTTP/1.1 GET
//! shim so `curl` can hit `/topk` and `/metrics` without a client binary.
//!
//! # Thread model
//!
//! ```text
//!            ┌───────────────┐   bounded sync_channel    ┌──────────┐
//! accept ──▶ │ conn thread 0 │ ──────────┐               │ worker 0 │
//! thread     ├───────────────┤           ▼               ├──────────┤
//!    │       │ conn thread 1 │ ──▶ [job queue] ────────▶ │ worker 1 │
//!    ▼       ├───────────────┤           ▲               ├──────────┤
//!  spawns    │      …        │ ──────────┘               │    …     │
//!            └───────────────┘  ◀── per-conn reply chan ──┘
//! ```
//!
//! * One **accept thread** owns the listener, enforces the connection
//!   cap (`max_connections`; beyond it a connection is answered with a
//!   best-effort [`Status::Overloaded`] frame and closed), and joins
//!   every connection thread on shutdown.
//! * One **I/O thread per connection** parses frames incrementally and
//!   writes responses. Connection threads never score: a parsed `TopK`
//!   is pushed onto the bounded job queue with `try_send`, so a full
//!   queue answers [`Status::Overloaded`] *immediately* — backpressure
//!   is a typed response in microseconds, not a stalled socket.
//! * A fixed pool of **worker threads** (default: one per core) drains
//!   the queue. Each request is computed under a single
//!   [`bns_sync::RwLock`] read guard, and the response generation is
//!   read under that same guard — a response can never mix two artifact
//!   generations, which is what makes [`NetServer::swap_artifact`] safe
//!   under live load (the swap takes the write guard).
//!
//! # Deadlines
//!
//! Sockets run with a short `SO_RCVTIMEO` poll tick, so a blocking read
//! doubles as a cancellation point. Three deadlines guard each
//! connection: `read_timeout` bounds how long one frame may dribble in
//! (slow-loris), `idle_timeout` bounds a connection that sends nothing
//! (half-open peers), and `write_timeout` (as `SO_SNDTIMEO`) bounds a
//! peer that stops reading its responses. `compute_deadline` bounds the
//! wait for a worker; expiry answers [`Status::Timeout`] and the late
//! reply is discarded by sequence number. A stalled client can therefore
//! wedge neither its own thread forever nor anyone else's.
//!
//! # Time discipline
//!
//! This module is the serving stack's only wall-clock edge: `now()` is
//! the single justified read site (see the `wall-clock` lint rule, which
//! covers this file). Durations measured here are handed to the
//! clock-free [`WireMetrics`] registry as finished nanosecond counts.

use crate::metrics::{Endpoint, WireMetrics};
use crate::proto::{self, FrameHeader, ModeRequest, RequestFrame, ResponseFrame, Status};
use crate::query::{IndexMode, QueryEngine, QueryScratch};
use crate::{ModelArtifact, Result, ServeError};
use bns_sync::{Mutex, PoisonFlag, RwLock};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Granularity of every blocking wait in the server (socket reads, job
/// waits, reply waits). Bounds how stale a deadline or stop-flag check
/// can be, so shutdown and timeout latency are within one tick of exact.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Cap on a buffered HTTP request head; longer heads close the
/// connection (the shim serves `curl`, not arbitrary browsers).
const HTTP_HEAD_MAX: usize = 8 * 1024;

/// Default socket timeout for [`WireClient`] reads and writes.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Tuning knobs for [`NetServer`]. `Default` is sized for tests and
/// small deployments; production front-ends mostly raise
/// `max_connections` and `queue_depth`.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker (scoring) threads; `0` means one per available core.
    pub workers: usize,
    /// Accepted-connection cap; connections beyond it are answered with
    /// a best-effort [`Status::Overloaded`] frame and closed.
    pub max_connections: usize,
    /// Bound of the in-flight job queue. A full queue answers
    /// [`Status::Overloaded`] without blocking the connection thread.
    pub queue_depth: usize,
    /// How long one request frame may take to arrive in full once its
    /// first byte is seen (slow-loris bound).
    pub read_timeout: Duration,
    /// `SO_SNDTIMEO`: how long a response write may block on a peer
    /// that stopped reading.
    pub write_timeout: Duration,
    /// How long a connection may sit with no bytes in flight before it
    /// is reaped (half-open peer bound).
    pub idle_timeout: Duration,
    /// How long a connection thread waits for a worker's answer before
    /// responding [`Status::Timeout`].
    pub compute_deadline: Duration,
    /// Artificial per-request delay inside the worker, for fault
    /// injection and backpressure tests. Always zero in production.
    pub compute_delay: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            max_connections: 64,
            queue_depth: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            compute_deadline: Duration::from_secs(5),
            compute_delay: Duration::ZERO,
        }
    }
}

/// The single wall-clock read site of the serving stack. Everything
/// downstream works with the returned [`Instant`] or finished
/// nanosecond counts, so the hot structs stay clock-free and testable.
fn now() -> Instant {
    // lint:allow(wall-clock): the network edge is the one place serving
    // is allowed to observe time; durations measured here feed the
    // clock-free metrics registry as finished nanosecond counts.
    Instant::now()
}

/// Nanoseconds since `start`, saturating.
fn ns_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One scoring request in flight from a connection thread to a worker.
struct Job {
    user: u32,
    k: u16,
    exclude_seen: bool,
    mode: ModeRequest,
    /// The issuing connection's dispatch sequence number; replies whose
    /// seq is stale (their request already timed out) are discarded.
    seq: u64,
    reply: SyncSender<Reply>,
}

/// A worker's answer, routed back over the issuing connection's
/// single-slot reply channel.
struct Reply {
    seq: u64,
    status: Status,
    generation: u64,
    items: Vec<u32>,
}

/// State shared by the accept thread, every connection thread, and the
/// worker pool.
struct Shared {
    cfg: NetConfig,
    engine: RwLock<QueryEngine>,
    metrics: WireMetrics,
    stop: PoisonFlag,
    jobs: Mutex<Receiver<Job>>,
}

/// A running TCP front-end over one [`QueryEngine`].
///
/// Binding spawns the accept thread and worker pool; dropping the
/// server (or calling [`NetServer::shutdown`]) stops them and joins
/// every thread, so a `NetServer` cannot leak threads or sockets past
/// its own lifetime.
///
/// ```no_run
/// use bns_serve::{NetConfig, NetServer, QueryEngine};
/// # fn engine() -> QueryEngine { unimplemented!() }
/// let server = NetServer::bind("127.0.0.1:0", engine(), NetConfig::default()).unwrap();
/// println!("serving on {}", server.local_addr());
/// ```
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `engine` with the given configuration.
    pub fn bind<A: ToSocketAddrs>(addr: A, engine: QueryEngine, cfg: NetConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (jobs_tx, jobs_rx) = mpsc::sync_channel(cfg.queue_depth.max(1));
        let n_workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            cfg,
            engine: RwLock::new(engine),
            metrics: WireMetrics::new(),
            stop: PoisonFlag::new(),
            jobs: Mutex::new(jobs_rx),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bns-net-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>>>()?;
        let accept = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bns-net-accept".into())
                .spawn(move || accept_loop(&s, &listener, &jobs_tx))
                .map_err(ServeError::Io)?
        };
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (the same data `GET /metrics`
    /// renders).
    pub fn metrics(&self) -> &WireMetrics {
        &self.shared.metrics
    }

    /// Hot-swaps the served artifact under live load and returns the
    /// previous one. Takes the engine's write guard, so in-flight
    /// requests finish against the generation they started under and
    /// every later request sees the new one — no response ever mixes
    /// generations (the response's `generation` field proves which one
    /// answered).
    pub fn swap_artifact(&self, artifact: ModelArtifact) -> ModelArtifact {
        let old = self.shared.engine.write().swap_artifact(artifact);
        self.shared.metrics.artifact_swaps.incr();
        old
    }

    /// Stops accepting, unblocks every thread at its next poll tick, and
    /// joins them all. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.shared.stop.set();
        // The accept thread blocks in accept(); a throwaway local
        // connection wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept loop: cap enforcement, connection-thread spawning, and (on
/// shutdown) joining every connection thread it ever spawned.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, jobs_tx: &SyncSender<Job>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.is_set() {
                    break;
                }
                conns.retain(|h| !h.is_finished());
                let live = shared
                    .metrics
                    .connections_accepted
                    .get()
                    .saturating_sub(shared.metrics.connections_closed.get());
                if live >= shared.cfg.max_connections as u64 {
                    shared.metrics.connections_rejected.incr();
                    reject_overloaded(stream, &shared.cfg);
                    continue;
                }
                shared.metrics.connections_accepted.incr();
                let s = Arc::clone(shared);
                let tx = jobs_tx.clone();
                let spawned = std::thread::Builder::new()
                    .name("bns-net-conn".into())
                    .spawn(move || {
                        handle_connection(&s, stream, &tx);
                        s.metrics.connections_closed.incr();
                    });
                match spawned {
                    Ok(h) => conns.push(h),
                    Err(_) => shared.metrics.connections_closed.incr(),
                }
            }
            Err(_) => {
                if shared.stop.is_set() {
                    break;
                }
                // Transient accept failure (EMFILE, ECONNABORTED, …):
                // back off one tick rather than spinning.
                std::thread::sleep(POLL_TICK);
            }
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Best-effort `Overloaded` answer for a connection rejected at accept.
fn reject_overloaded(mut stream: TcpStream, cfg: &NetConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.write_all(&ResponseFrame::error(Status::Overloaded).encode());
}

/// Worker loop: drain the shared job queue, score under a read guard,
/// route the reply back. Exits when the stop flag is set (checked every
/// poll tick) or every sender is gone.
fn worker_loop(shared: &Arc<Shared>) {
    let mut scratch = QueryScratch::new();
    let mut out: Vec<u32> = Vec::new();
    loop {
        // Holding the receiver lock across the timed wait is the shared-
        // receiver idiom: one worker waits while the rest block on the
        // lock, and a delivered job releases it within a tick.
        let job = shared.jobs.lock().recv_timeout(POLL_TICK);
        match job {
            Ok(job) => {
                if shared.cfg.compute_delay > Duration::ZERO {
                    std::thread::sleep(shared.cfg.compute_delay);
                }
                let reply = compute(shared, &job, &mut scratch, &mut out);
                // try_send: the single reply slot may be abandoned (the
                // request already timed out) — never block a worker on
                // a connection's fate.
                let _ = job.reply.try_send(reply);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.is_set() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Scores one job. The engine read guard spans mode resolution, the
/// query, and the generation read, so status, items, and generation are
/// all consistent with exactly one artifact.
fn compute(shared: &Shared, job: &Job, scratch: &mut QueryScratch, out: &mut Vec<u32>) -> Reply {
    let engine = shared.engine.read();
    let error = |status: Status| Reply {
        seq: job.seq,
        status,
        generation: 0,
        items: Vec::new(),
    };
    let mode = match job.mode {
        ModeRequest::Default => None,
        ModeRequest::Exact => Some(IndexMode::Exact),
        ModeRequest::Ivf => match engine.default_ivf_mode() {
            Ok(m) => Some(m),
            Err(_) => return error(Status::NoIndex),
        },
    };
    out.clear();
    match engine.top_k_with_mode_into(
        job.user,
        usize::from(job.k),
        job.exclude_seen,
        mode,
        scratch,
        out,
    ) {
        Ok(()) => Reply {
            seq: job.seq,
            status: Status::Ok,
            generation: engine.generation(),
            items: out.clone(),
        },
        Err(ServeError::UnknownUser { .. }) => error(Status::UnknownUser),
        Err(ServeError::NoIndex) => error(Status::NoIndex),
        Err(_) => error(Status::BadRequest),
    }
}

/// Everything a connection thread needs to dispatch compute.
struct ConnCtx<'a> {
    shared: &'a Shared,
    jobs_tx: &'a SyncSender<Job>,
    reply_tx: SyncSender<Reply>,
    reply_rx: Receiver<Reply>,
    seq: u64,
}

impl ConnCtx<'_> {
    /// Queues one top-k job and waits for its answer, converting a full
    /// queue to [`Status::Overloaded`] immediately and an expired
    /// `compute_deadline` to [`Status::Timeout`]. Stale replies from a
    /// previously timed-out dispatch are discarded by sequence number.
    fn dispatch(
        &mut self,
        user: u32,
        k: u16,
        exclude_seen: bool,
        mode: ModeRequest,
    ) -> ResponseFrame {
        self.seq += 1;
        let job = Job {
            user,
            k,
            exclude_seen,
            mode,
            seq: self.seq,
            reply: self.reply_tx.clone(),
        };
        match self.jobs_tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.overloaded.incr();
                return ResponseFrame::error(Status::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                // Server shutting down; the connection will close at its
                // next stop-flag check.
                return ResponseFrame::error(Status::Overloaded);
            }
        }
        let deadline = now() + self.shared.cfg.compute_deadline;
        loop {
            match self.reply_rx.recv_timeout(POLL_TICK) {
                Ok(r) if r.seq == self.seq => {
                    return ResponseFrame {
                        status: r.status,
                        generation: r.generation,
                        items: r.items,
                    };
                }
                Ok(_) => {} // stale reply from a timed-out predecessor
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.stop.is_set() || now() > deadline {
                        self.shared.metrics.deadline_hits.incr();
                        return ResponseFrame::error(Status::Timeout);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return ResponseFrame::error(Status::Timeout);
                }
            }
        }
    }
}

/// Per-connection I/O loop: incremental frame parsing with deadline
/// enforcement, protocol sniffing (a leading `G` switches to the HTTP
/// shim), and response writing. Returns (closing the connection) on
/// EOF, any protocol error, any expired deadline, or server stop.
fn handle_connection(shared: &Shared, mut stream: TcpStream, jobs_tx: &SyncSender<Job>) {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Reply>(1);
    let mut ctx = ConnCtx {
        shared,
        jobs_tx,
        reply_tx,
        reply_rx,
        seq: 0,
    };
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let mut chunk = [0u8; 4096];
    let mut idle_deadline = now() + shared.cfg.idle_timeout;
    let mut frame_deadline: Option<Instant> = None;
    let mut http = false;
    loop {
        if shared.stop.is_set() {
            return;
        }
        let t = now();
        let expired = match frame_deadline {
            Some(d) => t > d,
            None => t > idle_deadline,
        };
        if expired {
            shared.metrics.deadline_hits.incr();
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        if frame_deadline.is_none() && !buf.is_empty() {
            frame_deadline = Some(now() + shared.cfg.read_timeout);
        }
        if !http && buf.first() == Some(&b'G') {
            http = true;
        }
        if http {
            match serve_http(&mut ctx, &mut stream, &buf) {
                HttpStep::NeedMore => {
                    if buf.len() > HTTP_HEAD_MAX {
                        shared.metrics.proto_errors.incr();
                        return;
                    }
                    continue;
                }
                // One request per shim connection (`connection: close`).
                HttpStep::Done => return,
            }
        }
        // Drain every complete binary frame currently buffered.
        loop {
            let (len, check) = match proto::parse_header(&buf) {
                Ok(FrameHeader::NeedHeader) => break,
                Ok(FrameHeader::Payload { len, check }) => (len, check),
                Err(_) => {
                    // Oversized length prefix: drop before buffering a
                    // byte of the claimed payload.
                    shared.metrics.proto_errors.incr();
                    return;
                }
            };
            if buf.len() < proto::HEADER_LEN + len {
                break;
            }
            let started = now();
            let payload = &buf[proto::HEADER_LEN..proto::HEADER_LEN + len];
            let req = proto::verify_payload(check, payload)
                .and_then(|()| RequestFrame::decode_payload(payload));
            buf.drain(..proto::HEADER_LEN + len);
            match req {
                Ok(req) => {
                    if !serve_binary(&mut ctx, &mut stream, req, started) {
                        return;
                    }
                }
                Err(_) => {
                    shared.metrics.proto_errors.incr();
                    return;
                }
            }
            idle_deadline = now() + shared.cfg.idle_timeout;
            frame_deadline = if buf.is_empty() {
                None
            } else {
                Some(now() + shared.cfg.read_timeout)
            };
        }
    }
}

/// Serves one decoded binary request; returns whether the connection
/// stays open. Latency is measured from "frame fully parsed" to
/// "response fully written" and recorded per endpoint.
fn serve_binary(
    ctx: &mut ConnCtx<'_>,
    stream: &mut TcpStream,
    req: RequestFrame,
    started: Instant,
) -> bool {
    let (endpoint, resp) = match req {
        RequestFrame::Ping => (Endpoint::BinPing, ResponseFrame::error(Status::Pong)),
        RequestFrame::TopK {
            user,
            k,
            exclude_seen,
            mode,
        } => (Endpoint::BinTopK, ctx.dispatch(user, k, exclude_seen, mode)),
    };
    let write_ok = stream.write_all(&resp.encode()).is_ok();
    let served = matches!(resp.status, Status::Ok | Status::Pong);
    ctx.shared
        .metrics
        .record_request(endpoint, write_ok && served, ns_since(started));
    write_ok
}

/// Outcome of one [`serve_http`] attempt over the buffered bytes.
enum HttpStep {
    /// The request head is still incomplete; keep reading.
    NeedMore,
    /// A response was written (or the head was unsalvageable); close.
    Done,
}

/// The HTTP/1.1 GET shim: `/metrics` renders the registry,
/// `/topk?user=U&k=K[&exclude_seen=1][&mode=exact|ivf]` answers JSON
/// with the same engine path as the binary protocol. Anything else is a
/// small typed error response. One request per connection.
fn serve_http(ctx: &mut ConnCtx<'_>, stream: &mut TcpStream, buf: &[u8]) -> HttpStep {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return HttpStep::NeedMore;
    };
    let started = now();
    let head = std::str::from_utf8(&buf[..head_end]).unwrap_or("");
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ');
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        ctx.shared.metrics.proto_errors.incr();
        let _ = write_http(stream, 405, "text/plain", "only GET is served\n");
        return HttpStep::Done;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = ctx.shared.metrics.render_text();
            let ok = write_http(stream, 200, "text/plain", &body).is_ok();
            ctx.shared
                .metrics
                .record_request(Endpoint::HttpMetrics, ok, ns_since(started));
        }
        "/topk" => match parse_topk_query(query) {
            Ok((user, k, exclude_seen, mode)) => {
                let resp = ctx.dispatch(user, k, exclude_seen, mode);
                let (code, body) = match resp.status {
                    Status::Ok => {
                        let items: Vec<String> =
                            resp.items.iter().map(ToString::to_string).collect();
                        (
                            200,
                            format!(
                                "{{\"generation\":{},\"items\":[{}]}}\n",
                                resp.generation,
                                items.join(",")
                            ),
                        )
                    }
                    Status::UnknownUser => (404, "{\"error\":\"unknown user\"}\n".into()),
                    Status::Overloaded => (503, "{\"error\":\"overloaded\"}\n".into()),
                    Status::NoIndex => (400, "{\"error\":\"artifact has no index\"}\n".into()),
                    Status::Timeout => (504, "{\"error\":\"compute deadline expired\"}\n".into()),
                    Status::Pong | Status::BadRequest => {
                        (400, "{\"error\":\"bad request\"}\n".into())
                    }
                };
                let ok = write_http(stream, code, "application/json", &body).is_ok();
                ctx.shared.metrics.record_request(
                    Endpoint::HttpTopK,
                    ok && resp.status == Status::Ok,
                    ns_since(started),
                );
            }
            Err(msg) => {
                ctx.shared.metrics.proto_errors.incr();
                let body = format!("{{\"error\":\"{msg}\"}}\n");
                let _ = write_http(stream, 400, "application/json", &body);
                ctx.shared
                    .metrics
                    .record_request(Endpoint::HttpTopK, false, ns_since(started));
            }
        },
        _ => {
            let _ = write_http(stream, 404, "text/plain", "routes: /topk, /metrics\n");
        }
    }
    HttpStep::Done
}

/// Parses `/topk` query parameters. `user` and `k` are required;
/// `exclude_seen` accepts `1`/`true`; `mode` accepts `exact`/`ivf`
/// (anything else, including omission, means the server default).
fn parse_topk_query(
    query: &str,
) -> std::result::Result<(u32, u16, bool, ModeRequest), &'static str> {
    let mut user: Option<u32> = None;
    let mut k: Option<u16> = None;
    let mut exclude_seen = false;
    let mut mode = ModeRequest::Default;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "user" => user = Some(value.parse().map_err(|_| "user must be a u32")?),
            "k" => k = Some(value.parse().map_err(|_| "k must be a u16")?),
            "exclude_seen" => exclude_seen = value == "1" || value == "true",
            "mode" => {
                mode = match value {
                    "exact" => ModeRequest::Exact,
                    "ivf" => ModeRequest::Ivf,
                    "default" | "" => ModeRequest::Default,
                    _ => return Err("mode must be exact, ivf, or default"),
                }
            }
            _ => return Err("unknown parameter"),
        }
    }
    let user = user.ok_or("missing required parameter: user")?;
    let k = k.ok_or("missing required parameter: k")?;
    if k == 0 {
        return Err("k must be >= 1");
    }
    Ok((user, k, exclude_seen, mode))
}

/// Writes one minimal HTTP/1.1 response with `connection: close`.
fn write_http(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// A blocking client for the binary protocol — the loopback load
/// generator of `serve_bench` and the test suites, and a reference
/// implementation for real clients.
///
/// One request in flight at a time; responses are read strictly
/// (header parse, checksum verify, typed decode), so a corrupted server
/// is an error, never a panic.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl WireClient {
    /// Connects with the default 10 s socket timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Replaces both socket timeouts.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        Ok(())
    }

    /// Sends one [`RequestFrame::Ping`]; a healthy server answers
    /// [`Status::Pong`].
    pub fn ping(&mut self) -> Result<ResponseFrame> {
        self.call(&RequestFrame::Ping)
    }

    /// Sends one top-k query and waits for its response.
    pub fn top_k(
        &mut self,
        user: u32,
        k: u16,
        exclude_seen: bool,
        mode: ModeRequest,
    ) -> Result<ResponseFrame> {
        self.call(&RequestFrame::TopK {
            user,
            k,
            exclude_seen,
            mode,
        })
    }

    /// Sends any request frame and reads exactly one response frame.
    pub fn call(&mut self, req: &RequestFrame) -> Result<ResponseFrame> {
        self.stream.write_all(&req.encode())?;
        let mut header = [0u8; proto::HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let (len, check) = match proto::parse_header(&header)? {
            FrameHeader::Payload { len, check } => (len, check),
            FrameHeader::NeedHeader => unreachable!("read_exact returned a full header"),
        };
        self.buf.clear();
        self.buf.resize(len, 0);
        self.stream.read_exact(&mut self.buf)?;
        proto::verify_payload(check, &self.buf)?;
        Ok(ResponseFrame::decode_payload(&self.buf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::MatrixFactorization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(seed: u64) -> QueryEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MatrixFactorization::new(6, 12, 8, 0.1, &mut rng).unwrap();
        let seen =
            Interactions::from_pairs(6, 12, &[(0, 0), (0, 3), (1, 2), (2, 8), (5, 11)]).unwrap();
        QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
    }

    fn quick_cfg() -> NetConfig {
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        }
    }

    fn http_get(addr: SocketAddr, target: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nhost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn ping_and_topk_round_trip_over_loopback() {
        let server = NetServer::bind("127.0.0.1:0", engine(1), quick_cfg()).unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.ping().unwrap().status, Status::Pong);
        let resp = client.top_k(0, 5, false, ModeRequest::Default).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.items.len(), 5);
        // The wire answer matches a direct engine query bit for bit.
        let mut scratch = QueryScratch::new();
        let mut direct = Vec::new();
        let e = engine(1);
        e.top_k_into(0, 5, false, &mut scratch, &mut direct)
            .unwrap();
        assert_eq!(resp.items, direct);
    }

    #[test]
    fn unknown_user_and_no_index_are_typed_statuses() {
        let server = NetServer::bind("127.0.0.1:0", engine(2), quick_cfg()).unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        let resp = client.top_k(999, 5, false, ModeRequest::Default).unwrap();
        assert_eq!(resp.status, Status::UnknownUser);
        assert_eq!(resp.generation, 0);
        assert!(resp.items.is_empty());
        // The fixture artifact is too small to carry an IVF index.
        let resp = client.top_k(0, 5, false, ModeRequest::Ivf).unwrap();
        assert_eq!(resp.status, Status::NoIndex);
    }

    #[test]
    fn many_frames_per_connection_and_exclude_seen() {
        let server = NetServer::bind("127.0.0.1:0", engine(3), quick_cfg()).unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        for user in 0..6u32 {
            let resp = client.top_k(user, 12, true, ModeRequest::Exact).unwrap();
            assert_eq!(resp.status, Status::Ok, "user {user}");
        }
        // User 0 has seen items 0 and 3; with the full catalog requested
        // they must be masked out.
        let resp = client.top_k(0, 12, true, ModeRequest::Default).unwrap();
        assert!(!resp.items.contains(&0) && !resp.items.contains(&3));
    }

    #[test]
    fn http_shim_serves_topk_and_metrics() {
        let server = NetServer::bind("127.0.0.1:0", engine(4), quick_cfg()).unwrap();
        let addr = server.local_addr();
        let body = http_get(addr, "/topk?user=1&k=3");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("\"items\":["), "{body}");
        let body = http_get(addr, "/topk?user=77&k=3");
        assert!(body.starts_with("HTTP/1.1 404"), "{body}");
        let body = http_get(addr, "/topk?user=zero&k=3");
        assert!(body.starts_with("HTTP/1.1 400"), "{body}");
        let body = http_get(addr, "/metrics");
        assert!(
            body.contains("bns_requests_ok{endpoint=\"http_topk\"} 1"),
            "{body}"
        );
        assert!(body.contains("bns_connections_accepted"), "{body}");
    }

    #[test]
    fn shutdown_joins_everything_and_is_idempotent() {
        let mut server = NetServer::bind("127.0.0.1:0", engine(5), quick_cfg()).unwrap();
        let addr = server.local_addr();
        let mut client = WireClient::connect(addr).unwrap();
        assert_eq!(client.ping().unwrap().status, Status::Pong);
        server.shutdown();
        server.shutdown();
        // The listener is gone: a fresh request cannot be served.
        let mut probe = WireClient::connect(addr)
            .and_then(|mut c| {
                c.set_timeout(Duration::from_millis(200))?;
                c.ping()
            })
            .is_err();
        // A connect may still succeed transiently on some kernels
        // (backlog); the ping itself must fail.
        if !probe {
            probe = WireClient::connect(addr).is_err();
        }
        assert!(probe, "server still answering after shutdown");
    }

    #[test]
    fn swap_artifact_bumps_generation_on_the_wire() {
        let server = NetServer::bind("127.0.0.1:0", engine(6), quick_cfg()).unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        let before = client.top_k(0, 4, false, ModeRequest::Default).unwrap();
        let replacement = engine(7);
        server.swap_artifact(replacement.artifact().clone());
        let after = client.top_k(0, 4, false, ModeRequest::Default).unwrap();
        assert_eq!(after.generation, before.generation + 1);
        assert_eq!(server.metrics().artifact_swaps.get(), 1);
    }
}
