//! The top-k query engine over a frozen [`ModelArtifact`].
//!
//! One query is the read-only half of the evaluation protocol
//! (`bns_eval::ranking`): materialize the user's rating vector with the
//! unrolled GEMV kernel, mask the seen items from the artifact's CSR, and
//! extract the top-k list with the bounded selection buffer of
//! [`bns_eval::topk`]. Ties break toward lower item ids, so a query's
//! answer is a pure function of the artifact — bit-for-bit reproducible
//! across runs, threads and machines.
//!
//! Two retrieval strategies share that selection machinery, picked by
//! [`IndexMode`]:
//!
//! * **Exact** — exhaustive GEMV over the whole item table. Bitwise
//!   reproducible, `O(n_items)` per query.
//! * **Ivf** — score the artifact's freeze-time cluster centroids
//!   ([`crate::index`]), probe the best `nprobe` clusters' contiguous item
//!   ranges with the same gather kernel, mask seen items, select with the
//!   same [`TopKBuffer`]. Still deterministic (a pure function of
//!   `(artifact, nprobe)`), but approximate against the exact ranking —
//!   gated by measured recall@k (`crates/serve/tests/ivf_recall.rs`)
//!   instead of bit equality.
//!
//! [`QueryEngine::top_k_batch_into`] answers several requests in one call,
//! scoring the exact path as a blocked multi-user GEMM
//! ([`bns_model::kernel::gemm_block`]) so the item table streams through
//! cache once per *batch* rather than once per query. Its answers are
//! bitwise identical to the one-at-a-time path because the blocked kernel
//! emits the same per-row dots in the same order.
//!
//! The hot paths are **allocation-free in steady state**: callers (or the
//! [`crate::engine`] workers) hold one [`QueryScratch`] per thread and the
//! score vectors, selection buffers and output lists are all reused — the
//! same discipline the samplers follow (`tests/sampler_alloc.rs`), pinned
//! for this crate by `crates/serve/tests/query_alloc.rs`.

use crate::cache::TopKCache;
use crate::engine::{serve_parallel, Request, ServeReport};
use crate::{ModelArtifact, Result, ServeError};
use bns_eval::topk::{top_k_masked_into, TopKBuffer};
use bns_model::{kernel, Scorer};
use bns_sync::{Counter, Generation, Mutex};

/// Which retrieval strategy [`QueryEngine::top_k_into`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Exhaustive GEMV over every item — bitwise-exact, `O(n_items)`.
    Exact,
    /// IVF candidate generation: probe the `nprobe` best clusters of the
    /// artifact's freeze-time index. Requires the artifact to carry one
    /// ([`ModelArtifact::index`]); `nprobe ≥ 1`.
    Ivf {
        /// How many clusters to probe per query. Higher is slower and
        /// more exact; [`crate::IvfIndex::default_nprobe`] is the
        /// recall-gated default.
        nprobe: usize,
    },
}

/// Reusable per-worker buffers for [`QueryEngine::top_k_into`] and
/// [`QueryEngine::top_k_batch_into`]: score vectors and top-k selection
/// scratch for every retrieval strategy. Steady-state allocation-free
/// once warm.
#[derive(Debug, Default)]
pub struct QueryScratch {
    pub(crate) scores: Vec<f32>,
    pub(crate) topk: TopKBuffer,
    // IVF probe path.
    pub(crate) cluster_scores: Vec<f32>,
    pub(crate) probe_ids: Vec<u32>,
    pub(crate) cand_scores: Vec<f32>,
    pub(crate) probe_topk: TopKBuffer,
    // Coalesced batch path.
    pub(crate) users_block: Vec<f32>,
    pub(crate) block_scores: Vec<f32>,
    pub(crate) batch_topks: Vec<TopKBuffer>,
    pub(crate) batch_mask_pos: Vec<usize>,
    pub(crate) miss_idx: Vec<usize>,
}

impl QueryScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Answers `top_k(user, k, exclude_seen)` queries over a frozen artifact,
/// optionally through a generation-stamped LRU cache, and fans request
/// batches out to a work-stealing thread pool ([`QueryEngine::serve`]).
///
/// ```
/// use bns_data::Interactions;
/// use bns_model::MatrixFactorization;
/// use bns_serve::{ModelArtifact, QueryEngine};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let model = MatrixFactorization::new(2, 6, 4, 0.1, &mut rng)?;
/// let seen = Interactions::from_pairs(2, 6, &[(0, 1), (1, 4)])?;
/// let engine = QueryEngine::new(ModelArtifact::freeze(&model, &seen)?);
///
/// let ranked = engine.top_k(0, 3, true)?;
/// assert_eq!(ranked.len(), 3);
/// assert!(!ranked.contains(&1), "seen item must be filtered");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    artifact: ModelArtifact,
    cache: Option<Mutex<TopKCache>>,
    generation: Generation,
    cache_hits: Counter,
    cache_lookups: Counter,
    mode: IndexMode,
    coalesce: usize,
}

impl QueryEngine {
    /// Creates an engine with no cache: every query runs the full
    /// GEMV + top-k path ([`IndexMode::Exact`], coalesce batch 1).
    pub fn new(artifact: ModelArtifact) -> Self {
        Self {
            artifact,
            cache: None,
            generation: Generation::new(),
            cache_hits: Counter::new(),
            cache_lookups: Counter::new(),
            mode: IndexMode::Exact,
            coalesce: 1,
        }
    }

    /// Creates an engine serving in the given [`IndexMode`]. Fails with
    /// [`ServeError::NoIndex`] when IVF is requested of an index-free
    /// artifact, or [`ServeError::Invalid`] for `nprobe == 0`.
    pub fn with_index_mode(artifact: ModelArtifact, mode: IndexMode) -> Result<Self> {
        let mut engine = Self::new(artifact);
        engine.set_index_mode(mode)?;
        Ok(engine)
    }

    /// Creates an engine with a generation-stamped LRU cache of
    /// `capacity` entries in front of the scoring path. A `capacity` of
    /// zero disables the cache entirely (identical to
    /// [`QueryEngine::new`]), so callers can wire the capacity straight
    /// from configuration without an off-switch.
    pub fn with_cache(artifact: ModelArtifact, capacity: usize) -> Self {
        Self {
            cache: (capacity > 0).then(|| Mutex::new(TopKCache::new(capacity))),
            ..Self::new(artifact)
        }
    }

    /// The frozen artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The retrieval strategy queries currently run.
    pub fn index_mode(&self) -> IndexMode {
        self.mode
    }

    /// Switches the retrieval strategy. `&mut self` like
    /// [`QueryEngine::swap_artifact`]: a mode change happens between
    /// serve batches, never racing in-flight queries. The cache needs no
    /// invalidation — the mode is part of every cache key, so exact and
    /// IVF lists never alias.
    pub fn set_index_mode(&mut self, mode: IndexMode) -> Result<()> {
        if let IndexMode::Ivf { nprobe } = mode {
            if self.artifact.index().is_none() {
                return Err(ServeError::NoIndex);
            }
            if nprobe == 0 {
                return Err(ServeError::Invalid(
                    "IndexMode::Ivf requires nprobe >= 1".into(),
                ));
            }
        }
        self.mode = mode;
        Ok(())
    }

    /// How many adjacent requests a serve worker drains per queue claim
    /// (1 = one-at-a-time, the default).
    pub fn coalesce(&self) -> usize {
        self.coalesce
    }

    /// Sets the coalescing batch: workers claim up to `batch` adjacent
    /// requests at once and score exact-mode misses as one blocked
    /// multi-user GEMM. Answers are bitwise identical whatever the batch;
    /// only throughput and the latency distribution move (coalesced
    /// requests share their batch's wall time). Values are clamped to a
    /// minimum of 1.
    pub fn set_coalesce(&mut self, batch: usize) {
        self.coalesce = batch.max(1);
    }

    /// Current artifact generation (bumped by
    /// [`QueryEngine::swap_artifact`]).
    pub fn generation(&self) -> u64 {
        self.generation.current()
    }

    /// Cache hits since construction (0 when no cache is configured).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Cache lookups since construction (0 when no cache is configured).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_lookups.get()
    }

    /// Replaces the served artifact (a model hot-swap after retraining)
    /// and bumps the generation, which invalidates every cached top-k
    /// list in one step. Returns the previous artifact.
    ///
    /// Takes `&mut self`: a swap is an exclusive operation between serve
    /// batches, never racing in-flight queries. [`Generation::bump`] is
    /// nevertheless a Release store (and reads Acquire), so the protocol
    /// stays correct when the planned online-learning path starts swapping
    /// through a shared reference; the `cache_swap` scenarios in
    /// `bns-check` pin the invariant either way.
    ///
    /// The [`IndexMode`] survives the swap. Swapping in an index-free
    /// artifact while in IVF mode is not hidden by a silent fallback:
    /// subsequent queries fail with [`ServeError::NoIndex`] until
    /// [`QueryEngine::set_index_mode`] picks a servable mode.
    pub fn swap_artifact(&mut self, artifact: ModelArtifact) -> ModelArtifact {
        self.generation.bump();
        std::mem::replace(&mut self.artifact, artifact)
    }

    /// Answers one query into caller-owned buffers: `out` receives the
    /// ranked item ids (best first, at most `k`), `scratch` holds the
    /// reusable score/selection buffers. Allocation-free once warm
    /// (except on a cache *insert*, which clones the list it stores).
    ///
    /// With `exclude_seen`, the user's frozen training positives are
    /// masked out — the §II recommendation-list protocol; without it, the
    /// raw top-k over the whole catalog is returned.
    pub fn top_k_into(
        &self,
        user: u32,
        k: usize,
        exclude_seen: bool,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        self.top_k_with_mode_into(user, k, exclude_seen, None, scratch, out)
    }

    /// The engine's configured mode upgraded to IVF at the artifact's
    /// default probe width — what a wire request asking for "IVF" without
    /// naming a width gets. Fails with [`ServeError::NoIndex`] when the
    /// served artifact carries no index.
    pub fn default_ivf_mode(&self) -> Result<IndexMode> {
        let index = self.artifact.index().ok_or(ServeError::NoIndex)?;
        Ok(IndexMode::Ivf {
            nprobe: index.default_nprobe(),
        })
    }

    /// [`QueryEngine::top_k_into`] with a per-request [`IndexMode`]
    /// override (`None` = the engine's configured mode) — the network
    /// front-end's per-request `flags` land here. The override is
    /// validated per call (`NoIndex` for IVF against an index-free
    /// artifact, `Invalid` for `nprobe == 0`) and participates in the
    /// cache key exactly like the configured mode, so forced-exact and
    /// forced-IVF answers never alias.
    pub fn top_k_with_mode_into(
        &self,
        user: u32,
        k: usize,
        exclude_seen: bool,
        mode: Option<IndexMode>,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let n_users = self.artifact.n_users();
        if user >= n_users {
            return Err(ServeError::UnknownUser { user, n_users });
        }
        let mode = mode.unwrap_or(self.mode);
        if let IndexMode::Ivf { nprobe } = mode {
            if self.artifact.index().is_none() {
                return Err(ServeError::NoIndex);
            }
            if nprobe == 0 {
                return Err(ServeError::Invalid(
                    "IndexMode::Ivf requires nprobe >= 1".into(),
                ));
            }
        }
        // Read the generation once and use it for both the lookup and the
        // insert below: re-reading at insert time could stamp a list
        // computed against the old artifact with the new generation (the
        // staleness bug the bns-check `cache_swap` scenario demonstrates).
        let generation = self.generation.current();
        let key = cache_key(user, k, exclude_seen, mode);
        if let Some(cache) = &self.cache {
            self.cache_lookups.incr();
            let mut cache = cache.lock();
            if let Some(items) = cache.get(key, generation) {
                out.clear();
                out.extend_from_slice(items);
                self.cache_hits.incr();
                return Ok(());
            }
        }

        match mode {
            IndexMode::Exact => {
                let n_items = self.artifact.n_items() as usize;
                scratch.scores.resize(n_items, 0.0);
                self.artifact.score_all(user, &mut scratch.scores);
                let masked: &[u32] = if exclude_seen {
                    self.artifact.seen().items_of(user)
                } else {
                    &[]
                };
                top_k_masked_into(&scratch.scores, masked, k, &mut scratch.topk, out);
            }
            IndexMode::Ivf { nprobe } => {
                self.ivf_search(user, k, exclude_seen, nprobe, scratch, out)?;
            }
        }

        if let Some(cache) = &self.cache {
            cache.lock().insert(key, generation, out);
        }
        Ok(())
    }

    /// The IVF probe path: rank clusters by the Cauchy–Schwarz bound
    /// `u·c + ‖u‖·r_c`, gather-score the `nprobe` best clusters'
    /// contiguous item ranges, mask seen items, select through the shared
    /// [`TopKBuffer`]. Deterministic; allocation-free once the scratch has
    /// warmed to the index's cluster count and largest cluster.
    fn ivf_search(
        &self,
        user: u32,
        k: usize,
        exclude_seen: bool,
        nprobe: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let index = self.artifact.index().ok_or(ServeError::NoIndex)?;
        let urow = self.artifact.user_row(user);
        scratch.cluster_scores.resize(index.n_clusters(), 0.0);
        index.score_clusters(urow, &mut scratch.cluster_scores);
        let nprobe = nprobe.min(index.n_clusters());
        top_k_masked_into(
            &scratch.cluster_scores,
            &[],
            nprobe,
            &mut scratch.topk,
            &mut scratch.probe_ids,
        );

        let masked: &[u32] = if exclude_seen {
            self.artifact.seen().items_of(user)
        } else {
            &[]
        };
        scratch.cand_scores.resize(index.max_cluster_len(), 0.0);
        scratch.probe_topk.begin(k);
        for &c in &scratch.probe_ids {
            // Bound-ordered early termination. Probes arrive in descending
            // Cauchy–Schwarz bound order and no member of cluster `c` can
            // score above its bound, so once the bound drops strictly
            // below the current k-th best the remaining probes cannot
            // alter the selection — the output is identical to probing
            // all `nprobe` clusters. Strict `<`: a tie at the floor could
            // still displace through the (score desc, id asc) order.
            if let Some(floor) = scratch.probe_topk.floor() {
                if scratch.cluster_scores[c as usize] < floor {
                    break;
                }
            }
            let ids = index.cluster_items(c as usize);
            // Contiguous inverted-list rows: the probe streams like the
            // exact scan does, just over 1–2% of the catalog. Same `dot`
            // kernel underneath, so scores are bitwise what a gather over
            // the original table would produce.
            kernel::gemv(
                urow,
                index.cluster_vectors(c as usize),
                &mut scratch.cand_scores[..ids.len()],
            );
            // Floor pre-filter: once the selection is full, a candidate
            // strictly below the k-th best cannot enter (a tie at the
            // floor still can, through the lower-id rule), so the common
            // case is one predictable compare per row instead of an
            // `offer` call. The floor only moves on the rare accept.
            let mut floor = scratch.probe_topk.floor().unwrap_or(f32::NEG_INFINITY);
            for (&id, &score) in ids.iter().zip(scratch.cand_scores.iter()) {
                if score < floor {
                    continue;
                }
                // The mask is sorted-unique but probe order is not id
                // order, so a binary search replaces the dense path's
                // merge cursor.
                if !masked.is_empty() && masked.binary_search(&id).is_ok() {
                    continue;
                }
                scratch.probe_topk.offer(score, id);
                floor = scratch.probe_topk.floor().unwrap_or(f32::NEG_INFINITY);
            }
        }
        scratch.probe_topk.emit(out);
        Ok(())
    }

    /// Answers a batch of requests into caller-owned buffers
    /// (`outs[i]` answers `requests[i]`). Cache hits are served
    /// individually; exact-mode misses are scored together as a blocked
    /// multi-user GEMM over [`kernel::GEMM_ITEM_BLOCK`]-row item tiles, so
    /// the item table streams through cache once per batch. Answers are
    /// **bitwise identical** to calling [`QueryEngine::top_k_into`] per
    /// request — the blocked kernel emits the same per-row dots, offered
    /// to the same selector in the same ascending-id order. IVF-mode
    /// misses run the probe path per request (already sublinear; the
    /// item-table traversal a batch would amortize is exactly what the
    /// index removed). Allocation-free once warm, like the single path.
    pub fn top_k_batch_into(
        &self,
        requests: &[Request],
        scratch: &mut QueryScratch,
        outs: &mut [Vec<u32>],
    ) -> Result<()> {
        assert_eq!(requests.len(), outs.len(), "one output buffer per request");
        let n_users = self.artifact.n_users();
        for r in requests {
            if r.user >= n_users {
                return Err(ServeError::UnknownUser {
                    user: r.user,
                    n_users,
                });
            }
        }
        let generation = self.generation.current();
        scratch.miss_idx.clear();
        for (i, r) in requests.iter().enumerate() {
            if let Some(cache) = &self.cache {
                self.cache_lookups.incr();
                let mut cache = cache.lock();
                if let Some(items) = cache.get(
                    cache_key(r.user, r.k, r.exclude_seen, self.mode),
                    generation,
                ) {
                    outs[i].clear();
                    outs[i].extend_from_slice(items);
                    self.cache_hits.incr();
                    continue;
                }
            }
            scratch.miss_idx.push(i);
        }
        if scratch.miss_idx.is_empty() {
            return Ok(());
        }

        match self.mode {
            IndexMode::Exact => self.exact_batch(requests, scratch, outs),
            IndexMode::Ivf { nprobe } => {
                for mi in 0..scratch.miss_idx.len() {
                    let i = scratch.miss_idx[mi];
                    let r = requests[i];
                    self.ivf_search(r.user, r.k, r.exclude_seen, nprobe, scratch, &mut outs[i])?;
                }
                Ok(())
            }
        }?;

        if let Some(cache) = &self.cache {
            let mut cache = cache.lock();
            for &i in &scratch.miss_idx {
                let r = requests[i];
                cache.insert(
                    cache_key(r.user, r.k, r.exclude_seen, self.mode),
                    generation,
                    &outs[i],
                );
            }
        }
        Ok(())
    }

    /// The coalesced exact path over `scratch.miss_idx`: gather the missed
    /// users' rows into one block, stream the item table tile by tile
    /// through [`kernel::gemm_block`], and feed each user's tile scores to
    /// its own [`TopKBuffer`] with a per-user merge cursor over the sorted
    /// seen mask (ids arrive ascending, exactly like the dense scan).
    fn exact_batch(
        &self,
        requests: &[Request],
        scratch: &mut QueryScratch,
        outs: &mut [Vec<u32>],
    ) -> Result<()> {
        let b = scratch.miss_idx.len();
        let dim = self.artifact.dim();
        scratch.users_block.clear();
        for mi in 0..b {
            let user = requests[scratch.miss_idx[mi]].user;
            scratch
                .users_block
                .extend_from_slice(self.artifact.user_row(user));
        }
        if scratch.batch_topks.len() < b {
            scratch.batch_topks.resize_with(b, TopKBuffer::default);
        }
        scratch.batch_mask_pos.clear();
        scratch.batch_mask_pos.resize(b, 0);
        for mi in 0..b {
            let k = requests[scratch.miss_idx[mi]].k;
            scratch.batch_topks[mi].begin(k);
        }

        const TILE: usize = kernel::GEMM_ITEM_BLOCK;
        let items = self.artifact.items_table();
        let n_items = self.artifact.n_items() as usize;
        let seen = self.artifact.seen();
        scratch.block_scores.resize(b * TILE, 0.0);
        let mut tile_start = 0usize;
        while tile_start < n_items {
            let rows = TILE.min(n_items - tile_start);
            let tile = &items[tile_start * dim..(tile_start + rows) * dim];
            kernel::gemm_block(
                &scratch.users_block,
                tile,
                dim,
                &mut scratch.block_scores[..b * rows],
            );
            for mi in 0..b {
                let r = requests[scratch.miss_idx[mi]];
                let masked: &[u32] = if r.exclude_seen {
                    seen.items_of(r.user)
                } else {
                    &[]
                };
                let pos = &mut scratch.batch_mask_pos[mi];
                for j in 0..rows {
                    let id = (tile_start + j) as u32;
                    if *pos < masked.len() && masked[*pos] == id {
                        *pos += 1;
                        continue;
                    }
                    scratch.batch_topks[mi].offer(scratch.block_scores[mi * rows + j], id);
                }
            }
            tile_start += rows;
        }
        for mi in 0..b {
            let i = scratch.miss_idx[mi];
            scratch.batch_topks[mi].emit(&mut outs[i]);
        }
        Ok(())
    }

    /// Convenience wrapper over [`QueryEngine::top_k_into`] that
    /// allocates fresh buffers — fine for one-off queries and doc
    /// examples; hot loops should reuse a [`QueryScratch`].
    pub fn top_k(&self, user: u32, k: usize, exclude_seen: bool) -> Result<Vec<u32>> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::with_capacity(k);
        self.top_k_into(user, k, exclude_seen, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Serves a batch of requests on `n_threads` scoped workers draining
    /// a work-stealing queue (each claim drains up to
    /// [`QueryEngine::coalesce`] adjacent requests); see [`crate::engine`]
    /// for the scheduling contract. Validates every request — and that the
    /// configured [`IndexMode`] is servable — up front, so the report
    /// covers all of them in input order.
    pub fn serve(&self, requests: &[Request], n_threads: usize) -> Result<ServeReport> {
        if matches!(self.mode, IndexMode::Ivf { .. }) && self.artifact.index().is_none() {
            return Err(ServeError::NoIndex);
        }
        let n_users = self.artifact.n_users();
        for r in requests {
            if r.user >= n_users {
                return Err(ServeError::UnknownUser {
                    user: r.user,
                    n_users,
                });
            }
        }
        Ok(serve_parallel(self, requests, n_threads))
    }
}

/// Packs `(user, k, exclude_seen, mode)` into one cache key: user in bits
/// 0–31, `k` truncated to 14 bits (far beyond any real recommendation
/// cutoff) in 32–45, the mask flag at 46, an IVF flag at 47 and `nprobe`
/// truncated to 16 bits in 48–63 — exact and IVF lists (and different
/// probe widths) never alias.
fn cache_key(user: u32, k: usize, exclude_seen: bool, mode: IndexMode) -> u64 {
    let (ivf, nprobe) = match mode {
        IndexMode::Exact => (0u64, 0u64),
        IndexMode::Ivf { nprobe } => (1u64, (nprobe as u64) & 0xFFFF),
    };
    (user as u64)
        | (((k as u64) & 0x3FFF) << 32)
        | ((exclude_seen as u64) << 46)
        | (ivf << 47)
        | (nprobe << 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::{Embedding, MatrixFactorization};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2 users × 4 items with hand-set scores via an MF whose dim-1
    /// embeddings multiply to the fixed table below.
    fn engine() -> QueryEngine {
        // users: [1], [2]; items: [0.9, 0.5, 0.7, 0.1]
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0), (1, 2)]).unwrap();
        QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
    }

    #[test]
    fn ranks_by_score_with_mask() {
        let e = engine();
        // User 0 scores: [0.9, 0.5, 0.7, 0.1]; item 0 seen.
        assert_eq!(e.top_k(0, 2, true).unwrap(), vec![2, 1]);
        assert_eq!(e.top_k(0, 2, false).unwrap(), vec![0, 2]);
        // User 1 scores doubled, same order; item 2 seen.
        assert_eq!(e.top_k(1, 4, true).unwrap(), vec![0, 1, 3]);
    }

    #[test]
    fn unknown_user_is_typed() {
        let e = engine();
        assert!(matches!(
            e.top_k(9, 2, true),
            Err(ServeError::UnknownUser {
                user: 9,
                n_users: 2
            })
        ));
    }

    #[test]
    fn cached_engine_returns_identical_lists_and_counts_hits() {
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0), (1, 2)]).unwrap();
        let e = QueryEngine::with_cache(ModelArtifact::freeze(&model, &seen).unwrap(), 8);
        let first = e.top_k(0, 2, true).unwrap();
        assert_eq!(e.cache_hits(), 0);
        let second = e.top_k(0, 2, true).unwrap();
        assert_eq!(first, second);
        assert_eq!(e.cache_hits(), 1);
        // Different k or mask is a different key.
        let _ = e.top_k(0, 3, true).unwrap();
        let _ = e.top_k(0, 2, false).unwrap();
        assert_eq!(e.cache_hits(), 1);
    }

    #[test]
    fn zero_cache_capacity_disables_the_cache() {
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0)]).unwrap();
        let e = QueryEngine::with_cache(ModelArtifact::freeze(&model, &seen).unwrap(), 0);
        let first = e.top_k(0, 2, true).unwrap();
        assert_eq!(first, e.top_k(0, 2, true).unwrap());
        assert_eq!(e.cache_lookups(), 0, "capacity 0 must bypass the cache");
        assert_eq!(e.cache_hits(), 0);
    }

    #[test]
    fn swap_artifact_bumps_generation_and_invalidates() {
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0)]).unwrap();
        let mut e = QueryEngine::with_cache(ModelArtifact::freeze(&model, &seen).unwrap(), 8);
        assert_eq!(e.top_k(0, 2, true).unwrap(), vec![2, 1]);

        // Retrained model: item 3 is now the best for user 0.
        let users2 = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items2 = Embedding::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.9]).unwrap();
        let model2 = MatrixFactorization::from_embeddings(users2, items2).unwrap();
        let old = e.swap_artifact(ModelArtifact::freeze(&model2, &seen).unwrap());
        assert_eq!(e.generation(), 1);
        assert_eq!(old.score(0, 0), 0.9);
        // The cached [2, 1] must not leak through.
        assert_eq!(e.top_k(0, 2, true).unwrap(), vec![3, 2]);
    }

    #[test]
    fn ivf_mode_requires_an_index_and_nonzero_nprobe() {
        let e = engine(); // 4 items — frozen without an index
        assert!(matches!(
            QueryEngine::with_index_mode(e.artifact().clone(), IndexMode::Ivf { nprobe: 2 }),
            Err(ServeError::NoIndex)
        ));
        let mut rng = StdRng::seed_from_u64(41);
        let model = MatrixFactorization::new(3, 50, 4, 0.1, &mut rng).unwrap();
        let seen = Interactions::from_pairs(3, 50, &[(0, 1)]).unwrap();
        let artifact =
            ModelArtifact::freeze_with(&model, &seen, Some(crate::IvfConfig::default())).unwrap();
        assert!(matches!(
            QueryEngine::with_index_mode(artifact.clone(), IndexMode::Ivf { nprobe: 0 }),
            Err(ServeError::Invalid(_))
        ));
        let e = QueryEngine::with_index_mode(artifact, IndexMode::Ivf { nprobe: 3 }).unwrap();
        assert_eq!(e.index_mode(), IndexMode::Ivf { nprobe: 3 });
        assert_eq!(e.top_k(0, 5, true).unwrap().len(), 5);
    }

    #[test]
    fn ivf_with_all_clusters_probed_matches_exact_bitwise() {
        // Probing every cluster visits every item exactly once, so the
        // approximate path degenerates to the exact ranking.
        let mut rng = StdRng::seed_from_u64(43);
        let model = MatrixFactorization::new(5, 120, 8, 0.1, &mut rng).unwrap();
        let pairs: Vec<(u32, u32)> = (0..5u32).flat_map(|u| [(u, u), (u, u + 40)]).collect();
        let seen = Interactions::from_pairs(5, 120, &pairs).unwrap();
        let artifact =
            ModelArtifact::freeze_with(&model, &seen, Some(crate::IvfConfig::default())).unwrap();
        let n_clusters = artifact.index().unwrap().n_clusters();
        let exact = QueryEngine::new(artifact.clone());
        let ivf =
            QueryEngine::with_index_mode(artifact, IndexMode::Ivf { nprobe: n_clusters }).unwrap();
        for u in 0..5u32 {
            for exclude in [false, true] {
                assert_eq!(
                    ivf.top_k(u, 10, exclude).unwrap(),
                    exact.top_k(u, 10, exclude).unwrap(),
                    "user {u} exclude {exclude}"
                );
            }
        }
    }

    #[test]
    fn batched_answers_are_bitwise_equal_to_single_path() {
        let mut rng = StdRng::seed_from_u64(47);
        let model = MatrixFactorization::new(9, 321, 8, 0.1, &mut rng).unwrap();
        let pairs: Vec<(u32, u32)> = (0..9u32)
            .flat_map(|u| [(u, 3 * u), (u, 3 * u + 1)])
            .collect();
        let seen = Interactions::from_pairs(9, 321, &pairs).unwrap();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let e = QueryEngine::new(artifact);
        let requests: Vec<Request> = (0..9u32)
            .map(|u| Request {
                user: u,
                k: 7 + (u as usize % 3),
                exclude_seen: u % 2 == 0,
            })
            .collect();
        let mut scratch = QueryScratch::new();
        let mut outs: Vec<Vec<u32>> = vec![Vec::new(); requests.len()];
        e.top_k_batch_into(&requests, &mut scratch, &mut outs)
            .unwrap();
        for (r, got) in requests.iter().zip(&outs) {
            let expected = e.top_k(r.user, r.k, r.exclude_seen).unwrap();
            assert_eq!(got, &expected, "user {} diverged in the batch", r.user);
        }
    }

    #[test]
    fn coalesced_serve_matches_single_claim_serve() {
        let mut rng = StdRng::seed_from_u64(53);
        let model = MatrixFactorization::new(12, 200, 8, 0.1, &mut rng).unwrap();
        let pairs: Vec<(u32, u32)> = (0..12u32).map(|u| (u, u * 16)).collect();
        let seen = Interactions::from_pairs(12, 200, &pairs).unwrap();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let requests: Vec<Request> = (0..150)
            .map(|i| Request {
                user: (i * 7 % 12) as u32,
                k: 5,
                exclude_seen: true,
            })
            .collect();
        let plain = QueryEngine::new(artifact.clone());
        let baseline = plain.serve(&requests, 1).unwrap();
        for batch in [2usize, 8, 64] {
            let mut coalesced = QueryEngine::new(artifact.clone());
            coalesced.set_coalesce(batch);
            for threads in [1usize, 3] {
                let report = coalesced.serve(&requests, threads).unwrap();
                for (i, (a, b)) in baseline.results.iter().zip(&report.results).enumerate() {
                    assert_eq!(
                        a.items, b.items,
                        "request {i} diverged at coalesce {batch} × {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn ivf_cache_keys_do_not_alias_exact_keys() {
        let mut rng = StdRng::seed_from_u64(59);
        let model = MatrixFactorization::new(3, 64, 4, 0.1, &mut rng).unwrap();
        let seen = Interactions::from_pairs(3, 64, &[(0, 2)]).unwrap();
        let artifact =
            ModelArtifact::freeze_with(&model, &seen, Some(crate::IvfConfig::default())).unwrap();
        let mut e = QueryEngine::with_cache(artifact, 16);
        let exact = e.top_k(0, 8, true).unwrap();
        let hits_before = e.cache_hits();
        e.set_index_mode(IndexMode::Ivf { nprobe: 1 }).unwrap();
        // A 1-cluster probe must not be served from the exact entry.
        let _ivf = e.top_k(0, 8, true).unwrap();
        assert_eq!(e.cache_hits(), hits_before, "mode must be part of the key");
        e.set_index_mode(IndexMode::Exact).unwrap();
        assert_eq!(e.top_k(0, 8, true).unwrap(), exact);
        assert_eq!(e.cache_hits(), hits_before + 1);
    }

    #[test]
    fn matches_live_scorer_rankings_bitwise() {
        // Freeze a random MF and compare every user's full ranking against
        // the live model's score_all + top_k_masked.
        let mut rng = StdRng::seed_from_u64(5);
        let model = MatrixFactorization::new(6, 20, 8, 0.1, &mut rng).unwrap();
        let seen =
            Interactions::from_pairs(6, 20, &[(0, 3), (1, 7), (2, 0), (3, 19), (4, 4), (5, 11)])
                .unwrap();
        let e = QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap());
        let mut scores = vec![0.0f32; 20];
        for u in 0..6u32 {
            model.score_all(u, &mut scores);
            let expected = bns_eval::topk::top_k_masked(&scores, seen.items_of(u), 10);
            assert_eq!(e.top_k(u, 10, true).unwrap(), expected, "user {u}");
        }
    }
}
