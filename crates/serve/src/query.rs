//! The top-k query engine over a frozen [`ModelArtifact`].
//!
//! One query is the read-only half of the evaluation protocol
//! (`bns_eval::ranking`): materialize the user's rating vector with the
//! unrolled GEMV kernel, mask the seen items from the artifact's CSR, and
//! extract the top-k list with the bounded selection buffer of
//! [`bns_eval::topk`]. Ties break toward lower item ids, so a query's
//! answer is a pure function of the artifact — bit-for-bit reproducible
//! across runs, threads and machines.
//!
//! The hot path is **allocation-free in steady state**: callers (or the
//! [`crate::engine`] workers) hold one [`QueryScratch`] per thread and the
//! score vector, selection buffer and output list are all reused — the
//! same discipline the samplers follow (`tests/sampler_alloc.rs`), pinned
//! for this crate by `crates/serve/tests/query_alloc.rs`.

use crate::cache::TopKCache;
use crate::engine::{serve_parallel, Request, ServeReport};
use crate::{ModelArtifact, Result, ServeError};
use bns_eval::topk::{top_k_masked_into, TopKBuffer};
use bns_model::Scorer;
use bns_sync::{Counter, Generation, Mutex};

/// Reusable per-worker buffers for [`QueryEngine::top_k_into`]: the score
/// vector and the top-k selection scratch. Steady-state allocation-free
/// once warm.
#[derive(Debug, Default)]
pub struct QueryScratch {
    pub(crate) scores: Vec<f32>,
    pub(crate) topk: TopKBuffer,
}

impl QueryScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Answers `top_k(user, k, exclude_seen)` queries over a frozen artifact,
/// optionally through a generation-stamped LRU cache, and fans request
/// batches out to a work-stealing thread pool ([`QueryEngine::serve`]).
///
/// ```
/// use bns_data::Interactions;
/// use bns_model::MatrixFactorization;
/// use bns_serve::{ModelArtifact, QueryEngine};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let model = MatrixFactorization::new(2, 6, 4, 0.1, &mut rng)?;
/// let seen = Interactions::from_pairs(2, 6, &[(0, 1), (1, 4)])?;
/// let engine = QueryEngine::new(ModelArtifact::freeze(&model, &seen)?);
///
/// let ranked = engine.top_k(0, 3, true)?;
/// assert_eq!(ranked.len(), 3);
/// assert!(!ranked.contains(&1), "seen item must be filtered");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    artifact: ModelArtifact,
    cache: Option<Mutex<TopKCache>>,
    generation: Generation,
    cache_hits: Counter,
    cache_lookups: Counter,
}

impl QueryEngine {
    /// Creates an engine with no cache: every query runs the full
    /// GEMV + top-k path.
    pub fn new(artifact: ModelArtifact) -> Self {
        Self {
            artifact,
            cache: None,
            generation: Generation::new(),
            cache_hits: Counter::new(),
            cache_lookups: Counter::new(),
        }
    }

    /// Creates an engine with a generation-stamped LRU cache of
    /// `capacity` entries in front of the scoring path. A `capacity` of
    /// zero disables the cache entirely (identical to
    /// [`QueryEngine::new`]), so callers can wire the capacity straight
    /// from configuration without an off-switch.
    pub fn with_cache(artifact: ModelArtifact, capacity: usize) -> Self {
        Self {
            cache: (capacity > 0).then(|| Mutex::new(TopKCache::new(capacity))),
            ..Self::new(artifact)
        }
    }

    /// The frozen artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Current artifact generation (bumped by
    /// [`QueryEngine::swap_artifact`]).
    pub fn generation(&self) -> u64 {
        self.generation.current()
    }

    /// Cache hits since construction (0 when no cache is configured).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Cache lookups since construction (0 when no cache is configured).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_lookups.get()
    }

    /// Replaces the served artifact (a model hot-swap after retraining)
    /// and bumps the generation, which invalidates every cached top-k
    /// list in one step. Returns the previous artifact.
    ///
    /// Takes `&mut self`: a swap is an exclusive operation between serve
    /// batches, never racing in-flight queries. [`Generation::bump`] is
    /// nevertheless a Release store (and reads Acquire), so the protocol
    /// stays correct when the planned online-learning path starts swapping
    /// through a shared reference; the `cache_swap` scenarios in
    /// `bns-check` pin the invariant either way.
    pub fn swap_artifact(&mut self, artifact: ModelArtifact) -> ModelArtifact {
        self.generation.bump();
        std::mem::replace(&mut self.artifact, artifact)
    }

    /// Answers one query into caller-owned buffers: `out` receives the
    /// ranked item ids (best first, at most `k`), `scratch` holds the
    /// reusable score/selection buffers. Allocation-free once warm
    /// (except on a cache *insert*, which clones the list it stores).
    ///
    /// With `exclude_seen`, the user's frozen training positives are
    /// masked out — the §II recommendation-list protocol; without it, the
    /// raw top-k over the whole catalog is returned.
    pub fn top_k_into(
        &self,
        user: u32,
        k: usize,
        exclude_seen: bool,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let n_users = self.artifact.n_users();
        if user >= n_users {
            return Err(ServeError::UnknownUser { user, n_users });
        }
        // Read the generation once and use it for both the lookup and the
        // insert below: re-reading at insert time could stamp a list
        // computed against the old artifact with the new generation (the
        // staleness bug the bns-check `cache_swap` scenario demonstrates).
        let generation = self.generation.current();
        let key = cache_key(user, k, exclude_seen);
        if let Some(cache) = &self.cache {
            self.cache_lookups.incr();
            let mut cache = cache.lock();
            if let Some(items) = cache.get(key, generation) {
                out.clear();
                out.extend_from_slice(items);
                self.cache_hits.incr();
                return Ok(());
            }
        }

        let n_items = self.artifact.n_items() as usize;
        scratch.scores.resize(n_items, 0.0);
        self.artifact.score_all(user, &mut scratch.scores);
        let masked: &[u32] = if exclude_seen {
            self.artifact.seen().items_of(user)
        } else {
            &[]
        };
        top_k_masked_into(&scratch.scores, masked, k, &mut scratch.topk, out);

        if let Some(cache) = &self.cache {
            cache.lock().insert(key, generation, out);
        }
        Ok(())
    }

    /// Convenience wrapper over [`QueryEngine::top_k_into`] that
    /// allocates fresh buffers — fine for one-off queries and doc
    /// examples; hot loops should reuse a [`QueryScratch`].
    pub fn top_k(&self, user: u32, k: usize, exclude_seen: bool) -> Result<Vec<u32>> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::with_capacity(k);
        self.top_k_into(user, k, exclude_seen, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Serves a batch of requests on `n_threads` scoped workers draining
    /// a work-stealing queue; see [`crate::engine`] for the scheduling
    /// contract. Validates every request up front, so the report covers
    /// all of them in input order.
    pub fn serve(&self, requests: &[Request], n_threads: usize) -> Result<ServeReport> {
        let n_users = self.artifact.n_users();
        for r in requests {
            if r.user >= n_users {
                return Err(ServeError::UnknownUser {
                    user: r.user,
                    n_users,
                });
            }
        }
        Ok(serve_parallel(self, requests, n_threads))
    }
}

/// Packs `(user, k, exclude_seen)` into one cache key. `k` is truncated
/// to 31 bits — far beyond any real recommendation cutoff.
fn cache_key(user: u32, k: usize, exclude_seen: bool) -> u64 {
    (user as u64) | (((k as u64) & 0x7FFF_FFFF) << 32) | ((exclude_seen as u64) << 63)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::{Embedding, MatrixFactorization};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2 users × 4 items with hand-set scores via an MF whose dim-1
    /// embeddings multiply to the fixed table below.
    fn engine() -> QueryEngine {
        // users: [1], [2]; items: [0.9, 0.5, 0.7, 0.1]
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0), (1, 2)]).unwrap();
        QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
    }

    #[test]
    fn ranks_by_score_with_mask() {
        let e = engine();
        // User 0 scores: [0.9, 0.5, 0.7, 0.1]; item 0 seen.
        assert_eq!(e.top_k(0, 2, true).unwrap(), vec![2, 1]);
        assert_eq!(e.top_k(0, 2, false).unwrap(), vec![0, 2]);
        // User 1 scores doubled, same order; item 2 seen.
        assert_eq!(e.top_k(1, 4, true).unwrap(), vec![0, 1, 3]);
    }

    #[test]
    fn unknown_user_is_typed() {
        let e = engine();
        assert!(matches!(
            e.top_k(9, 2, true),
            Err(ServeError::UnknownUser {
                user: 9,
                n_users: 2
            })
        ));
    }

    #[test]
    fn cached_engine_returns_identical_lists_and_counts_hits() {
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0), (1, 2)]).unwrap();
        let e = QueryEngine::with_cache(ModelArtifact::freeze(&model, &seen).unwrap(), 8);
        let first = e.top_k(0, 2, true).unwrap();
        assert_eq!(e.cache_hits(), 0);
        let second = e.top_k(0, 2, true).unwrap();
        assert_eq!(first, second);
        assert_eq!(e.cache_hits(), 1);
        // Different k or mask is a different key.
        let _ = e.top_k(0, 3, true).unwrap();
        let _ = e.top_k(0, 2, false).unwrap();
        assert_eq!(e.cache_hits(), 1);
    }

    #[test]
    fn zero_cache_capacity_disables_the_cache() {
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0)]).unwrap();
        let e = QueryEngine::with_cache(ModelArtifact::freeze(&model, &seen).unwrap(), 0);
        let first = e.top_k(0, 2, true).unwrap();
        assert_eq!(first, e.top_k(0, 2, true).unwrap());
        assert_eq!(e.cache_lookups(), 0, "capacity 0 must bypass the cache");
        assert_eq!(e.cache_hits(), 0);
    }

    #[test]
    fn swap_artifact_bumps_generation_and_invalidates() {
        let users = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items = Embedding::from_vec(4, 1, vec![0.9, 0.5, 0.7, 0.1]).unwrap();
        let model = MatrixFactorization::from_embeddings(users, items).unwrap();
        let seen = Interactions::from_pairs(2, 4, &[(0, 0)]).unwrap();
        let mut e = QueryEngine::with_cache(ModelArtifact::freeze(&model, &seen).unwrap(), 8);
        assert_eq!(e.top_k(0, 2, true).unwrap(), vec![2, 1]);

        // Retrained model: item 3 is now the best for user 0.
        let users2 = Embedding::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let items2 = Embedding::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.9]).unwrap();
        let model2 = MatrixFactorization::from_embeddings(users2, items2).unwrap();
        let old = e.swap_artifact(ModelArtifact::freeze(&model2, &seen).unwrap());
        assert_eq!(e.generation(), 1);
        assert_eq!(old.score(0, 0), 0.9);
        // The cached [2, 1] must not leak through.
        assert_eq!(e.top_k(0, 2, true).unwrap(), vec![3, 2]);
    }

    #[test]
    fn matches_live_scorer_rankings_bitwise() {
        // Freeze a random MF and compare every user's full ranking against
        // the live model's score_all + top_k_masked.
        let mut rng = StdRng::seed_from_u64(5);
        let model = MatrixFactorization::new(6, 20, 8, 0.1, &mut rng).unwrap();
        let seen =
            Interactions::from_pairs(6, 20, &[(0, 3), (1, 7), (2, 0), (3, 19), (4, 4), (5, 11)])
                .unwrap();
        let e = QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap());
        let mut scores = vec![0.0f32; 20];
        for u in 0..6u32 {
            model.score_all(u, &mut scores);
            let expected = bns_eval::topk::top_k_masked(&scores, seen.items_of(u), 10);
            assert_eq!(e.top_k(u, 10, true).unwrap(), expected, "user {u}");
        }
    }
}
