//! The frozen model artifact: a versioned, checksummed binary freeze of a
//! trained scorer plus its seen-item CSR.
//!
//! ## Format (all integers little-endian)
//!
//! ```text
//! magic    4 bytes = b"BNSA" (u32 LE 0x414E5342)
//! version  u32  = 1
//! kind     u32  SnapshotKind tag (provenance only; all kinds serve alike)
//! n_users  u32
//! n_items  u32
//! dim      u32
//! users    n_users·dim × u32   f32 bit patterns, row-major
//! items    n_items·dim × u32   f32 bit patterns, row-major
//! seen_len u64, then seen_len bytes: bns_data::serialize::encode_interactions
//!          of the training-positive CSR (the per-user exclusion mask)
//! checksum u64  FNV-1a 64 over every preceding byte
//! ```
//!
//! The layout is **memory-stable**: floats are stored as their exact bit
//! patterns and re-materialized into the same row-major [`Embedding`]
//! tables the live models score from, so a loaded artifact reproduces the
//! model's scores bitwise (see [`ModelArtifact::freeze`]). Integrity is
//! three-layered: magic/version gate the format, the FNV-1a checksum
//! rejects any bit flip in the payload, and the CSR section re-validates
//! every structural invariant through [`bns_data::serialize`].

use crate::{Result, ServeError};
use bns_data::serialize::{decode_interactions, encode_interactions};
use bns_data::Interactions;
use bns_model::snapshot::{SnapshotKind, SnapshotScorer};
use bns_model::{kernel, Embedding, Scorer};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic — the file starts with the literal bytes `b"BNSA"`
/// (BNS Artifact), stored here as the little-endian `u32` the encoder
/// writes so the first four bytes of an artifact read "BNSA" in a hex
/// dump.
pub const MAGIC: u32 = u32::from_le_bytes(*b"BNSA");

/// Current format version. Decoders reject anything else with
/// [`ServeError::UnsupportedVersion`].
pub const VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the artifact integrity checksum.
///
/// Chosen over a CRC because it needs no table, is a few lines of
/// dependency-free code, and at artifact sizes (megabytes) any accidental
/// corruption flips the digest with probability ≈ 1 − 2⁻⁶⁴. It is *not*
/// cryptographic; artifacts are trusted inputs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// An immutable frozen scorer: dense user/item tables plus the seen-item
/// CSR, scoring through the same kernel as the live models.
///
/// ```
/// use bns_data::Interactions;
/// use bns_model::{MatrixFactorization, Scorer};
/// use bns_serve::ModelArtifact;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let model = MatrixFactorization::new(3, 5, 8, 0.1, &mut rng)?;
/// let seen = Interactions::from_pairs(3, 5, &[(0, 1), (1, 0), (2, 4)])?;
///
/// // Freeze, round-trip through the binary format, and verify bitwise.
/// let artifact = ModelArtifact::freeze(&model, &seen)?;
/// let reloaded = ModelArtifact::decode(&artifact.encode())?;
/// for u in 0..3u32 {
///     for i in 0..5u32 {
///         assert_eq!(reloaded.score(u, i).to_bits(), model.score(u, i).to_bits());
///     }
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    kind: SnapshotKind,
    users: Embedding,
    items: Embedding,
    seen: Interactions,
}

impl ModelArtifact {
    /// Freezes a trained scorer together with the training-positive CSR
    /// used for `exclude_seen` filtering at query time.
    ///
    /// The frozen scores are bitwise identical to the live model's: the
    /// dense tables come from [`SnapshotScorer::snapshot_embeddings`]
    /// (whose contract is exactness) and this type scores them through
    /// the same [`bns_model::kernel`] entry points.
    pub fn freeze<S: SnapshotScorer + ?Sized>(scorer: &S, seen: &Interactions) -> Result<Self> {
        if seen.n_users() != scorer.n_users() || seen.n_items() != scorer.n_items() {
            return Err(ServeError::Invalid(format!(
                "seen CSR shape ({} users × {} items) does not match scorer ({} × {})",
                seen.n_users(),
                seen.n_items(),
                scorer.n_users(),
                scorer.n_items()
            )));
        }
        let (users, items) = scorer
            .snapshot_embeddings()
            .map_err(|e| ServeError::Invalid(format!("snapshot failed: {e}")))?;
        Ok(Self {
            kind: scorer.snapshot_kind(),
            users,
            items,
            seen: seen.clone(),
        })
    }

    /// Provenance: which live scorer this artifact was frozen from.
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.users.dim()
    }

    /// The frozen seen-item CSR (training positives at freeze time).
    pub fn seen(&self) -> &Interactions {
        &self.seen
    }

    /// The frozen user table.
    pub fn users(&self) -> &Embedding {
        &self.users
    }

    /// The frozen item table.
    pub fn items(&self) -> &Embedding {
        &self.items
    }

    /// Encodes into the self-describing checksummed binary format.
    pub fn encode(&self) -> Bytes {
        let dim = self.users.dim();
        let seen_bytes = encode_interactions(&self.seen);
        let mut buf = BytesMut::with_capacity(
            24 + 4 * (self.users.as_slice().len() + self.items.as_slice().len())
                + 16
                + seen_bytes.len(),
        );
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.kind.tag());
        buf.put_u32_le(self.users.len() as u32);
        buf.put_u32_le(self.items.len() as u32);
        buf.put_u32_le(dim as u32);
        for &v in self.users.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
        for &v in self.items.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
        buf.put_u64_le(seen_bytes.len() as u64);
        buf.put_slice(&seen_bytes);
        let checksum = fnv1a64(&buf);
        buf.put_u64_le(checksum);
        buf.freeze()
    }

    /// Decodes a buffer produced by [`ModelArtifact::encode`], verifying
    /// magic, version, checksum and every structural invariant.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        // Header (24) + seen_len (8) + checksum (8) is the smallest
        // well-formed artifact; shorter buffers cannot even be framed.
        if buf.len() < 40 {
            return Err(ServeError::Truncated {
                what: "artifact frame",
            });
        }
        let (payload, tail) = buf.split_at(buf.len() - 8);
        let mut cursor = payload;
        let magic = cursor.get_u32_le();
        if magic != MAGIC {
            return Err(ServeError::BadMagic { found: magic });
        }
        let version = cursor.get_u32_le();
        if version != VERSION {
            return Err(ServeError::UnsupportedVersion { found: version });
        }
        let stored = u64::from_le_bytes(tail.try_into().expect("split_at(len - 8)"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(ServeError::ChecksumMismatch { stored, computed });
        }

        let need = |cursor: &&[u8], n: usize, what: &'static str| -> Result<()> {
            if cursor.remaining() < n {
                Err(ServeError::Truncated { what })
            } else {
                Ok(())
            }
        };
        need(&cursor, 16, "header")?;
        let kind_tag = cursor.get_u32_le();
        let kind = SnapshotKind::from_tag(kind_tag)
            .ok_or_else(|| ServeError::Invalid(format!("unknown snapshot kind tag {kind_tag}")))?;
        let n_users = cursor.get_u32_le() as usize;
        let n_items = cursor.get_u32_le() as usize;
        let dim = cursor.get_u32_le() as usize;
        if n_users == 0 || n_items == 0 || dim == 0 {
            return Err(ServeError::Invalid(format!(
                "degenerate shape: {n_users} users × {n_items} items × dim {dim}"
            )));
        }
        let table = |cursor: &mut &[u8], rows: usize, what: &'static str| -> Result<Embedding> {
            // checked_mul guards genuine usize overflow; any in-range size
            // the encoder can produce must round-trip, however large.
            let len = rows
                .checked_mul(dim)
                .ok_or_else(|| ServeError::Invalid(format!("{what} table size overflows")))?;
            need(cursor, len.saturating_mul(4), what)?;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(f32::from_bits(cursor.get_u32_le()));
            }
            Embedding::from_vec(rows, dim, data)
                .map_err(|e| ServeError::Invalid(format!("{what} table: {e}")))
        };
        let users = table(&mut cursor, n_users, "users")?;
        let items = table(&mut cursor, n_items, "items")?;

        need(&cursor, 8, "seen length")?;
        let seen_len = cursor.get_u64_le() as usize;
        need(&cursor, seen_len, "seen CSR")?;
        let seen = decode_interactions(&cursor[..seen_len])
            .map_err(|e| ServeError::Invalid(format!("seen CSR: {e}")))?;
        cursor.advance(seen_len);
        if cursor.remaining() != 0 {
            return Err(ServeError::Invalid(
                "trailing bytes after artifact payload".into(),
            ));
        }
        if seen.n_users() as usize != n_users || seen.n_items() as usize != n_items {
            return Err(ServeError::Invalid(format!(
                "seen CSR shape ({} × {}) does not match tables ({n_users} × {n_items})",
                seen.n_users(),
                seen.n_items()
            )));
        }
        Ok(Self {
            kind,
            users,
            items,
            seen,
        })
    }

    /// Writes the encoded artifact to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes an artifact file.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let data = std::fs::read(path)?;
        Self::decode(&data)
    }
}

impl Scorer for ModelArtifact {
    fn n_users(&self) -> u32 {
        self.users.len() as u32
    }

    fn n_items(&self) -> u32 {
        self.items.len() as u32
    }

    #[inline]
    fn score(&self, u: u32, i: u32) -> f32 {
        kernel::dot(self.users.row(u as usize), self.items.row(i as usize))
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.items.len());
        kernel::gemv(self.users.row(u as usize), self.items.as_slice(), out);
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        kernel::gather_dots(
            self.users.row(u as usize),
            self.items.as_slice(),
            items,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_model::MatrixFactorization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (MatrixFactorization, Interactions) {
        let mut rng = StdRng::seed_from_u64(11);
        let model = MatrixFactorization::new(4, 7, 8, 0.1, &mut rng).unwrap();
        let seen =
            Interactions::from_pairs(4, 7, &[(0, 1), (0, 3), (1, 0), (2, 6), (3, 2)]).unwrap();
        (model, seen)
    }

    #[test]
    fn encode_decode_round_trip_is_bitwise() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
        assert_eq!(reloaded.kind(), SnapshotKind::Mf);
        assert_eq!(reloaded.seen(), &seen);
        for u in 0..4u32 {
            for i in 0..7u32 {
                assert_eq!(
                    reloaded.score(u, i).to_bits(),
                    model.score(u, i).to_bits(),
                    "score diverged at ({u}, {i})"
                );
            }
        }
    }

    #[test]
    fn score_paths_agree_bitwise() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let mut all = vec![0.0f32; 7];
        artifact.score_all(2, &mut all);
        let ids: Vec<u32> = (0..7).collect();
        let mut gathered = vec![0.0f32; 7];
        artifact.score_items(2, &ids, &mut gathered);
        for i in 0..7u32 {
            let s = artifact.score(2, i);
            assert_eq!(s.to_bits(), all[i as usize].to_bits());
            assert_eq!(s.to_bits(), gathered[i as usize].to_bits());
        }
    }

    #[test]
    fn freeze_rejects_shape_mismatch() {
        let (model, _) = fixture();
        let wrong = Interactions::from_pairs(3, 7, &[(0, 1)]).unwrap();
        assert!(matches!(
            ModelArtifact::freeze(&model, &wrong),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let path = std::env::temp_dir().join(format!(
            "bns_artifact_unit_test_{}.bnsa",
            std::process::id()
        ));
        artifact.save(&path).unwrap();
        let reloaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(
            reloaded.score(1, 2).to_bits(),
            artifact.score(1, 2).to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn on_disk_file_starts_with_bnsa() {
        let (model, seen) = fixture();
        let buf = ModelArtifact::freeze(&model, &seen).unwrap().encode();
        assert_eq!(
            &buf[..4],
            b"BNSA",
            "magic must be recognizable in a hex dump"
        );
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
