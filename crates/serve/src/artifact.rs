//! The frozen model artifact: a versioned, checksummed binary freeze of a
//! trained scorer plus its seen-item CSR and (v3) its freeze-time IVF
//! index.
//!
//! ## Format v3 (all integers little-endian)
//!
//! ```text
//! payload:
//!   magic    4 bytes = b"BNSA" (u32 LE 0x414E5342)
//!   version  u32  = 3
//!   kind     u32  SnapshotKind tag (provenance only; all kinds serve alike)
//!   n_users  u32
//!   n_items  u32
//!   dim      u32
//!   users    n_users·dim × u32   f32 bit patterns, row-major   (byte 24)
//!   items    n_items·dim × u32   f32 bit patterns, row-major
//!   seen_len u64, then seen_len bytes: bns_data::serialize::encode_interactions
//!            of the training-positive CSR (the per-user exclusion mask)
//!   index_len u64 (0 = no index), then index_len bytes: the IVF section —
//!            n_clusters u32, centroid f32 bit patterns, per-cluster radii,
//!            cluster offsets, cluster-sorted item permutation
//!            (see [`crate::index`])
//! footer:
//!   digests  n_chunks × u64   word-FNV digest per CHUNK_SIZE payload slice
//!   chunk_size u64
//!   n_chunks   u64
//!   footer_sum u64   word-FNV over [digests‥n_chunks] (protects the footer)
//! ```
//!
//! Every multi-byte region (the two tables, the embedded CSR arrays, and
//! each IVF subsection — the CSR encoding is always a multiple of 4 bytes,
//! so the index section inherits alignment) starts at a 4-byte-aligned
//! file offset, which is what lets [`ModelArtifact::load_mapped`] serve
//! straight out of an `mmap`ed file: the tables become [`F32Buf`] views
//! and the CSR and IVF arrays become `U32Buf`/`F32Buf` views — no read
//! pass, no copy, no per-element decode. Integrity stays three-layered:
//! magic/version gate the format, the chunked word-FNV digests reject any
//! bit flip in payload or footer (verified over the mapped bytes before
//! any view is handed out; the IVF section sits inside the digested
//! payload, so it is covered for free), and the CSR and IVF sections
//! re-validate every structural invariant. The v1 single-trailing-checksum
//! format is rejected with the typed [`ServeError::UnsupportedVersion`];
//! v2 artifacts (no index section) still load, with
//! [`ModelArtifact::index`] absent — Exact-only serving.
//!
//! The layout is **memory-stable**: floats are stored as their exact bit
//! patterns and scored through the same [`bns_model::kernel`] entry points
//! as the live models, so a loaded artifact reproduces the model's scores
//! bitwise whatever the backing store (see [`ModelArtifact::freeze`]).

use crate::index::{IvfConfig, IvfIndex};
use crate::{Result, ServeError};
use bns_data::serialize::{decode_interactions_storage, encode_interactions};
use bns_data::storage::{F32Buf, Storage};
use bns_data::Interactions;
use bns_model::snapshot::{SnapshotKind, SnapshotScorer};
use bns_model::{kernel, Embedding, Scorer};
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Format magic — the file starts with the literal bytes `b"BNSA"`
/// (BNS Artifact), stored here as the little-endian `u32` the encoder
/// writes so the first four bytes of an artifact read "BNSA" in a hex
/// dump.
pub const MAGIC: u32 = u32::from_le_bytes(*b"BNSA");

/// Current format version. Decoders accept [`MIN_VERSION`]..=[`VERSION`]
/// and reject anything else with [`ServeError::UnsupportedVersion`].
pub const VERSION: u32 = 3;

/// Oldest format version decoders still accept. v2 is v3 without the
/// IVF index section; a v2 artifact loads with [`ModelArtifact::index`]
/// absent and serves Exact-only.
pub const MIN_VERSION: u32 = 2;

/// Catalog size at which [`ModelArtifact::freeze`] builds an IVF index by
/// default. Below this an exhaustive scan is already microseconds and the
/// index would only add freeze latency; [`ModelArtifact::freeze_with`]
/// overrides in either direction.
pub const AUTO_INDEX_MIN_ITEMS: usize = 1024;

/// Payload bytes covered by each footer digest. One digest per MiB keeps
/// the footer tiny (8 B/MiB) while letting verification stream cache-sized
/// pieces over the mapped file.
pub const CHUNK_SIZE: usize = 1 << 20;

/// FNV-1a 64-bit hash — the byte-at-a-time reference form.
///
/// Chosen over a CRC because it needs no table, is a few lines of
/// dependency-free code, and at artifact sizes (megabytes) any accidental
/// corruption flips the digest with probability ≈ 1 − 2⁻⁶⁴. It is *not*
/// cryptographic; artifacts are trusted inputs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a 64 folded over 8-byte little-endian words instead of bytes —
/// the v2 digest. One xor-multiply per 8 bytes makes verification a
/// near-memory-bandwidth pass over the mapped pages (the point of the
/// chunked footer: `load_ms` stops paying a per-byte hash loop on top of
/// the former per-element decode). The zero-padded tail word plus a final
/// length fold keep distinct-length suffixes distinct.
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        hash ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut w = [0u8; 8];
        w[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(w);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(0x0000_0100_0000_01B3)
}

/// A frozen embedding table: heap-owned (freeze/decode) or a zero-copy
/// view into shared artifact storage (mapped load). Row access is a plain
/// slice either way, so the scoring kernels cannot tell the difference.
#[derive(Debug, Clone)]
enum TableStore {
    Owned(Embedding),
    View {
        buf: F32Buf,
        rows: usize,
        dim: usize,
    },
}

impl TableStore {
    fn rows(&self) -> usize {
        match self {
            TableStore::Owned(e) => e.len(),
            TableStore::View { rows, .. } => *rows,
        }
    }

    fn dim(&self) -> usize {
        match self {
            TableStore::Owned(e) => e.dim(),
            TableStore::View { dim, .. } => *dim,
        }
    }

    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        match self {
            TableStore::Owned(e) => e.row(r),
            TableStore::View { buf, dim, .. } => &buf.as_slice()[r * dim..(r + 1) * dim],
        }
    }

    fn as_slice(&self) -> &[f32] {
        match self {
            TableStore::Owned(e) => e.as_slice(),
            TableStore::View { buf, .. } => buf.as_slice(),
        }
    }

    /// Whether the table's bytes live in a live file mapping.
    fn backing_is_mapped(&self) -> bool {
        match self {
            TableStore::Owned(_) => false,
            TableStore::View { buf, .. } => match buf {
                F32Buf::Owned(_) => false,
                F32Buf::Mapped { storage, .. } => storage.is_mapped(),
            },
        }
    }
}

/// An immutable frozen scorer: dense user/item tables plus the seen-item
/// CSR, scoring through the same kernel as the live models.
///
/// ```
/// use bns_data::Interactions;
/// use bns_model::{MatrixFactorization, Scorer};
/// use bns_serve::ModelArtifact;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let model = MatrixFactorization::new(3, 5, 8, 0.1, &mut rng)?;
/// let seen = Interactions::from_pairs(3, 5, &[(0, 1), (1, 0), (2, 4)])?;
///
/// // Freeze, round-trip through the binary format, and verify bitwise.
/// let artifact = ModelArtifact::freeze(&model, &seen)?;
/// let reloaded = ModelArtifact::decode(&artifact.encode())?;
/// for u in 0..3u32 {
///     for i in 0..5u32 {
///         assert_eq!(reloaded.score(u, i).to_bits(), model.score(u, i).to_bits());
///     }
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    kind: SnapshotKind,
    users: TableStore,
    items: TableStore,
    seen: Interactions,
    index: Option<IvfIndex>,
}

impl ModelArtifact {
    /// Freezes a trained scorer together with the training-positive CSR
    /// used for `exclude_seen` filtering at query time.
    ///
    /// The frozen scores are bitwise identical to the live model's: the
    /// dense tables come from [`SnapshotScorer::snapshot_embeddings`]
    /// (whose contract is exactness) and this type scores them through
    /// the same [`bns_model::kernel`] entry points.
    ///
    /// Catalogs of at least [`AUTO_INDEX_MIN_ITEMS`] items also get a
    /// freeze-time IVF index (default [`IvfConfig`]); smaller ones freeze
    /// index-free, where the exhaustive scan is already fast. Use
    /// [`ModelArtifact::freeze_with`] to force either choice.
    pub fn freeze<S: SnapshotScorer + ?Sized>(scorer: &S, seen: &Interactions) -> Result<Self> {
        let auto = if scorer.n_items() as usize >= AUTO_INDEX_MIN_ITEMS {
            Some(IvfConfig::default())
        } else {
            None
        };
        Self::freeze_with(scorer, seen, auto)
    }

    /// [`ModelArtifact::freeze`] with explicit control over the IVF index:
    /// `Some(cfg)` always builds one (whatever the catalog size), `None`
    /// never does.
    pub fn freeze_with<S: SnapshotScorer + ?Sized>(
        scorer: &S,
        seen: &Interactions,
        ivf: Option<IvfConfig>,
    ) -> Result<Self> {
        if seen.n_users() != scorer.n_users() || seen.n_items() != scorer.n_items() {
            return Err(ServeError::Invalid(format!(
                "seen CSR shape ({} users × {} items) does not match scorer ({} × {})",
                seen.n_users(),
                seen.n_items(),
                scorer.n_users(),
                scorer.n_items()
            )));
        }
        let (users, items) = scorer
            .snapshot_embeddings()
            .map_err(|e| ServeError::Invalid(format!("snapshot failed: {e}")))?;
        let index =
            ivf.map(|cfg| IvfIndex::build(items.as_slice(), items.len(), items.dim(), &cfg));
        Ok(Self {
            kind: scorer.snapshot_kind(),
            users: TableStore::Owned(users),
            items: TableStore::Owned(items),
            seen: seen.clone(),
            index,
        })
    }

    /// Provenance: which live scorer this artifact was frozen from.
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.users.dim()
    }

    /// The frozen seen-item CSR (training positives at freeze time).
    pub fn seen(&self) -> &Interactions {
        &self.seen
    }

    /// The freeze-time IVF index, when the artifact carries one (v3 with
    /// an index section, or an in-memory freeze that built one). Absent on
    /// v2 artifacts and small-catalog freezes — the engine then serves
    /// Exact-only.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// The frozen item table as a row-major slice (the IVF probe path
    /// gathers directly from it).
    pub(crate) fn items_table(&self) -> &[f32] {
        self.items.as_slice()
    }

    /// One frozen user row.
    pub(crate) fn user_row(&self, u: u32) -> &[f32] {
        self.users.row(u as usize)
    }

    /// Whether the tables serve zero-copy out of a live file mapping
    /// (true only for [`ModelArtifact::load_mapped`] on a platform where
    /// the mapped views qualified).
    pub fn is_mapped(&self) -> bool {
        self.users.backing_is_mapped() && self.items.backing_is_mapped()
    }

    /// Encodes into the self-describing checksummed binary format
    /// (always version [`VERSION`]; an artifact without an index encodes
    /// `index_len = 0`).
    pub fn encode(&self) -> Bytes {
        let dim = self.users.dim();
        let seen_bytes = encode_interactions(&self.seen);
        let index_len = self.index.as_ref().map_or(0, |ix| ix.encoded_len());
        let payload_len = 24
            + 4 * (self.users.as_slice().len() + self.items.as_slice().len())
            + 8
            + seen_bytes.len()
            + 8
            + index_len;
        let n_chunks = payload_len.div_ceil(CHUNK_SIZE);
        let mut buf = BytesMut::with_capacity(payload_len + 8 * n_chunks + 24);
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.kind.tag());
        buf.put_u32_le(self.users.rows() as u32);
        buf.put_u32_le(self.items.rows() as u32);
        buf.put_u32_le(dim as u32);
        for &v in self.users.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
        for &v in self.items.as_slice() {
            buf.put_u32_le(v.to_bits());
        }
        buf.put_u64_le(seen_bytes.len() as u64);
        buf.put_slice(&seen_bytes);
        buf.put_u64_le(index_len as u64);
        if let Some(ix) = &self.index {
            ix.encode_into(&mut buf);
        }
        debug_assert_eq!(buf.len(), payload_len);

        let footer_start = buf.len();
        let digests: Vec<u64> = buf.chunks(CHUNK_SIZE).map(fnv1a64_words).collect();
        for digest in digests {
            buf.put_u64_le(digest);
        }
        buf.put_u64_le(CHUNK_SIZE as u64);
        buf.put_u64_le(n_chunks as u64);
        let footer_sum = fnv1a64_words(&buf[footer_start..]);
        buf.put_u64_le(footer_sum);
        buf.freeze()
    }

    /// Decodes a buffer produced by [`ModelArtifact::encode`], verifying
    /// magic, version, every chunk digest and every structural invariant.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let storage = Arc::new(Storage::Owned(buf.to_vec()));
        Self::parse(&storage)
    }

    /// Verifies the chunked footer and returns the payload length.
    fn verify(bytes: &[u8]) -> Result<usize> {
        // magic + version + the 24-byte footer tail is the bare minimum
        // to even identify the format.
        if bytes.len() < 8 + 24 {
            return Err(ServeError::Truncated {
                what: "artifact frame",
            });
        }
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let footer_sum = word(bytes.len() - 8);
        let n_chunks = word(bytes.len() - 16) as usize;
        let chunk_size = word(bytes.len() - 24) as usize;
        let digest_bytes = n_chunks.checked_mul(8).ok_or(ServeError::Truncated {
            what: "chunk digests",
        })?;
        let digest_start =
            bytes
                .len()
                .checked_sub(24 + digest_bytes)
                .ok_or(ServeError::Truncated {
                    what: "chunk digests",
                })?;
        // The footer checksum covers digests + chunk_size + n_chunks, so
        // corruption of the footer itself cannot masquerade as valid.
        let computed = fnv1a64_words(&bytes[digest_start..bytes.len() - 8]);
        if computed != footer_sum {
            return Err(ServeError::ChecksumMismatch {
                stored: footer_sum,
                computed,
            });
        }
        let payload_len = digest_start;
        if chunk_size == 0 || payload_len == 0 {
            return Err(ServeError::Invalid(
                "artifact footer: empty payload or zero chunk size".into(),
            ));
        }
        if payload_len.div_ceil(chunk_size) != n_chunks {
            return Err(ServeError::Invalid(format!(
                "artifact footer: {n_chunks} digests cannot cover {payload_len} payload bytes \
                 at chunk size {chunk_size}"
            )));
        }
        for (idx, chunk) in bytes[..payload_len].chunks(chunk_size).enumerate() {
            let stored = word(digest_start + 8 * idx);
            let computed = fnv1a64_words(chunk);
            if stored != computed {
                return Err(ServeError::ChunkChecksumMismatch {
                    chunk: idx,
                    stored,
                    computed,
                });
            }
        }
        Ok(payload_len)
    }

    /// The shared parse core: verifies, then builds tables and CSR as
    /// zero-copy views into `storage` when the platform allows, falling
    /// back to owned decodes otherwise (bit-identical results either way).
    fn parse(storage: &Arc<Storage>) -> Result<Self> {
        let bytes = storage.as_bytes();
        if bytes.len() < 8 {
            return Err(ServeError::Truncated {
                what: "artifact frame",
            });
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let magic = u32_at(0);
        if magic != MAGIC {
            return Err(ServeError::BadMagic { found: magic });
        }
        let version = u32_at(4);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(ServeError::UnsupportedVersion { found: version });
        }
        let payload_len = Self::verify(bytes)?;

        if payload_len < 24 {
            return Err(ServeError::Truncated { what: "header" });
        }
        let kind_tag = u32_at(8);
        let kind = SnapshotKind::from_tag(kind_tag)
            .ok_or_else(|| ServeError::Invalid(format!("unknown snapshot kind tag {kind_tag}")))?;
        let n_users = u32_at(12) as usize;
        let n_items = u32_at(16) as usize;
        let dim = u32_at(20) as usize;
        if n_users == 0 || n_items == 0 || dim == 0 {
            return Err(ServeError::Invalid(format!(
                "degenerate shape: {n_users} users × {n_items} items × dim {dim}"
            )));
        }
        let users_len = n_users
            .checked_mul(dim)
            .ok_or_else(|| ServeError::Invalid("users table size overflows".into()))?;
        let items_len = n_items
            .checked_mul(dim)
            .ok_or_else(|| ServeError::Invalid("items table size overflows".into()))?;
        let users_at = 24usize;
        let items_at = users_at
            .checked_add(users_len.checked_mul(4).ok_or(ServeError::Truncated {
                what: "users table",
            })?)
            .ok_or(ServeError::Truncated {
                what: "users table",
            })?;
        let seen_len_at = items_at
            .checked_add(items_len.checked_mul(4).ok_or(ServeError::Truncated {
                what: "items table",
            })?)
            .ok_or(ServeError::Truncated {
                what: "items table",
            })?;
        if seen_len_at + 8 > payload_len {
            return Err(ServeError::Truncated {
                what: "seen length",
            });
        }
        let seen_len =
            u64::from_le_bytes(bytes[seen_len_at..seen_len_at + 8].try_into().expect("8")) as usize;
        let seen_at = seen_len_at + 8;
        let seen_end = match seen_at.checked_add(seen_len) {
            Some(end) if end <= payload_len => end,
            _ => return Err(ServeError::Truncated { what: "seen CSR" }),
        };
        // v2 ends at the seen CSR; v3 appends `index_len u64` plus the
        // IVF section. Either way the payload must end exactly where the
        // declared sections do.
        let index_span = if version >= 3 {
            if seen_end + 8 > payload_len {
                return Err(ServeError::Truncated {
                    what: "index length",
                });
            }
            let index_len =
                u64::from_le_bytes(bytes[seen_end..seen_end + 8].try_into().expect("8")) as usize;
            let index_at = seen_end + 8;
            match index_at.checked_add(index_len) {
                Some(end) if end == payload_len => {}
                Some(end) if end < payload_len => {
                    return Err(ServeError::Invalid(
                        "trailing bytes after artifact payload".into(),
                    ))
                }
                _ => return Err(ServeError::Truncated { what: "ivf index" }),
            }
            if index_len == 0 {
                None
            } else {
                Some((index_at, index_len))
            }
        } else {
            if seen_end != payload_len {
                return Err(ServeError::Invalid(
                    "trailing bytes after artifact payload".into(),
                ));
            }
            None
        };

        let table =
            |at: usize, rows: usize, len: usize, what: &'static str| -> Result<TableStore> {
                match F32Buf::mapped(storage, at, len) {
                    Some(buf) => Ok(TableStore::View { buf, rows, dim }),
                    None => {
                        // Big-endian or misaligned base: decode an owned copy.
                        let mut data = Vec::with_capacity(len);
                        for k in 0..len {
                            data.push(f32::from_bits(u32_at(at + 4 * k)));
                        }
                        Embedding::from_vec(rows, dim, data)
                            .map(TableStore::Owned)
                            .map_err(|e| ServeError::Invalid(format!("{what} table: {e}")))
                    }
                }
            };
        let users = table(users_at, n_users, users_len, "users")?;
        let items = table(items_at, n_items, items_len, "items")?;

        let seen = decode_interactions_storage(storage, seen_at, seen_len)
            .map_err(|e| ServeError::Invalid(format!("seen CSR: {e}")))?;
        if seen.n_users() as usize != n_users || seen.n_items() as usize != n_items {
            return Err(ServeError::Invalid(format!(
                "seen CSR shape ({} × {}) does not match tables ({n_users} × {n_items})",
                seen.n_users(),
                seen.n_items()
            )));
        }
        let index = match index_span {
            Some((at, len)) => Some(IvfIndex::parse(storage, at, len, n_items, dim)?),
            None => None,
        };
        Ok(Self {
            kind,
            users,
            items,
            seen,
            index,
        })
    }

    /// Writes the encoded artifact to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes an artifact file through the buffered path (one
    /// full read into owned memory).
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let storage = Arc::new(Storage::read(path)?);
        Self::parse(&storage)
    }

    /// Memory-maps and decodes an artifact file: after chunk verification
    /// (a single streaming hash pass over the mapped pages) the embedding
    /// tables and CSR arrays are zero-copy views into the mapping, so load
    /// cost stops scaling with a read+copy+decode pass over the file.
    pub fn load_mapped(path: &std::path::Path) -> Result<Self> {
        let storage = Arc::new(Storage::map(path)?);
        Self::parse(&storage)
    }
}

impl Scorer for ModelArtifact {
    fn n_users(&self) -> u32 {
        self.users.rows() as u32
    }

    fn n_items(&self) -> u32 {
        self.items.rows() as u32
    }

    #[inline]
    fn score(&self, u: u32, i: u32) -> f32 {
        kernel::dot(self.users.row(u as usize), self.items.row(i as usize))
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.items.rows());
        kernel::gemv(self.users.row(u as usize), self.items.as_slice(), out);
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        kernel::gather_dots(
            self.users.row(u as usize),
            self.items.as_slice(),
            items,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_model::MatrixFactorization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (MatrixFactorization, Interactions) {
        let mut rng = StdRng::seed_from_u64(11);
        let model = MatrixFactorization::new(4, 7, 8, 0.1, &mut rng).unwrap();
        let seen =
            Interactions::from_pairs(4, 7, &[(0, 1), (0, 3), (1, 0), (2, 6), (3, 2)]).unwrap();
        (model, seen)
    }

    #[test]
    fn encode_decode_round_trip_is_bitwise() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
        assert_eq!(reloaded.kind(), SnapshotKind::Mf);
        assert_eq!(reloaded.seen(), &seen);
        for u in 0..4u32 {
            for i in 0..7u32 {
                assert_eq!(
                    reloaded.score(u, i).to_bits(),
                    model.score(u, i).to_bits(),
                    "score diverged at ({u}, {i})"
                );
            }
        }
    }

    #[test]
    fn score_paths_agree_bitwise() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let mut all = vec![0.0f32; 7];
        artifact.score_all(2, &mut all);
        let ids: Vec<u32> = (0..7).collect();
        let mut gathered = vec![0.0f32; 7];
        artifact.score_items(2, &ids, &mut gathered);
        for i in 0..7u32 {
            let s = artifact.score(2, i);
            assert_eq!(s.to_bits(), all[i as usize].to_bits());
            assert_eq!(s.to_bits(), gathered[i as usize].to_bits());
        }
    }

    #[test]
    fn freeze_rejects_shape_mismatch() {
        let (model, _) = fixture();
        let wrong = Interactions::from_pairs(3, 7, &[(0, 1)]).unwrap();
        assert!(matches!(
            ModelArtifact::freeze(&model, &wrong),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let path = std::env::temp_dir().join(format!(
            "bns_artifact_unit_test_{}.bnsa",
            std::process::id()
        ));
        artifact.save(&path).unwrap();
        let reloaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(
            reloaded.score(1, 2).to_bits(),
            artifact.score(1, 2).to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_is_bitwise_and_zero_copy() {
        let (model, seen) = fixture();
        let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
        let path = std::env::temp_dir().join(format!(
            "bns_artifact_mapped_test_{}.bnsa",
            std::process::id()
        ));
        artifact.save(&path).unwrap();
        let mapped = ModelArtifact::load_mapped(&path).unwrap();
        assert_eq!(mapped.seen(), &seen);
        for u in 0..4u32 {
            for i in 0..7u32 {
                assert_eq!(
                    mapped.score(u, i).to_bits(),
                    model.score(u, i).to_bits(),
                    "mapped score diverged at ({u}, {i})"
                );
            }
        }
        #[cfg(all(unix, target_endian = "little"))]
        {
            assert!(mapped.is_mapped(), "tables must serve from the mapping");
            assert!(mapped.seen().is_mapped(), "CSR must serve from the mapping");
        }
        assert!(!artifact.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn on_disk_file_starts_with_bnsa() {
        let (model, seen) = fixture();
        let buf = ModelArtifact::freeze(&model, &seen).unwrap().encode();
        assert_eq!(
            &buf[..4],
            b"BNSA",
            "magic must be recognizable in a hex dump"
        );
    }

    #[test]
    fn v1_artifacts_are_rejected_with_the_typed_version_error() {
        let (model, seen) = fixture();
        let mut buf = ModelArtifact::freeze(&model, &seen)
            .unwrap()
            .encode()
            .to_vec();
        // Rewrite the version field to 1 (the retired single-checksum
        // format). The version gate must fire before any checksum logic.
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            ModelArtifact::decode(&buf),
            Err(ServeError::UnsupportedVersion { found: 1 })
        ));
    }

    #[test]
    fn chunk_corruption_reports_the_chunk() {
        let (model, seen) = fixture();
        let mut buf = ModelArtifact::freeze(&model, &seen)
            .unwrap()
            .encode()
            .to_vec();
        // Flip a payload byte past the header: chunk 0 must be named.
        buf[30] ^= 0x01;
        assert!(matches!(
            ModelArtifact::decode(&buf),
            Err(ServeError::ChunkChecksumMismatch { chunk: 0, .. })
        ));
    }

    #[test]
    fn small_freeze_skips_the_index_and_freeze_with_forces_it() {
        let (model, seen) = fixture();
        // 7 items is far below AUTO_INDEX_MIN_ITEMS.
        let auto = ModelArtifact::freeze(&model, &seen).unwrap();
        assert!(auto.index().is_none());
        let forced = ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default())).unwrap();
        assert!(forced.index().is_some());
        let suppressed = ModelArtifact::freeze_with(&model, &seen, None).unwrap();
        assert!(suppressed.index().is_none());
    }

    #[test]
    fn index_round_trips_through_encode_decode() {
        let (model, seen) = fixture();
        let artifact =
            ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default())).unwrap();
        let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
        let (a, b) = (artifact.index().unwrap(), reloaded.index().unwrap());
        assert_eq!(a.n_clusters(), b.n_clusters());
        assert_eq!(a.perm(), b.perm());
        // And the exact scores stay bitwise regardless of the section.
        for u in 0..4u32 {
            for i in 0..7u32 {
                assert_eq!(reloaded.score(u, i).to_bits(), model.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn word_fnv_distinguishes_padding_from_content() {
        // The zero-padded tail must not collide with literal zero bytes.
        assert_ne!(fnv1a64_words(b"abc"), fnv1a64_words(b"abc\0"));
        assert_ne!(fnv1a64_words(b""), fnv1a64_words(b"\0"));
        assert_ne!(fnv1a64_words(b"12345678"), fnv1a64_words(b"123456780"));
    }
}
