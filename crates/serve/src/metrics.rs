//! Wire-level serving metrics: per-endpoint latency histograms and
//! lifecycle counters, rendered as a plain-text exposition for the
//! `/metrics` HTTP endpoint.
//!
//! Everything in here is a [`bns_sync`] facade primitive — relaxed
//! counters and the fixed log-bucket [`LatencyHistogram`] — so recording
//! from every connection and worker thread is one lock-free RMW with no
//! allocation. **No wall-clock lives in this module**: the network edge
//! ([`crate::net`]) measures durations and feeds finished nanosecond
//! counts in, which keeps the hot structs clock-free and the module fully
//! testable without time (the `wall-clock` lint rule covers this file).

use bns_sync::{Counter, HistogramSnapshot, LatencyHistogram};
use std::fmt::Write as _;

/// The instrumented request endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Binary-protocol top-k requests.
    BinTopK,
    /// Binary-protocol pings.
    BinPing,
    /// HTTP shim `GET /topk`.
    HttpTopK,
    /// HTTP shim `GET /metrics`.
    HttpMetrics,
}

/// All endpoints, in exposition order.
pub const ENDPOINTS: [Endpoint; 4] = [
    Endpoint::BinTopK,
    Endpoint::BinPing,
    Endpoint::HttpTopK,
    Endpoint::HttpMetrics,
];

impl Endpoint {
    /// The `endpoint="…"` label value.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::BinTopK => "bin_topk",
            Endpoint::BinPing => "bin_ping",
            Endpoint::HttpTopK => "http_topk",
            Endpoint::HttpMetrics => "http_metrics",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::BinTopK => 0,
            Endpoint::BinPing => 1,
            Endpoint::HttpTopK => 2,
            Endpoint::HttpMetrics => 3,
        }
    }
}

/// Per-endpoint counters and the edge-measured service-latency histogram.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Requests that completed with a successful status.
    pub ok: Counter,
    /// Requests that completed with a non-`Ok` status (overload, unknown
    /// user, timeout, …) — still *answered*, unlike protocol errors.
    pub errors: Counter,
    /// Service latency in nanoseconds, timestamped at the network edge:
    /// from "request fully parsed" to "response fully written".
    pub latency: LatencyHistogram,
}

/// The server-wide metrics registry. One instance per
/// [`crate::net::NetServer`], shared by every thread; all methods take
/// `&self` and are lock-free.
#[derive(Debug, Default)]
pub struct WireMetrics {
    /// Connections accepted (whether or not they ever sent a request).
    pub connections_accepted: Counter,
    /// Connections rejected at accept because the connection cap was
    /// reached (best-effort `Overloaded` written, then closed).
    pub connections_rejected: Counter,
    /// Connections fully torn down (EOF, error, deadline, or shutdown).
    pub connections_closed: Counter,
    /// Frames that failed to parse (bad checksum, bad opcode, oversized
    /// prefix, malformed HTTP head). Each one also closes its connection.
    pub proto_errors: Counter,
    /// Read/write deadline expirations (slow-loris frames, stalled
    /// readers, idle half-open connections).
    pub deadline_hits: Counter,
    /// Requests answered `Overloaded` because the bounded in-flight queue
    /// was full.
    pub overloaded: Counter,
    /// Live artifact hot-swaps performed while serving.
    pub artifact_swaps: Counter,
    endpoints: [EndpointMetrics; 4],
}

impl WireMetrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters and histogram of one endpoint.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        &self.endpoints[e.index()]
    }

    /// Records one answered request at the edge: outcome plus measured
    /// service latency in nanoseconds.
    pub fn record_request(&self, e: Endpoint, ok: bool, latency_ns: u64) {
        let ep = self.endpoint(e);
        if ok {
            ep.ok.incr();
        } else {
            ep.errors.incr();
        }
        ep.latency.record(latency_ns);
    }

    /// Renders the whole registry in the text exposition format served by
    /// `GET /metrics`: one `name value` line per counter, endpoint series
    /// labelled `{endpoint="…"}`, histograms as cumulative `_bucket{le=…}`
    /// lines plus `_count` / `_sum` / `_p50` / `_p99`.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "# bns-serve wire metrics");
        for (name, c) in [
            ("bns_connections_accepted", &self.connections_accepted),
            ("bns_connections_rejected", &self.connections_rejected),
            ("bns_connections_closed", &self.connections_closed),
            ("bns_proto_errors", &self.proto_errors),
            ("bns_deadline_hits", &self.deadline_hits),
            ("bns_requests_overloaded", &self.overloaded),
            ("bns_artifact_swaps", &self.artifact_swaps),
        ] {
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for e in ENDPOINTS {
            let ep = self.endpoint(e);
            let name = e.name();
            let snap = ep.latency.snapshot();
            let _ = writeln!(
                out,
                "bns_requests_ok{{endpoint=\"{name}\"}} {}",
                ep.ok.get()
            );
            let _ = writeln!(
                out,
                "bns_requests_error{{endpoint=\"{name}\"}} {}",
                ep.errors.get()
            );
            render_histogram(&mut out, name, &snap);
        }
        out
    }
}

/// One endpoint's histogram block: cumulative buckets, count, sum, and
/// the two headline percentiles.
fn render_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (le, count) in snap.nonzero_buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "bns_latency_ns_bucket{{endpoint=\"{name}\",le=\"{le}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "bns_latency_ns_bucket{{endpoint=\"{name}\",le=\"+Inf\"}} {}",
        snap.count
    );
    let _ = writeln!(
        out,
        "bns_latency_ns_count{{endpoint=\"{name}\"}} {}",
        snap.count
    );
    let _ = writeln!(
        out,
        "bns_latency_ns_sum{{endpoint=\"{name}\"}} {}",
        snap.sum
    );
    let _ = writeln!(
        out,
        "bns_latency_ns_p50{{endpoint=\"{name}\"}} {}",
        snap.percentile(0.5)
    );
    let _ = writeln!(
        out,
        "bns_latency_ns_p99{{endpoint=\"{name}\"}} {}",
        snap.percentile(0.99)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lands_in_the_right_endpoint() {
        let m = WireMetrics::new();
        m.record_request(Endpoint::BinTopK, true, 1_000);
        m.record_request(Endpoint::BinTopK, false, 2_000);
        m.record_request(Endpoint::HttpTopK, true, 3_000);
        assert_eq!(m.endpoint(Endpoint::BinTopK).ok.get(), 1);
        assert_eq!(m.endpoint(Endpoint::BinTopK).errors.get(), 1);
        assert_eq!(m.endpoint(Endpoint::BinTopK).latency.snapshot().count, 2);
        assert_eq!(m.endpoint(Endpoint::HttpTopK).ok.get(), 1);
        assert_eq!(m.endpoint(Endpoint::BinPing).latency.snapshot().count, 0);
    }

    #[test]
    fn text_render_contains_every_series() {
        let m = WireMetrics::new();
        m.connections_accepted.incr();
        m.overloaded.incr();
        m.record_request(Endpoint::BinTopK, true, 123_456);
        let text = m.render_text();
        assert!(text.contains("bns_connections_accepted 1"));
        assert!(text.contains("bns_requests_overloaded 1"));
        assert!(text.contains("bns_requests_ok{endpoint=\"bin_topk\"} 1"));
        assert!(text.contains("bns_latency_ns_count{endpoint=\"bin_topk\"} 1"));
        assert!(text.contains("le=\"+Inf\"}"));
        assert!(text.contains("bns_latency_ns_p99{endpoint=\"bin_topk\"}"));
        // Every non-empty line is `name value` or `name{labels} value`.
        for line in text.lines().skip(1) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad exposition line: {line}");
        }
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let m = WireMetrics::new();
        for ns in [10u64, 100, 1_000, 10_000, 100_000] {
            m.record_request(Endpoint::HttpMetrics, true, ns);
        }
        let text = m.render_text();
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.contains("bucket{endpoint=\"http_metrics\""))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative bucket decreased: {line}");
            last = v;
        }
        assert_eq!(last, 5, "+Inf bucket must equal the count");
    }
}
