#![deny(missing_docs)]

//! # bns-serve — model artifacts and a concurrent top-k query engine
//!
//! Training (the `bns-core` trainers) produces a scorer that dies with the
//! process. This crate is the inference half of the system:
//!
//! * [`artifact`] — [`ModelArtifact`]: a versioned, checksummed,
//!   memory-layout-stable binary freeze of any trained
//!   [`bns_model::SnapshotScorer`] (MF, hogwild MF, LightGCN with the
//!   propagation baked in) together with the training-positive CSR used
//!   for seen-item filtering. Save → load → score is **bitwise identical**
//!   to the live model, so offline evaluation numbers carry over to
//!   serving exactly.
//! * [`index`] — [`IvfIndex`]: the freeze-time IVF candidate-generation
//!   index (deterministic k-means over the frozen item table) stored in
//!   the v3 artifact section, turning top-k from an exhaustive scan into
//!   a centroid scan plus a few probed clusters.
//! * [`query`] — [`QueryEngine`]: answers `top_k(user, k, exclude_seen)`
//!   over an artifact through the same unrolled GEMV kernel and top-k
//!   selection heap the evaluation protocol uses, with reusable per-worker
//!   [`QueryScratch`] so the steady-state query path is allocation-free.
//!   An [`IndexMode`] knob picks exhaustive scoring (bitwise-exact) or
//!   IVF probing (recall-gated approximate).
//! * [`engine`] — the multi-threaded request loop: `std::thread::scope`
//!   workers draining a sharded work-stealing queue of [`Request`]s — up
//!   to a configurable batch per claim, scored as one blocked multi-user
//!   GEMM — recording per-request latency into a [`ServeReport`].
//! * [`cache`] — [`TopKCache`]: an optional generation-stamped LRU for
//!   repeated-user traffic; one [`QueryEngine::swap_artifact`] bump
//!   invalidates every cached list without touching the map.
//! * [`proto`] — the length-prefixed, checksummed wire frames of the TCP
//!   front-end, with a typed [`ProtoError`] for every way a frame can be
//!   malformed (decode never panics, never reads out of bounds).
//! * [`net`] — [`NetServer`]: the `std::net` TCP front-end serving the
//!   binary protocol plus an HTTP/1.1 GET shim (`/topk`, `/metrics`),
//!   with bounded-queue backpressure, per-connection deadlines, and
//!   live artifact hot-swap under load.
//! * [`metrics`] — [`WireMetrics`]: per-endpoint latency histograms and
//!   lifecycle counters behind `bns-sync` facade types, rendered as the
//!   `/metrics` text exposition.
//!
//! End-to-end walkthrough: `examples/serve.rs` at the workspace root
//! (train → freeze → reload → serve). Load-generator numbers:
//! `cargo run --release -p bns-bench --bin serve_bench` writes
//! `BENCH_serve.json` (p50/p99 latency, queries/sec, scored items/sec
//! under Zipf-distributed user traffic).
//!
//! ## Determinism contract
//!
//! Serving is **bitwise deterministic given an artifact**: the engine only
//! reads frozen tables through the fixed-summation-order kernel, ties
//! break toward lower item ids (`bns_eval::topk`), and the work-stealing
//! scheduler affects only *which thread* answers a request, never the
//! answer — request coalescing included, because the blocked GEMM emits
//! the same kernel dots as the one-at-a-time path. The only
//! nondeterminism in the subsystem is upstream: hogwild training produces
//! run-dependent tables; freezing any table makes every downstream query
//! of it reproducible. The IVF path is equally deterministic — its
//! answers are a pure function of `(artifact, nprobe)` — but approximate
//! against the exact ranking, which is why it carries a recall@k gate
//! instead of a bitwise one.

pub mod artifact;
pub mod cache;
pub mod engine;
pub mod index;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod query;

pub use artifact::ModelArtifact;
pub use cache::TopKCache;
pub use engine::{RankedList, Request, ServeReport};
pub use index::{IvfConfig, IvfIndex};
pub use metrics::WireMetrics;
pub use net::{NetConfig, NetServer, WireClient};
pub use proto::{ProtoError, RequestFrame, ResponseFrame, Status};
pub use query::{IndexMode, QueryEngine, QueryScratch};

/// Errors produced by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// The buffer does not start with the artifact magic.
    BadMagic {
        /// The magic field actually found.
        found: u32,
    },
    /// The artifact was written by an unknown format version.
    UnsupportedVersion {
        /// The version field actually found.
        found: u32,
    },
    /// The buffer ended before the named field could be read.
    Truncated {
        /// Which field the decoder was reading when the buffer ran out.
        what: &'static str,
    },
    /// The stored checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the artifact tail.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// One payload chunk's stored digest does not match its bytes
    /// (artifact formats v2+ verify the payload in fixed-size chunks).
    ChunkChecksumMismatch {
        /// Index of the failing chunk.
        chunk: usize,
        /// Digest stored in the artifact footer.
        stored: u64,
        /// Digest recomputed over the chunk bytes.
        computed: u64,
    },
    /// A query referenced a user id outside the artifact's id space.
    UnknownUser {
        /// The offending user id.
        user: u32,
        /// Number of users in the artifact.
        n_users: u32,
    },
    /// IVF serving was requested of an artifact that carries no index
    /// (a v2 artifact, or a small-catalog freeze).
    NoIndex,
    /// A structural invariant was violated (shape mismatch, bad CSR, …).
    Invalid(String),
    /// A wire frame failed to decode (network front-end).
    Proto(ProtoError),
    /// I/O failure while reading or writing an artifact file.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadMagic { found } => {
                write!(f, "bad artifact magic 0x{found:08X}")
            }
            ServeError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact version {found}")
            }
            ServeError::Truncated { what } => {
                write!(f, "truncated artifact while reading {what}")
            }
            ServeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored 0x{stored:016X}, computed 0x{computed:016X}"
            ),
            ServeError::ChunkChecksumMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "artifact chunk {chunk} digest mismatch: stored 0x{stored:016X}, \
                 computed 0x{computed:016X}"
            ),
            ServeError::UnknownUser { user, n_users } => {
                write!(f, "user {user} outside artifact id space ({n_users} users)")
            }
            ServeError::NoIndex => {
                write!(f, "artifact carries no IVF index (Exact-only serving)")
            }
            ServeError::Invalid(msg) => write!(f, "invalid artifact: {msg}"),
            ServeError::Proto(e) => write!(f, "wire protocol error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Proto(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
