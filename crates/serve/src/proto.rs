//! The length-prefixed binary wire protocol of the network front-end.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌────────────┬──────────────┬──────────────────────┐
//! │ len: u32LE │ check: u32LE │ payload (len bytes)  │
//! └────────────┴──────────────┴──────────────────────┘
//! ```
//!
//! where `check` is the low 32 bits of the FNV-1a64 digest of the payload.
//! The checksum is not there to defeat an adversary — TCP already
//! guarantees in-order delivery — it is there so that **every single-byte
//! corruption of a valid frame decodes to a typed [`ProtoError`]**, never
//! to a silently different request (the same property the artifact format
//! gets from its chunked digests, pinned the same way: an exhaustive
//! byte-flip + truncation sweep in `crates/serve/tests/proto_sweep.rs`).
//!
//! Request payloads (client → server):
//!
//! ```text
//! TopK:  opcode=0x01  user: u32LE  k: u16LE  flags: u8     (8 bytes)
//! Ping:  opcode=0x02                                       (1 byte)
//! ```
//!
//! `flags` bit 0 is *exclude-seen* (mask the user's training positives);
//! bits 1–2 select the index mode (`00` = server default, `01` = force
//! exact, `10` = force IVF at the artifact's default probe width); all
//! higher bits must be zero — unknown flags are a [`ProtoError::BadFlags`]
//! today so they can become features tomorrow.
//!
//! Response payload (server → client):
//!
//! ```text
//! status: u8  generation: u64LE  n: u16LE  items: n × u32LE
//! ```
//!
//! `generation` is the engine generation the answer was computed against
//! (0 for non-[`Status::Ok`] responses, which carry no items) — the field
//! the swap-under-load suite uses to prove no response ever mixes two
//! artifacts. Decoding is strict in both directions: a count that
//! disagrees with the payload length, a non-empty error response, an
//! unknown status or opcode, and trailing bytes are all typed errors.
//!
//! No wall-clock, no I/O, no allocation beyond the decoded item list:
//! this module is pure bytes → frames, so every path is reachable from
//! the fuzz sweeps.

use std::fmt;

/// Hard cap on a frame's payload length. Large enough for a
/// [`ResponseFrame`] carrying the biggest encodable item list
/// (`u16::MAX` ids), small enough that a hostile length prefix cannot
/// make the server reserve gigabytes.
pub const MAX_PAYLOAD_LEN: usize = 11 + 4 * u16::MAX as usize;

/// Bytes of frame header on the wire: `len: u32LE` + `check: u32LE`.
pub const HEADER_LEN: usize = 8;

/// Opcode of a [`RequestFrame::TopK`] payload.
pub const OP_TOPK: u8 = 0x01;
/// Opcode of a [`RequestFrame::Ping`] payload.
pub const OP_PING: u8 = 0x02;

/// `flags` bit 0: mask the user's frozen training positives.
pub const FLAG_EXCLUDE_SEEN: u8 = 0b0000_0001;
/// `flags` bits 1–2 = `01`: force the exact exhaustive path.
pub const FLAG_MODE_EXACT: u8 = 0b0000_0010;
/// `flags` bits 1–2 = `10`: force the IVF path at the default width.
pub const FLAG_MODE_IVF: u8 = 0b0000_0100;
/// Every bit a valid request may set.
pub const FLAG_MASK: u8 = FLAG_EXCLUDE_SEEN | FLAG_MODE_EXACT | FLAG_MODE_IVF;

/// Typed decode failure. Every malformed byte sequence maps to exactly
/// one of these — the protocol sweeps assert no input panics or reads out
/// of bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before the named field could be read.
    Truncated {
        /// Which field the decoder was reading when the bytes ran out.
        what: &'static str,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The length the prefix claimed.
        len: usize,
    },
    /// The header checksum does not match the payload bytes.
    ChecksumMismatch {
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// A request set flag bits outside [`FLAG_MASK`], or both index-mode
    /// bits at once.
    BadFlags(u8),
    /// The payload length is wrong for its opcode/status (e.g. a TopK
    /// request that is not exactly 8 bytes, or a response whose item
    /// count disagrees with the bytes that follow).
    LengthMismatch {
        /// Bytes the opcode/status dictated.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// A non-`Ok` response carried items (error responses must be empty).
    NonEmptyError {
        /// The status that must not carry items.
        status: u8,
    },
    /// Bytes remained after a complete frame in a strict (`decode_*`)
    /// call.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { what } => write!(f, "truncated frame while reading {what}"),
            ProtoError::Oversized { len } => {
                write!(f, "length prefix {len} exceeds cap {MAX_PAYLOAD_LEN}")
            }
            ProtoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored 0x{stored:08X}, computed 0x{computed:08X}"
            ),
            ProtoError::BadOpcode(op) => write!(f, "unknown request opcode 0x{op:02X}"),
            ProtoError::BadStatus(s) => write!(f, "unknown response status 0x{s:02X}"),
            ProtoError::BadFlags(flags) => write!(f, "invalid request flags 0b{flags:08b}"),
            ProtoError::LengthMismatch { expected, found } => {
                write!(f, "payload length {found}, opcode dictates {expected}")
            }
            ProtoError::NonEmptyError { status } => {
                write!(f, "non-Ok response (status {status}) carried items")
            }
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete frame")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Which retrieval strategy a request asked for (`flags` bits 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModeRequest {
    /// Serve with whatever the engine is configured for.
    #[default]
    Default,
    /// Force the exact exhaustive path.
    Exact,
    /// Force the IVF path at the artifact's default probe width.
    Ivf,
}

/// A decoded client → server frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFrame {
    /// One top-k query.
    TopK {
        /// User id within the served artifact's id space.
        user: u32,
        /// Recommendation-list cutoff.
        k: u16,
        /// Mask the user's frozen training positives.
        exclude_seen: bool,
        /// Requested retrieval strategy.
        mode: ModeRequest,
    },
    /// Liveness probe; answered with [`Status::Pong`].
    Ping,
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was served; the payload carries the ranked items.
    Ok = 0,
    /// The bounded in-flight queue was full; retry after backing off.
    Overloaded = 1,
    /// The requested user id is outside the artifact's id space.
    UnknownUser = 2,
    /// IVF was requested but the served artifact carries no index.
    NoIndex = 3,
    /// The server could not produce an answer within its deadline.
    Timeout = 4,
    /// Answer to [`RequestFrame::Ping`].
    Pong = 5,
    /// The request frame decoded but could not be served as sent
    /// (currently unused on the server; reserved for forward compat).
    BadRequest = 6,
}

impl Status {
    /// Parses a status byte.
    pub fn from_u8(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::UnknownUser,
            3 => Status::NoIndex,
            4 => Status::Timeout,
            5 => Status::Pong,
            6 => Status::BadRequest,
            other => return Err(ProtoError::BadStatus(other)),
        })
    }
}

/// A decoded server → client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Outcome of the request.
    pub status: Status,
    /// Engine generation the answer was computed against; 0 for non-`Ok`
    /// statuses (which carry no items).
    pub generation: u64,
    /// Ranked item ids, best first. Empty unless `status == Ok`.
    pub items: Vec<u32>,
}

/// FNV-1a64 of `bytes`, truncated to the low 32 bits — the frame header
/// checksum. Stand-alone copy so the protocol layer has no dependency on
/// the artifact module's digest helpers (they must stay free to evolve
/// with the artifact format).
pub fn frame_checksum(bytes: &[u8]) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h as u32
}

/// Appends one framed payload (header + bytes) to `out`.
fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_PAYLOAD_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

impl RequestFrame {
    /// Encodes the request as one wire frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(8);
        match *self {
            RequestFrame::TopK {
                user,
                k,
                exclude_seen,
                mode,
            } => {
                payload.push(OP_TOPK);
                payload.extend_from_slice(&user.to_le_bytes());
                payload.extend_from_slice(&k.to_le_bytes());
                let mut flags = 0u8;
                if exclude_seen {
                    flags |= FLAG_EXCLUDE_SEEN;
                }
                flags |= match mode {
                    ModeRequest::Default => 0,
                    ModeRequest::Exact => FLAG_MODE_EXACT,
                    ModeRequest::Ivf => FLAG_MODE_IVF,
                };
                payload.push(flags);
            }
            RequestFrame::Ping => payload.push(OP_PING),
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        put_frame(&mut out, &payload);
        out
    }

    /// Decodes a request from one complete frame's **payload** bytes
    /// (header already stripped and verified).
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let &op = payload
            .first()
            .ok_or(ProtoError::Truncated { what: "opcode" })?;
        match op {
            OP_TOPK => {
                if payload.len() != 8 {
                    return Err(ProtoError::LengthMismatch {
                        expected: 8,
                        found: payload.len(),
                    });
                }
                let user = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
                let k = u16::from_le_bytes(payload[5..7].try_into().expect("2 bytes"));
                let flags = payload[7];
                if flags & !FLAG_MASK != 0
                    || (flags & FLAG_MODE_EXACT != 0 && flags & FLAG_MODE_IVF != 0)
                {
                    return Err(ProtoError::BadFlags(flags));
                }
                let mode = if flags & FLAG_MODE_EXACT != 0 {
                    ModeRequest::Exact
                } else if flags & FLAG_MODE_IVF != 0 {
                    ModeRequest::Ivf
                } else {
                    ModeRequest::Default
                };
                Ok(RequestFrame::TopK {
                    user,
                    k,
                    exclude_seen: flags & FLAG_EXCLUDE_SEEN != 0,
                    mode,
                })
            }
            OP_PING => {
                if payload.len() != 1 {
                    return Err(ProtoError::LengthMismatch {
                        expected: 1,
                        found: payload.len(),
                    });
                }
                Ok(RequestFrame::Ping)
            }
            other => Err(ProtoError::BadOpcode(other)),
        }
    }

    /// Strict whole-buffer decode: `buf` must hold exactly one frame.
    /// The shape the protocol sweeps drive — every truncation is
    /// [`ProtoError::Truncated`], every extension
    /// [`ProtoError::TrailingBytes`].
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        Self::decode_payload(strict_payload(buf)?)
    }
}

impl ResponseFrame {
    /// An `Ok` response carrying `items`, stamped with the artifact
    /// `generation` it was computed against.
    pub fn ok(generation: u64, items: Vec<u32>) -> Self {
        Self {
            status: Status::Ok,
            generation,
            items,
        }
    }

    /// An item-free response for any non-`Ok` outcome.
    pub fn error(status: Status) -> Self {
        debug_assert!(status != Status::Ok);
        Self {
            status,
            generation: 0,
            items: Vec::new(),
        }
    }

    /// Encodes the response as one wire frame (header + payload).
    /// Truncates the item list to `u16::MAX` entries (unreachable through
    /// the engine: `k` arrives as a `u16`).
    pub fn encode(&self) -> Vec<u8> {
        let n = self.items.len().min(u16::MAX as usize);
        let mut payload = Vec::with_capacity(11 + 4 * n);
        payload.push(self.status as u8);
        payload.extend_from_slice(&self.generation.to_le_bytes());
        payload.extend_from_slice(&(n as u16).to_le_bytes());
        for &item in &self.items[..n] {
            payload.extend_from_slice(&item.to_le_bytes());
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        put_frame(&mut out, &payload);
        out
    }

    /// Decodes a response from one complete frame's **payload** bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let &status = payload
            .first()
            .ok_or(ProtoError::Truncated { what: "status" })?;
        let status = Status::from_u8(status)?;
        if payload.len() < 11 {
            return Err(ProtoError::Truncated {
                what: "response header",
            });
        }
        let generation = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let n = u16::from_le_bytes(payload[9..11].try_into().expect("2 bytes")) as usize;
        let expected = 11 + 4 * n;
        if payload.len() != expected {
            return Err(ProtoError::LengthMismatch {
                expected,
                found: payload.len(),
            });
        }
        if status != Status::Ok && n != 0 {
            return Err(ProtoError::NonEmptyError {
                status: status as u8,
            });
        }
        let items = payload[11..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(Self {
            status,
            generation,
            items,
        })
    }

    /// Strict whole-buffer decode; see [`RequestFrame::decode`].
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        Self::decode_payload(strict_payload(buf)?)
    }
}

/// What an incremental frame read yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameHeader {
    /// Fewer than [`HEADER_LEN`] bytes so far; read more.
    NeedHeader,
    /// Header complete: the payload is `len` bytes, to be verified
    /// against `check` once fully read.
    Payload {
        /// Payload length the prefix declared (already bounds-checked).
        len: usize,
        /// Checksum the header declared.
        check: u32,
    },
}

/// Parses a frame header from the first bytes of `buf`. Returns
/// [`FrameHeader::NeedHeader`] while fewer than [`HEADER_LEN`] bytes are
/// available; rejects oversized length prefixes **before** any payload is
/// read — the server drops such connections without buffering a byte of
/// the claimed payload.
pub fn parse_header(buf: &[u8]) -> Result<FrameHeader, ProtoError> {
    if buf.len() < HEADER_LEN {
        return Ok(FrameHeader::NeedHeader);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(ProtoError::Oversized { len });
    }
    let check = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    Ok(FrameHeader::Payload { len, check })
}

/// Verifies a fully-read payload against its header checksum.
pub fn verify_payload(check: u32, payload: &[u8]) -> Result<(), ProtoError> {
    let computed = frame_checksum(payload);
    if computed != check {
        return Err(ProtoError::ChecksumMismatch {
            stored: check,
            computed,
        });
    }
    Ok(())
}

/// Strict one-frame view: header parsed, length exact, checksum verified.
fn strict_payload(buf: &[u8]) -> Result<&[u8], ProtoError> {
    let (len, check) = match parse_header(buf)? {
        FrameHeader::NeedHeader => {
            return Err(ProtoError::Truncated {
                what: "frame header",
            })
        }
        FrameHeader::Payload { len, check } => (len, check),
    };
    let body = &buf[HEADER_LEN..];
    if body.len() < len {
        return Err(ProtoError::Truncated { what: "payload" });
    }
    if body.len() > len {
        return Err(ProtoError::TrailingBytes {
            extra: body.len() - len,
        });
    }
    verify_payload(check, body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_round_trips() {
        let req = RequestFrame::TopK {
            user: 42,
            k: 10,
            exclude_seen: true,
            mode: ModeRequest::Ivf,
        };
        let buf = req.encode();
        assert_eq!(RequestFrame::decode(&buf).unwrap(), req);
    }

    #[test]
    fn ping_and_pong_round_trip() {
        let buf = RequestFrame::Ping.encode();
        assert_eq!(RequestFrame::decode(&buf).unwrap(), RequestFrame::Ping);
        let pong = ResponseFrame::error(Status::Pong);
        assert_eq!(ResponseFrame::decode(&pong.encode()).unwrap(), pong);
    }

    #[test]
    fn ok_response_round_trips_with_items() {
        let resp = ResponseFrame::ok(7, vec![3, 1, 4, 1, 5]);
        let buf = resp.encode();
        assert_eq!(ResponseFrame::decode(&buf).unwrap(), resp);
    }

    #[test]
    fn unknown_opcode_and_status_are_typed() {
        let mut buf = RequestFrame::Ping.encode();
        buf[HEADER_LEN] = 0x7F;
        // Restamp so the opcode check is reached behind the checksum.
        let check = frame_checksum(&buf[HEADER_LEN..]);
        buf[4..8].copy_from_slice(&check.to_le_bytes());
        assert_eq!(RequestFrame::decode(&buf), Err(ProtoError::BadOpcode(0x7F)));

        let mut buf = ResponseFrame::error(Status::Pong).encode();
        buf[HEADER_LEN] = 0xEE;
        let check = frame_checksum(&buf[HEADER_LEN..]);
        buf[4..8].copy_from_slice(&check.to_le_bytes());
        assert_eq!(
            ResponseFrame::decode(&buf),
            Err(ProtoError::BadStatus(0xEE))
        );
    }

    #[test]
    fn bad_flags_are_typed() {
        for flags in [0b1000_0000u8, FLAG_MODE_EXACT | FLAG_MODE_IVF] {
            let mut payload = vec![OP_TOPK];
            payload.extend_from_slice(&1u32.to_le_bytes());
            payload.extend_from_slice(&5u16.to_le_bytes());
            payload.push(flags);
            assert_eq!(
                RequestFrame::decode_payload(&payload),
                Err(ProtoError::BadFlags(flags))
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_PAYLOAD_LEN as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            parse_header(&buf),
            Err(ProtoError::Oversized {
                len: MAX_PAYLOAD_LEN + 1
            })
        );
    }

    #[test]
    fn error_responses_must_be_empty() {
        // Hand-craft an Overloaded response claiming one item.
        let mut payload = vec![Status::Overloaded as u8];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            ResponseFrame::decode_payload(&payload),
            Err(ProtoError::NonEmptyError {
                status: Status::Overloaded as u8
            })
        );
    }

    #[test]
    fn strict_decode_flags_trailing_bytes() {
        let mut buf = RequestFrame::Ping.encode();
        buf.push(0);
        assert_eq!(
            RequestFrame::decode(&buf),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn incremental_header_reports_need_more() {
        let buf = RequestFrame::Ping.encode();
        for cut in 0..HEADER_LEN {
            assert_eq!(parse_header(&buf[..cut]).unwrap(), FrameHeader::NeedHeader);
        }
        assert!(matches!(
            parse_header(&buf).unwrap(),
            FrameHeader::Payload { len: 1, .. }
        ));
    }
}
