//! Steady-state allocation audit of the query hot path — the serving
//! counterpart of the repo-root `tests/sampler_alloc.rs` discipline.
//!
//! After one warm-up query per user (which grows the score vector, the
//! top-k selection buffer and the output list to capacity), repeated
//! [`QueryEngine::top_k_into`] calls must not touch the heap: a counting
//! global allocator (this test binary only) asserts the allocation
//! counter stays flat across thousands of subsequent queries, mixed over
//! users, cutoffs and mask settings.

use bns_data::Interactions;
use bns_model::MatrixFactorization;
use bns_serve::{IndexMode, IvfConfig, ModelArtifact, QueryEngine, QueryScratch, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

include!("../../../tests/support/counting_alloc.rs");

fn engine() -> QueryEngine {
    let n_users = 24u32;
    let n_items = 120u32;
    let mut pairs = Vec::new();
    for u in 0..n_users {
        for k in 0..5u32 {
            pairs.push((u, (u * 11 + k * 7) % n_items));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let model = MatrixFactorization::new(n_users, n_items, 16, 0.1, &mut rng).unwrap();
    QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
}

/// The same engine, but served out of an mmap-backed artifact file — the
/// zero-copy path must be exactly as allocation-free as the owned one.
fn mapped_engine() -> QueryEngine {
    let n_users = 24u32;
    let n_items = 120u32;
    let mut pairs = Vec::new();
    for u in 0..n_users {
        for k in 0..5u32 {
            pairs.push((u, (u * 11 + k * 7) % n_items));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let model = MatrixFactorization::new(n_users, n_items, 16, 0.1, &mut rng).unwrap();
    let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
    let path = std::env::temp_dir().join(format!("bns_query_alloc_{}.bnsa", std::process::id()));
    artifact.save(&path).unwrap();
    let mapped = ModelArtifact::load_mapped(&path).unwrap();
    // The mapping outlives the unlink on unix; clean up eagerly.
    std::fs::remove_file(&path).ok();
    #[cfg(all(unix, target_endian = "little"))]
    assert!(mapped.is_mapped(), "mapped load fell back to owned decode");
    QueryEngine::new(mapped)
}

#[test]
fn top_k_into_is_allocation_free_in_steady_state() {
    let engine = engine();
    let n_users = 24u32;
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();

    // Warm-up: touch every user at the largest cutoff used below so every
    // buffer reaches its steady-state capacity.
    for u in 0..n_users {
        engine
            .top_k_into(u, 20, true, &mut scratch, &mut out)
            .unwrap();
        engine
            .top_k_into(u, 20, false, &mut scratch, &mut out)
            .unwrap();
    }

    let before = allocation_count();
    for round in 0..200usize {
        for u in 0..n_users {
            let k = [5, 10, 20][round % 3];
            let exclude = round % 2 == 0;
            engine
                .top_k_into(u, k, exclude, &mut scratch, &mut out)
                .unwrap();
            assert!(out.len() <= k);
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "query hot path allocated {} times across 4800 steady-state queries",
        after - before
    );
}

#[test]
fn top_k_into_over_mapped_storage_is_allocation_free_in_steady_state() {
    let engine = mapped_engine();
    let n_users = 24u32;
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();

    for u in 0..n_users {
        engine
            .top_k_into(u, 20, true, &mut scratch, &mut out)
            .unwrap();
        engine
            .top_k_into(u, 20, false, &mut scratch, &mut out)
            .unwrap();
    }

    let before = allocation_count();
    for round in 0..200usize {
        for u in 0..n_users {
            let k = [5, 10, 20][round % 3];
            let exclude = round % 2 == 0;
            engine
                .top_k_into(u, k, exclude, &mut scratch, &mut out)
                .unwrap();
            assert!(out.len() <= k);
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "mapped query hot path allocated {} times across 4800 steady-state queries",
        after - before
    );
}

/// The engine fixture frozen with a forced IVF index and switched to
/// probe mode.
fn ivf_engine() -> QueryEngine {
    let n_users = 24u32;
    let n_items = 120u32;
    let mut pairs = Vec::new();
    for u in 0..n_users {
        for k in 0..5u32 {
            pairs.push((u, (u * 11 + k * 7) % n_items));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let model = MatrixFactorization::new(n_users, n_items, 16, 0.1, &mut rng).unwrap();
    let artifact = ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default())).unwrap();
    let nprobe = artifact.index().unwrap().default_nprobe();
    QueryEngine::with_index_mode(artifact, IndexMode::Ivf { nprobe }).unwrap()
}

#[test]
fn ivf_top_k_into_is_allocation_free_in_steady_state() {
    let engine = ivf_engine();
    let n_users = 24u32;
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();

    // Warm-up grows the cluster-score vector, probe list, candidate
    // buffer and selection scratch to the index's steady-state sizes.
    for u in 0..n_users {
        engine
            .top_k_into(u, 20, true, &mut scratch, &mut out)
            .unwrap();
        engine
            .top_k_into(u, 20, false, &mut scratch, &mut out)
            .unwrap();
    }

    let before = allocation_count();
    for round in 0..200usize {
        for u in 0..n_users {
            let k = [5, 10, 20][round % 3];
            let exclude = round % 2 == 0;
            engine
                .top_k_into(u, k, exclude, &mut scratch, &mut out)
                .unwrap();
            assert!(out.len() <= k);
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "IVF query hot path allocated {} times across 4800 steady-state queries",
        after - before
    );
}

#[test]
fn top_k_batch_into_is_allocation_free_in_steady_state() {
    // Both retrieval modes of the coalesced entry point: the blocked GEMM
    // scratch (user block, tile scores, per-request selectors and mask
    // cursors) and the per-request IVF probe reuse must all be warm after
    // one pass.
    for engine in [engine(), ivf_engine()] {
        let requests: Vec<Request> = (0..16u32)
            .map(|i| Request {
                user: (i * 5) % 24,
                k: 10 + (i as usize % 8),
                exclude_seen: i % 2 == 0,
            })
            .collect();
        let mut scratch = QueryScratch::new();
        let mut outs: Vec<Vec<u32>> = (0..requests.len()).map(|_| Vec::new()).collect();

        for _ in 0..2 {
            engine
                .top_k_batch_into(&requests, &mut scratch, &mut outs)
                .unwrap();
        }

        let before = allocation_count();
        for _ in 0..500usize {
            engine
                .top_k_batch_into(&requests, &mut scratch, &mut outs)
                .unwrap();
        }
        let after = allocation_count();
        assert_eq!(
            after - before,
            0,
            "batched hot path ({:?}) allocated {} times across 500 steady-state batches",
            engine.index_mode(),
            after - before
        );
    }
}
