//! Hot-swap under live socket load: N concurrent loopback clients hammer
//! the server while a swap thread repeatedly replaces the served
//! artifact. The contract: **zero** connection errors, and every single
//! response is bitwise consistent with exactly one artifact generation —
//! the generation the response itself is stamped with.

use bns_data::Interactions;
use bns_model::MatrixFactorization;
use bns_serve::proto::ModeRequest;
use bns_serve::{
    ModelArtifact, NetConfig, NetServer, QueryEngine, QueryScratch, Status, WireClient,
};
use bns_sync::PoisonFlag;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Duration;

const N_USERS: u32 = 8;
const N_ITEMS: u32 = 24;
const K: u16 = 6;
const N_ARTIFACTS: usize = 4;
const N_SWAPS: usize = 16;
const N_CLIENTS: usize = 4;

fn artifact(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = MatrixFactorization::new(N_USERS, N_ITEMS, 8, 0.1, &mut rng).unwrap();
    let seen = Interactions::from_pairs(
        N_USERS,
        N_ITEMS,
        &[(0, 0), (1, 5), (2, 9), (3, 13), (7, 23)],
    )
    .unwrap();
    ModelArtifact::freeze(&model, &seen).unwrap()
}

/// The reference answer for `(artifact, user)`, computed offline through
/// the same engine path the server uses.
fn expected_lists(artifacts: &[ModelArtifact]) -> Vec<Vec<Vec<u32>>> {
    let mut scratch = QueryScratch::new();
    artifacts
        .iter()
        .map(|a| {
            let engine = QueryEngine::new(a.clone());
            (0..N_USERS)
                .map(|user| {
                    let mut out = Vec::new();
                    engine
                        .top_k_into(user, K as usize, false, &mut scratch, &mut out)
                        .unwrap();
                    out
                })
                .collect()
        })
        .collect()
}

#[test]
fn hot_swap_under_live_load_never_drops_or_mixes_generations() {
    let artifacts: Vec<ModelArtifact> =
        (0..N_ARTIFACTS as u64).map(|s| artifact(100 + s)).collect();
    let expected = expected_lists(&artifacts);

    let server = NetServer::bind(
        "127.0.0.1:0",
        QueryEngine::new(artifacts[0].clone()),
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Anchor the generation → artifact mapping with one probe request.
    let mut probe = WireClient::connect(addr).unwrap();
    let first = probe.top_k(0, K, false, ModeRequest::Default).unwrap();
    assert_eq!(first.status, Status::Ok);
    let gen0 = first.generation;
    assert_eq!(first.items, expected[0][0]);

    let stop = PoisonFlag::new();
    let results: Vec<(u64, BTreeSet<u64>)> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..N_CLIENTS)
            .map(|c| {
                let stop = &stop;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr).unwrap();
                    let mut served = 0u64;
                    let mut generations = BTreeSet::new();
                    let mut i = c as u32;
                    while !stop.is_set() {
                        let user = i % N_USERS;
                        let resp = client
                            .top_k(user, K, false, ModeRequest::Default)
                            .unwrap_or_else(|e| panic!("client {c} request {served}: {e}"));
                        assert_eq!(resp.status, Status::Ok, "client {c} request {served}");
                        // The response's own generation stamp names the
                        // artifact it must match — bit for bit.
                        let idx = usize::try_from(resp.generation - gen0).unwrap() % N_ARTIFACTS;
                        assert_eq!(
                            resp.items, expected[idx][user as usize],
                            "client {c}: generation {} answered with items from \
                             a different artifact",
                            resp.generation
                        );
                        generations.insert(resp.generation);
                        served += 1;
                        i = i.wrapping_add(1);
                    }
                    (served, generations)
                })
            })
            .collect();

        // The swap thread cycles the artifacts under the clients' feet.
        for s in 0..N_SWAPS {
            std::thread::sleep(Duration::from_millis(30));
            let next = artifacts[(s + 1) % N_ARTIFACTS].clone();
            let _old = server.swap_artifact(next);
        }
        std::thread::sleep(Duration::from_millis(50));
        stop.set();
        clients.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total: u64 = results.iter().map(|(n, _)| n).sum();
    let mut generations = BTreeSet::new();
    for (_, g) in &results {
        generations.extend(g.iter().copied());
    }
    assert_eq!(server.metrics().artifact_swaps.get(), N_SWAPS as u64);
    assert!(
        total >= 40,
        "only {total} responses across {N_CLIENTS} clients — not a load test"
    );
    assert!(
        generations.len() >= 3,
        "observed generations {generations:?} — the swaps did not interleave with traffic"
    );
}

/// Same contract with the LRU cache enabled: the generation stamp in the
/// cache key means a hit can never serve a pre-swap list as post-swap.
#[test]
fn hot_swap_with_cache_is_still_generation_consistent() {
    let artifacts: Vec<ModelArtifact> = (0..2u64).map(|s| artifact(200 + s)).collect();
    let expected = expected_lists(&artifacts);
    let server = NetServer::bind(
        "127.0.0.1:0",
        QueryEngine::with_cache(artifacts[0].clone(), 64),
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let gen0 = client
        .top_k(0, K, false, ModeRequest::Default)
        .unwrap()
        .generation;
    for round in 0..6u64 {
        let idx = (round % 2) as usize;
        for user in 0..N_USERS {
            // Twice per user: the second answer is a cache hit.
            for _ in 0..2 {
                let resp = client.top_k(user, K, false, ModeRequest::Default).unwrap();
                assert_eq!(resp.status, Status::Ok);
                assert_eq!(resp.generation, gen0 + round);
                assert_eq!(resp.items, expected[idx][user as usize], "round {round}");
            }
        }
        server.swap_artifact(artifacts[(idx + 1) % 2].clone());
    }
}
