//! Fault injection against the TCP front-end: slow-loris frames,
//! half-open connections, mid-frame disconnects, and hostile length
//! prefixes. The server must reap each offender on its configured
//! deadline, keep serving other connections with bounded latency, and
//! leak neither file descriptors nor threads across connection churn.

use bns_data::Interactions;
use bns_model::MatrixFactorization;
use bns_serve::proto::{ModeRequest, RequestFrame};
use bns_serve::{ModelArtifact, NetConfig, NetServer, QueryEngine, Status, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn engine() -> QueryEngine {
    let mut rng = StdRng::seed_from_u64(11);
    let model = MatrixFactorization::new(8, 16, 8, 0.1, &mut rng).unwrap();
    let seen = Interactions::from_pairs(8, 16, &[(0, 0), (1, 5), (2, 9), (7, 15)]).unwrap();
    QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
}

/// Short deadlines so every fault resolves within a test-sized budget.
fn fault_cfg() -> NetConfig {
    NetConfig {
        workers: 2,
        read_timeout: Duration::from_millis(150),
        idle_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

/// Reads until EOF/error with a bounded socket timeout; returns how long
/// the peer took to close us.
fn wait_for_close(stream: &mut TcpStream, budget: Duration) -> Duration {
    let start = Instant::now();
    stream.set_read_timeout(Some(budget)).unwrap();
    let mut sink = [0u8; 256];
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => return start.elapsed(),
            Ok(_) => {
                assert!(
                    start.elapsed() < budget,
                    "peer kept the connection alive past {budget:?}"
                );
            }
        }
    }
}

/// Polls `pred` until it holds or `budget` expires.
fn eventually(budget: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < budget {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    pred()
}

#[test]
fn slow_loris_is_reaped_and_other_connections_stay_fast() {
    let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
    let addr = server.local_addr();

    // The loris dribbles a valid frame one byte at a time, far slower
    // than `read_timeout` allows for the whole frame.
    let frame = RequestFrame::TopK {
        user: 0,
        k: 5,
        exclude_seen: false,
        mode: ModeRequest::Default,
    }
    .encode();
    let mut loris = TcpStream::connect(addr).unwrap();
    let loris_thread = std::thread::spawn(move || {
        for &b in &frame {
            if loris.write_all(&[b]).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(60));
        }
        wait_for_close(&mut loris, Duration::from_secs(5))
    });

    // A healthy client keeps getting answers with bounded latency while
    // the loris is mid-attack.
    let mut healthy = WireClient::connect(addr).unwrap();
    for i in 0..20u32 {
        let start = Instant::now();
        let resp = healthy
            .top_k(i % 8, 5, false, ModeRequest::Default)
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "healthy request {i} took {:?} during slow-loris",
            start.elapsed()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let closed_after = loris_thread.join().unwrap();
    assert!(
        closed_after < Duration::from_secs(5),
        "loris connection survived {closed_after:?}"
    );
    assert!(server.metrics().deadline_hits.get() >= 1);
}

#[test]
fn half_open_connection_is_reaped_on_idle_timeout() {
    let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
    let mut idle = TcpStream::connect(server.local_addr()).unwrap();
    // Send nothing at all; the server must hang up on its own.
    let closed_after = wait_for_close(&mut idle, Duration::from_secs(5));
    assert!(
        closed_after < Duration::from_secs(3),
        "half-open connection survived {closed_after:?}"
    );
    assert!(eventually(Duration::from_secs(2), || {
        server.metrics().deadline_hits.get() >= 1 && server.metrics().connections_closed.get() >= 1
    }));
}

#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
    let addr = server.local_addr();
    let frame = RequestFrame::TopK {
        user: 1,
        k: 4,
        exclude_seen: true,
        mode: ModeRequest::Default,
    }
    .encode();
    for cut in 1..frame.len() {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&frame[..cut]).unwrap();
        drop(s); // vanish mid-frame
    }
    // Every abandoned connection is eventually torn down…
    assert!(
        eventually(Duration::from_secs(5), || {
            server.metrics().connections_closed.get() >= (frame.len() - 1) as u64
        }),
        "only {} of {} abandoned connections reaped",
        server.metrics().connections_closed.get(),
        frame.len() - 1
    );
    // …and the server still answers.
    let mut client = WireClient::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap().status, Status::Pong);
    assert_eq!(
        client
            .top_k(1, 4, true, ModeRequest::Default)
            .unwrap()
            .status,
        Status::Ok
    );
}

#[test]
fn oversized_length_prefix_is_dropped_without_buffering() {
    let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
    let addr = server.local_addr();
    for claimed in [bns_serve::proto::MAX_PAYLOAD_LEN as u32 + 1, u32::MAX] {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = claimed.to_le_bytes().to_vec();
        header.extend_from_slice(&0u32.to_le_bytes());
        s.write_all(&header).unwrap();
        // The server must hang up on the header alone — it never waits
        // for (or allocates) the claimed multi-gigabyte payload.
        let closed_after = wait_for_close(&mut s, Duration::from_secs(5));
        assert!(
            closed_after < Duration::from_secs(2),
            "oversized prefix survived {closed_after:?}"
        );
    }
    assert!(server.metrics().proto_errors.get() >= 2);
    // Unrelated traffic is unaffected.
    let mut client = WireClient::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap().status, Status::Pong);
}

#[test]
fn corrupted_frame_closes_only_its_own_connection() {
    let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
    let addr = server.local_addr();
    let mut good = WireClient::connect(addr).unwrap();
    assert_eq!(good.ping().unwrap().status, Status::Pong);

    let mut frame = RequestFrame::Ping.encode();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF; // checksum now wrong
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(&frame).unwrap();
    let closed_after = wait_for_close(&mut bad, Duration::from_secs(5));
    assert!(closed_after < Duration::from_secs(2));
    assert!(eventually(Duration::from_secs(2), || {
        server.metrics().proto_errors.get() >= 1
    }));

    // The well-behaved connection survives the neighbor's corruption.
    assert_eq!(good.ping().unwrap().status, Status::Pong);
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn connection_churn_leaks_no_fds_or_threads() {
    if !std::path::Path::new("/proc/self/fd").exists() {
        return; // /proc-less platform; the other suites still cover reaping
    }
    // Warm up allocator/runtime fds before taking the baseline.
    {
        let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        let _ = c.ping();
    }
    let fd_base = fd_count();
    let thread_base = thread_count();
    {
        let server = NetServer::bind("127.0.0.1:0", engine(), fault_cfg()).unwrap();
        let addr = server.local_addr();
        for round in 0..30u32 {
            match round % 3 {
                // Clean request/response.
                0 => {
                    let mut c = WireClient::connect(addr).unwrap();
                    let _ = c.top_k(round % 8, 3, false, ModeRequest::Default);
                }
                // Mid-frame disconnect.
                1 => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    let _ = s.write_all(&[1, 0, 0]);
                }
                // Corrupted frame.
                _ => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    let mut f = RequestFrame::Ping.encode();
                    f[4] ^= 0xFF;
                    let _ = s.write_all(&f);
                }
            }
        }
        // Dropping the server joins the accept thread, every connection
        // thread, and the worker pool.
    }
    assert!(
        eventually(Duration::from_secs(10), || fd_count() <= fd_base + 2),
        "fd leak: baseline {fd_base}, now {}",
        fd_count()
    );
    assert!(
        eventually(Duration::from_secs(10), || {
            thread_count() <= thread_base + 2
        }),
        "thread leak: baseline {thread_base}, now {}",
        thread_count()
    );
}
