//! Artifact integrity suite: every corruption class is rejected with the
//! right **typed** error, and save → load → score is bitwise identical to
//! the live model for all three freezable scorers.

use bns_data::Interactions;
use bns_model::{HogwildMf, LightGcn, MatrixFactorization, Scorer, SnapshotKind, SnapshotScorer};
use bns_serve::artifact::{fnv1a64, MAGIC, VERSION};
use bns_serve::{ModelArtifact, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (MatrixFactorization, Interactions) {
    let mut rng = StdRng::seed_from_u64(99);
    let model = MatrixFactorization::new(5, 9, 8, 0.1, &mut rng).unwrap();
    let seen = Interactions::from_pairs(
        5,
        9,
        &[(0, 0), (0, 4), (1, 2), (2, 8), (3, 1), (3, 7), (4, 5)],
    )
    .unwrap();
    (model, seen)
}

fn encoded() -> Vec<u8> {
    let (model, seen) = fixture();
    ModelArtifact::freeze(&model, &seen)
        .unwrap()
        .encode()
        .to_vec()
}

/// Re-stamps the trailing checksum after a deliberate mutation, so tests
/// can reach the validation layers *behind* the checksum.
fn restamp(buf: &mut [u8]) {
    let n = buf.len();
    let sum = fnv1a64(&buf[..n - 8]);
    buf[n - 8..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn bad_magic_is_typed() {
    let mut buf = encoded();
    buf[0] ^= 0xFF;
    restamp(&mut buf);
    match ModelArtifact::decode(&buf) {
        Err(ServeError::BadMagic { found }) => assert_ne!(found, MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_typed() {
    let mut buf = encoded();
    buf[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
    restamp(&mut buf);
    match ModelArtifact::decode(&buf) {
        Err(ServeError::UnsupportedVersion { found }) => assert_eq!(found, VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_snapshot_kind_is_rejected() {
    let mut buf = encoded();
    buf[8..12].copy_from_slice(&7u32.to_le_bytes());
    restamp(&mut buf);
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::Invalid(_))
    ));
}

#[test]
fn every_single_byte_flip_is_rejected() {
    // Without re-stamping, any payload flip must trip the checksum (and
    // header flips their own typed error); a tail flip corrupts the
    // stored checksum itself.
    let buf = encoded();
    for pos in 0..buf.len() {
        let mut corrupt = buf.clone();
        corrupt[pos] ^= 0x01;
        assert!(
            ModelArtifact::decode(&corrupt).is_err(),
            "flip at byte {pos} was accepted"
        );
    }
}

#[test]
fn truncation_at_every_length_is_rejected() {
    let buf = encoded();
    for cut in 0..buf.len() {
        let err = ModelArtifact::decode(&buf[..cut]).expect_err("truncation accepted");
        assert!(
            matches!(
                err,
                ServeError::Truncated { .. } | ServeError::ChecksumMismatch { .. }
            ),
            "cut at {cut} gave unexpected error {err:?}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut buf = encoded();
    buf.push(0);
    assert!(ModelArtifact::decode(&buf).is_err());
}

#[test]
fn payload_corruption_reports_checksum_mismatch() {
    let mut buf = encoded();
    let mid = buf.len() / 2;
    buf[mid] ^= 0x40;
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::ChecksumMismatch { .. })
    ));
}

#[test]
fn corrupted_seen_csr_behind_a_valid_checksum_is_rejected() {
    // Flip the last item id of the embedded CSR out of range and re-stamp:
    // the checksum passes, the CSR re-validation must still refuse it.
    let mut buf = encoded();
    let n = buf.len();
    // Last 4 CSR bytes sit just before the 8-byte checksum tail.
    buf[n - 12..n - 8].copy_from_slice(&10_000u32.to_le_bytes());
    restamp(&mut buf);
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::Invalid(_))
    ));
}

#[test]
fn load_of_missing_file_is_io() {
    let path = std::env::temp_dir().join("bns_artifact_definitely_missing.bnsa");
    assert!(matches!(ModelArtifact::load(&path), Err(ServeError::Io(_))));
}

#[test]
fn hogwild_freeze_round_trips_bitwise() {
    let (mf, seen) = fixture();
    let hog = HogwildMf::from_mf(&mf);
    let artifact = ModelArtifact::freeze(&hog, &seen).unwrap();
    assert_eq!(artifact.kind(), SnapshotKind::HogwildMf);
    let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
    for u in 0..5u32 {
        for i in 0..9u32 {
            assert_eq!(reloaded.score(u, i).to_bits(), hog.score(u, i).to_bits());
        }
    }
}

#[test]
fn lightgcn_freeze_round_trips_bitwise() {
    let (_, seen) = fixture();
    let mut rng = StdRng::seed_from_u64(123);
    let gcn = LightGcn::new(&seen, 8, 2, 0.1, &mut rng).unwrap();
    let artifact = ModelArtifact::freeze(&gcn, &seen).unwrap();
    assert_eq!(artifact.kind(), SnapshotKind::LightGcnPropagated);
    let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
    let mut live = vec![0.0f32; 9];
    let mut frozen = vec![0.0f32; 9];
    for u in 0..5u32 {
        gcn.score_all(u, &mut live);
        reloaded.score_all(u, &mut frozen);
        for i in 0..9 {
            assert_eq!(frozen[i].to_bits(), live[i].to_bits());
        }
    }
}

proptest! {
    /// The acceptance property of the artifact format: for any model shape
    /// and seed, and any of the three freezable scorers, encode → decode →
    /// `score_items` reproduces the live model's scores bit for bit.
    #[test]
    fn save_load_score_items_is_bitwise_for_all_scorers(
        n_users in 2u32..8,
        n_items in 3u32..16,
        dim in 1usize..12,
        seed in 0u64..200,
        kind in 0u32..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(u32, u32)> = (0..n_users)
            .flat_map(|u| {
                let a = (u * 7 + seed as u32) % n_items;
                let b = (u * 3 + 1) % n_items;
                [(u, a), (u, b)]
            })
            .collect();
        let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
        let mf = MatrixFactorization::new(n_users, n_items, dim, 0.1, &mut rng).unwrap();
        let hog;
        let gcn;
        let live: &dyn SnapshotScorer = match kind {
            0 => &mf,
            1 => {
                hog = HogwildMf::from_mf(&mf);
                &hog
            }
            _ => {
                gcn = LightGcn::new(&seen, dim, 1, 0.1, &mut rng).unwrap();
                &gcn
            }
        };
        let artifact = ModelArtifact::freeze(live, &seen).unwrap();
        let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();

        let ids: Vec<u32> = (0..n_items).collect();
        let mut live_scores = vec![0.0f32; n_items as usize];
        let mut frozen_scores = vec![0.0f32; n_items as usize];
        for u in 0..n_users {
            live.score_items(u, &ids, &mut live_scores);
            reloaded.score_items(u, &ids, &mut frozen_scores);
            for i in 0..n_items as usize {
                prop_assert_eq!(frozen_scores[i].to_bits(), live_scores[i].to_bits());
            }
        }
    }
}
