//! Artifact integrity suite: every corruption class is rejected with the
//! right **typed** error — through the buffered *and* the mmap-backed
//! zero-copy load path — and save → load → score is bitwise identical to
//! the live model for all three freezable scorers.

use bns_data::Interactions;
use bns_model::{HogwildMf, LightGcn, MatrixFactorization, Scorer, SnapshotKind, SnapshotScorer};
use bns_serve::artifact::{fnv1a64, fnv1a64_words, MAGIC, VERSION};
use bns_serve::{IndexMode, IvfConfig, ModelArtifact, QueryEngine, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (MatrixFactorization, Interactions) {
    let mut rng = StdRng::seed_from_u64(99);
    let model = MatrixFactorization::new(5, 9, 8, 0.1, &mut rng).unwrap();
    let seen = Interactions::from_pairs(
        5,
        9,
        &[(0, 0), (0, 4), (1, 2), (2, 8), (3, 1), (3, 7), (4, 5)],
    )
    .unwrap();
    (model, seen)
}

fn encoded() -> Vec<u8> {
    let (model, seen) = fixture();
    ModelArtifact::freeze(&model, &seen)
        .unwrap()
        .encode()
        .to_vec()
}

/// A fixture big enough to carry a forced IVF index but small enough for
/// exhaustive byte-flip sweeps over the full encoding.
fn indexed_fixture() -> (MatrixFactorization, Interactions) {
    let mut rng = StdRng::seed_from_u64(101);
    let model = MatrixFactorization::new(5, 40, 4, 0.1, &mut rng).unwrap();
    let pairs: Vec<(u32, u32)> = (0..5u32).flat_map(|u| [(u, u), (u, u + 11)]).collect();
    let seen = Interactions::from_pairs(5, 40, &pairs).unwrap();
    (model, seen)
}

fn encoded_indexed() -> Vec<u8> {
    let (model, seen) = indexed_fixture();
    ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default()))
        .unwrap()
        .encode()
        .to_vec()
}

/// Footer length in bytes, read from the artifact's own footer fields.
fn footer_len(buf: &[u8]) -> usize {
    let n = buf.len();
    let n_chunks = u64::from_le_bytes(buf[n - 16..n - 8].try_into().unwrap()) as usize;
    24 + 8 * n_chunks
}

/// Re-stamps the v2 chunked footer (per-chunk digests + footer checksum)
/// after a deliberate payload mutation, so tests can reach the validation
/// layers *behind* the checksums.
fn restamp(buf: &mut [u8]) {
    let n = buf.len();
    let n_chunks = u64::from_le_bytes(buf[n - 16..n - 8].try_into().unwrap()) as usize;
    let chunk_size = u64::from_le_bytes(buf[n - 24..n - 16].try_into().unwrap()) as usize;
    let digest_start = n - 24 - 8 * n_chunks;
    for (idx, at) in (0..n_chunks).map(|i| (i, digest_start + 8 * i)) {
        let lo = idx * chunk_size;
        let hi = (lo + chunk_size).min(digest_start);
        let digest = fnv1a64_words(&buf[lo..hi]);
        buf[at..at + 8].copy_from_slice(&digest.to_le_bytes());
    }
    let footer_sum = fnv1a64_words(&buf[digest_start..n - 8]);
    buf[n - 8..].copy_from_slice(&footer_sum.to_le_bytes());
}

/// Round-trips `buf` through a temp file and the mmap-backed load path.
fn load_mapped_bytes(buf: &[u8], tag: &str) -> Result<ModelArtifact, ServeError> {
    let path =
        std::env::temp_dir().join(format!("bns_integrity_{tag}_{}.bnsa", std::process::id()));
    std::fs::write(&path, buf).unwrap();
    let out = ModelArtifact::load_mapped(&path);
    std::fs::remove_file(&path).ok();
    out
}

#[test]
fn bad_magic_is_typed() {
    let mut buf = encoded();
    buf[0] ^= 0xFF;
    restamp(&mut buf);
    match ModelArtifact::decode(&buf) {
        Err(ServeError::BadMagic { found }) => assert_ne!(found, MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_typed() {
    let mut buf = encoded();
    buf[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
    restamp(&mut buf);
    match ModelArtifact::decode(&buf) {
        Err(ServeError::UnsupportedVersion { found }) => assert_eq!(found, VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn v1_artifact_is_rejected_with_the_typed_version_error() {
    // Reconstruct the retired v1 shape: version = 1, single byte-FNV
    // trailing checksum instead of the chunked footer. The version gate
    // must reject it *before* any checksum interpretation.
    let mut buf = encoded();
    let flen = footer_len(&buf);
    let payload_end = buf.len() - flen;
    buf.truncate(payload_end);
    buf[4..8].copy_from_slice(&1u32.to_le_bytes());
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    for result in [ModelArtifact::decode(&buf), load_mapped_bytes(&buf, "v1")] {
        match result {
            Err(ServeError::UnsupportedVersion { found }) => assert_eq!(found, 1),
            other => panic!("expected UnsupportedVersion {{ found: 1 }}, got {other:?}"),
        }
    }
}

#[test]
fn unknown_snapshot_kind_is_rejected() {
    let mut buf = encoded();
    buf[8..12].copy_from_slice(&7u32.to_le_bytes());
    restamp(&mut buf);
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::Invalid(_))
    ));
}

#[test]
fn every_single_byte_flip_is_rejected() {
    // Without re-stamping, any payload flip must trip a chunk digest (and
    // header flips their own typed error); a footer flip corrupts the
    // digest table or the footer checksum itself.
    let buf = encoded();
    for pos in 0..buf.len() {
        let mut corrupt = buf.clone();
        corrupt[pos] ^= 0x01;
        assert!(
            ModelArtifact::decode(&corrupt).is_err(),
            "flip at byte {pos} was accepted"
        );
    }
}

#[test]
fn every_single_byte_flip_is_rejected_by_the_mapped_path() {
    let buf = encoded();
    for pos in 0..buf.len() {
        let mut corrupt = buf.clone();
        corrupt[pos] ^= 0x01;
        assert!(
            load_mapped_bytes(&corrupt, "flip").is_err(),
            "mapped flip at byte {pos} was accepted"
        );
    }
}

#[test]
fn truncation_at_every_length_is_rejected() {
    let buf = encoded();
    for cut in 0..buf.len() {
        let err = ModelArtifact::decode(&buf[..cut]).expect_err("truncation accepted");
        assert!(
            matches!(
                err,
                ServeError::Truncated { .. }
                    | ServeError::ChecksumMismatch { .. }
                    | ServeError::ChunkChecksumMismatch { .. }
                    | ServeError::Invalid(_)
            ),
            "cut at {cut} gave unexpected error {err:?}"
        );
    }
}

#[test]
fn truncation_at_every_length_is_rejected_by_the_mapped_path() {
    let buf = encoded();
    for cut in 0..buf.len() {
        let err = load_mapped_bytes(&buf[..cut], "trunc").expect_err("truncation accepted");
        assert!(
            matches!(
                err,
                ServeError::Truncated { .. }
                    | ServeError::ChecksumMismatch { .. }
                    | ServeError::ChunkChecksumMismatch { .. }
                    | ServeError::Invalid(_)
            ),
            "mapped cut at {cut} gave unexpected error {err:?}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut buf = encoded();
    buf.push(0);
    assert!(ModelArtifact::decode(&buf).is_err());
}

#[test]
fn payload_corruption_reports_the_failing_chunk() {
    let mut buf = encoded();
    let mid = (buf.len() - footer_len(&buf)) / 2;
    buf[mid] ^= 0x40;
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::ChunkChecksumMismatch { chunk: 0, .. })
    ));
}

#[test]
fn footer_corruption_reports_checksum_mismatch() {
    // Flip a byte inside the digest table: the footer checksum must fire.
    let mut buf = encoded();
    let n = buf.len();
    let digest_start = n - footer_len(&buf);
    buf[digest_start] ^= 0x01;
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::ChecksumMismatch { .. })
    ));
}

#[test]
fn corrupted_seen_csr_behind_a_valid_checksum_is_rejected() {
    // Flip the last item id of the embedded CSR out of range and re-stamp:
    // the checksums pass, the CSR re-validation must still refuse it —
    // on both load paths. (The v3 payload ends with the 8-byte index_len
    // field — zero for this index-free fixture — so the CSR's last item
    // sits just before it.)
    let mut buf = encoded();
    let payload_end = buf.len() - footer_len(&buf);
    let csr_end = payload_end - 8;
    buf[csr_end - 4..csr_end].copy_from_slice(&10_000u32.to_le_bytes());
    restamp(&mut buf);
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::Invalid(_))
    ));
    assert!(matches!(
        load_mapped_bytes(&buf, "csr"),
        Err(ServeError::Invalid(_))
    ));
}

#[test]
fn every_single_byte_flip_in_an_indexed_artifact_is_rejected() {
    // The v3 index section sits inside the digested payload, so flips in
    // centroids, radii, offsets or the permutation must all trip a chunk
    // digest — on both load paths.
    let buf = encoded_indexed();
    for pos in 0..buf.len() {
        let mut corrupt = buf.clone();
        corrupt[pos] ^= 0x01;
        assert!(
            ModelArtifact::decode(&corrupt).is_err(),
            "indexed flip at byte {pos} was accepted"
        );
        assert!(
            load_mapped_bytes(&corrupt, "ixflip").is_err(),
            "mapped indexed flip at byte {pos} was accepted"
        );
    }
}

#[test]
fn truncation_of_an_indexed_artifact_at_every_length_is_rejected() {
    let buf = encoded_indexed();
    for cut in 0..buf.len() {
        for err in [
            ModelArtifact::decode(&buf[..cut]).expect_err("truncation accepted"),
            load_mapped_bytes(&buf[..cut], "ixtrunc").expect_err("mapped truncation accepted"),
        ] {
            assert!(
                matches!(
                    err,
                    ServeError::Truncated { .. }
                        | ServeError::ChecksumMismatch { .. }
                        | ServeError::ChunkChecksumMismatch { .. }
                        | ServeError::Invalid(_)
                ),
                "indexed cut at {cut} gave unexpected error {err:?}"
            );
        }
    }
}

#[test]
fn corrupted_index_behind_a_valid_checksum_is_rejected() {
    // Duplicate the first permutation entry into the second slot and
    // re-stamp: checksums pass, the index structural validation must
    // refuse the non-permutation — on both load paths.
    let mut buf = encoded_indexed();
    let payload_end = buf.len() - footer_len(&buf);
    let n_items = 40usize;
    let dim = 4usize;
    // The section ends with the perm-ordered vector rows; perm sits just
    // before them.
    let perm_at = payload_end - 4 * n_items * dim - 4 * n_items;
    let first = buf[perm_at..perm_at + 4].to_vec();
    buf[perm_at + 4..perm_at + 8].copy_from_slice(&first);
    restamp(&mut buf);
    assert!(matches!(
        ModelArtifact::decode(&buf),
        Err(ServeError::Invalid(_))
    ));
    assert!(matches!(
        load_mapped_bytes(&buf, "ixperm"),
        Err(ServeError::Invalid(_))
    ));
}

#[test]
fn indexed_artifact_round_trips_on_both_load_paths() {
    let (model, seen) = indexed_fixture();
    let artifact = ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default())).unwrap();
    let path = std::env::temp_dir().join(format!("bns_integrity_ix_{}.bnsa", std::process::id()));
    artifact.save(&path).unwrap();
    let buffered = ModelArtifact::load(&path).unwrap();
    let mapped = ModelArtifact::load_mapped(&path).unwrap();
    let original = artifact.index().unwrap();
    for reloaded in [&buffered, &mapped] {
        let ix = reloaded.index().expect("index section must survive");
        assert_eq!(ix.n_clusters(), original.n_clusters());
        assert_eq!(ix.perm(), original.perm());
    }
    #[cfg(all(unix, target_endian = "little"))]
    {
        assert!(
            mapped.index().unwrap().is_mapped(),
            "index must serve zero-copy from the mapping"
        );
        assert!(!buffered.is_mapped());
    }
    // And the engine serves IVF from either load path with identical
    // answers (determinism of the probe path across backings).
    let nprobe = original.default_nprobe();
    let a = QueryEngine::with_index_mode(buffered, IndexMode::Ivf { nprobe }).unwrap();
    let b = QueryEngine::with_index_mode(mapped, IndexMode::Ivf { nprobe }).unwrap();
    for u in 0..5u32 {
        assert_eq!(a.top_k(u, 10, true).unwrap(), b.top_k(u, 10, true).unwrap());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_artifacts_still_load_with_the_index_absent() {
    // Reconstruct a byte-exact v2 artifact from the v3 encoding of an
    // index-free freeze: drop the trailing index_len field, stamp version
    // 2, re-checksum. It must load on both paths, serve Exact-only, and
    // refuse IVF mode with the typed NoIndex error.
    let (model, seen) = fixture();
    let v3 = ModelArtifact::freeze_with(&model, &seen, None)
        .unwrap()
        .encode()
        .to_vec();
    let flen = footer_len(&v3);
    let payload_end = v3.len() - flen;
    // v2 payload = v3 payload minus the 8-byte index_len tail.
    let mut buf = v3[..payload_end - 8].to_vec();
    buf[4..8].copy_from_slice(&2u32.to_le_bytes());
    let n_chunks = buf.len().div_ceil(1 << 20);
    let digests: Vec<u64> = buf.chunks(1 << 20).map(fnv1a64_words).collect();
    let footer_start = buf.len();
    for d in digests {
        buf.extend_from_slice(&d.to_le_bytes());
    }
    buf.extend_from_slice(&(1u64 << 20).to_le_bytes());
    buf.extend_from_slice(&(n_chunks as u64).to_le_bytes());
    let footer_sum = fnv1a64_words(&buf[footer_start..]);
    buf.extend_from_slice(&footer_sum.to_le_bytes());

    for artifact in [
        ModelArtifact::decode(&buf).expect("v2 must still decode"),
        load_mapped_bytes(&buf, "v2").expect("v2 must still map"),
    ] {
        assert!(artifact.index().is_none(), "v2 carries no index");
        for u in 0..5u32 {
            for i in 0..9u32 {
                assert_eq!(artifact.score(u, i).to_bits(), model.score(u, i).to_bits());
            }
        }
        assert!(matches!(
            QueryEngine::with_index_mode(artifact, IndexMode::Ivf { nprobe: 1 }),
            Err(ServeError::NoIndex)
        ));
    }
}

#[test]
fn load_of_missing_file_is_io() {
    let path = std::env::temp_dir().join("bns_artifact_definitely_missing.bnsa");
    assert!(matches!(ModelArtifact::load(&path), Err(ServeError::Io(_))));
    assert!(matches!(
        ModelArtifact::load_mapped(&path),
        Err(ServeError::Io(_))
    ));
}

#[test]
fn mapped_load_scores_bitwise_like_the_buffered_load() {
    let (model, seen) = fixture();
    let artifact = ModelArtifact::freeze(&model, &seen).unwrap();
    let path =
        std::env::temp_dir().join(format!("bns_integrity_bitwise_{}.bnsa", std::process::id()));
    artifact.save(&path).unwrap();
    let buffered = ModelArtifact::load(&path).unwrap();
    let mapped = ModelArtifact::load_mapped(&path).unwrap();
    assert_eq!(buffered.seen(), mapped.seen());
    for u in 0..5u32 {
        for i in 0..9u32 {
            assert_eq!(buffered.score(u, i).to_bits(), mapped.score(u, i).to_bits());
            assert_eq!(mapped.score(u, i).to_bits(), model.score(u, i).to_bits());
        }
    }
    #[cfg(all(unix, target_endian = "little"))]
    assert!(
        mapped.is_mapped(),
        "mapped load must take the zero-copy path"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn hogwild_freeze_round_trips_bitwise() {
    let (mf, seen) = fixture();
    let hog = HogwildMf::from_mf(&mf);
    let artifact = ModelArtifact::freeze(&hog, &seen).unwrap();
    assert_eq!(artifact.kind(), SnapshotKind::HogwildMf);
    let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
    for u in 0..5u32 {
        for i in 0..9u32 {
            assert_eq!(reloaded.score(u, i).to_bits(), hog.score(u, i).to_bits());
        }
    }
}

#[test]
fn lightgcn_freeze_round_trips_bitwise() {
    let (_, seen) = fixture();
    let mut rng = StdRng::seed_from_u64(123);
    let gcn = LightGcn::new(&seen, 8, 2, 0.1, &mut rng).unwrap();
    let artifact = ModelArtifact::freeze(&gcn, &seen).unwrap();
    assert_eq!(artifact.kind(), SnapshotKind::LightGcnPropagated);
    let reloaded = ModelArtifact::decode(&artifact.encode()).unwrap();
    let mut live = vec![0.0f32; 9];
    let mut frozen = vec![0.0f32; 9];
    for u in 0..5u32 {
        gcn.score_all(u, &mut live);
        reloaded.score_all(u, &mut frozen);
        for i in 0..9 {
            assert_eq!(frozen[i].to_bits(), live[i].to_bits());
        }
    }
}

proptest! {
    /// The acceptance property of the artifact format: for any model shape
    /// and seed, and any of the three freezable scorers, encode → decode →
    /// `score_items` reproduces the live model's scores bit for bit — and
    /// the mmap-backed load path agrees with the buffered one.
    #[test]
    fn save_load_score_items_is_bitwise_for_all_scorers(
        n_users in 2u32..8,
        n_items in 3u32..16,
        dim in 1usize..12,
        seed in 0u64..200,
        kind in 0u32..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(u32, u32)> = (0..n_users)
            .flat_map(|u| {
                let a = (u * 7 + seed as u32) % n_items;
                let b = (u * 3 + 1) % n_items;
                [(u, a), (u, b)]
            })
            .collect();
        let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
        let mf = MatrixFactorization::new(n_users, n_items, dim, 0.1, &mut rng).unwrap();
        let hog;
        let gcn;
        let live: &dyn SnapshotScorer = match kind {
            0 => &mf,
            1 => {
                hog = HogwildMf::from_mf(&mf);
                &hog
            }
            _ => {
                gcn = LightGcn::new(&seen, dim, 1, 0.1, &mut rng).unwrap();
                &gcn
            }
        };
        let artifact = ModelArtifact::freeze(live, &seen).unwrap();
        let encoded = artifact.encode();
        let reloaded = ModelArtifact::decode(&encoded).unwrap();
        let mapped = load_mapped_bytes(&encoded, "prop").unwrap();

        let ids: Vec<u32> = (0..n_items).collect();
        let mut live_scores = vec![0.0f32; n_items as usize];
        let mut frozen_scores = vec![0.0f32; n_items as usize];
        let mut mapped_scores = vec![0.0f32; n_items as usize];
        for u in 0..n_users {
            live.score_items(u, &ids, &mut live_scores);
            reloaded.score_items(u, &ids, &mut frozen_scores);
            mapped.score_items(u, &ids, &mut mapped_scores);
            for i in 0..n_items as usize {
                prop_assert_eq!(frozen_scores[i].to_bits(), live_scores[i].to_bits());
                prop_assert_eq!(mapped_scores[i].to_bits(), live_scores[i].to_bits());
            }
        }
    }
}
