//! Backpressure contract: when the bounded in-flight queue is full, the
//! server answers a typed `Overloaded` **promptly** — within a bounded
//! wait far below the serial service time of the backlog — instead of
//! stalling the socket, and throughput recovers as soon as the burst
//! drains.

use bns_data::Interactions;
use bns_model::MatrixFactorization;
use bns_serve::proto::ModeRequest;
use bns_serve::{ModelArtifact, NetConfig, NetServer, QueryEngine, Status, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const COMPUTE_DELAY: Duration = Duration::from_millis(300);
const BURST: usize = 8;

fn engine() -> QueryEngine {
    let mut rng = StdRng::seed_from_u64(21);
    let model = MatrixFactorization::new(8, 16, 8, 0.1, &mut rng).unwrap();
    let seen = Interactions::from_pairs(8, 16, &[(0, 1), (3, 7)]).unwrap();
    QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
}

/// One worker at 300 ms per request with a 2-deep queue: a burst of 8
/// can hold at most 3 in flight, so the rest must be refused — fast.
fn saturating_cfg() -> NetConfig {
    NetConfig {
        workers: 1,
        queue_depth: 2,
        compute_delay: COMPUTE_DELAY,
        compute_deadline: Duration::from_secs(10),
        ..NetConfig::default()
    }
}

#[test]
fn full_queue_answers_typed_overloaded_promptly_and_recovers() {
    let server = NetServer::bind("127.0.0.1:0", engine(), saturating_cfg()).unwrap();
    let addr = server.local_addr();

    // Burst phase: everyone fires one request at once.
    let outcomes: Vec<(Status, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..BURST)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr).unwrap();
                    let start = Instant::now();
                    let resp = client
                        .top_k(i as u32 % 8, 4, false, ModeRequest::Default)
                        .unwrap();
                    (resp.status, start.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = outcomes.iter().filter(|(s, _)| *s == Status::Ok).count();
    let overloaded: Vec<Duration> = outcomes
        .iter()
        .filter(|(s, _)| *s == Status::Overloaded)
        .map(|&(_, d)| d)
        .collect();
    assert_eq!(
        ok + overloaded.len(),
        BURST,
        "unexpected statuses in {outcomes:?}"
    );
    assert!(ok >= 1, "no request was served at all: {outcomes:?}");
    assert!(
        !overloaded.is_empty(),
        "queue_depth=2 with one 300ms worker absorbed an {BURST}-wide burst: {outcomes:?}"
    );
    // The refusals must be typed responses delivered while the worker is
    // still busy — far below the >2.1s serial drain of the backlog.
    let serial_drain = COMPUTE_DELAY * BURST as u32;
    for d in &overloaded {
        assert!(
            *d < serial_drain / 2,
            "Overloaded took {d:?}; backpressure is queueing, not refusing"
        );
    }
    assert!(server.metrics().overloaded.get() >= overloaded.len() as u64);

    // Recovery phase: with the burst drained, a sequential client sees
    // every request served.
    let mut client = WireClient::connect(addr).unwrap();
    let recovery = Instant::now();
    for i in 0..5u32 {
        let resp = client.top_k(i % 8, 4, false, ModeRequest::Default).unwrap();
        assert_eq!(resp.status, Status::Ok, "recovery request {i}");
    }
    let elapsed = recovery.elapsed();
    // Each sequential request costs ~compute_delay; five of them must
    // not take an order of magnitude more (a wedged worker would).
    assert!(
        elapsed < COMPUTE_DELAY * 5 * 3,
        "recovery throughput did not return: 5 requests took {elapsed:?}"
    );
}

#[test]
fn rejected_connections_get_a_best_effort_overloaded_frame() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        engine(),
        NetConfig {
            workers: 1,
            max_connections: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // Two held connections exhaust the cap…
    let mut a = WireClient::connect(addr).unwrap();
    let mut b = WireClient::connect(addr).unwrap();
    assert_eq!(a.ping().unwrap().status, Status::Pong);
    assert_eq!(b.ping().unwrap().status, Status::Pong);
    // …so the third is answered `Overloaded` at accept and closed.
    let mut c = WireClient::connect(addr).unwrap();
    c.set_timeout(Duration::from_secs(5)).unwrap();
    match c.ping() {
        Ok(resp) => assert_eq!(resp.status, Status::Overloaded),
        // A hangup without the frame is within the best-effort contract,
        // but the rejection must have been counted.
        Err(_) => assert!(server.metrics().connections_rejected.get() >= 1),
    }
    // Freeing a slot restores admission.
    drop(a);
    let ok = (0..50).any(|_| {
        std::thread::sleep(Duration::from_millis(50));
        WireClient::connect(addr)
            .and_then(|mut d| d.ping())
            .map(|r| r.status == Status::Pong)
            .unwrap_or(false)
    });
    assert!(ok, "connection slot never freed after a client left");
    assert_eq!(b.ping().unwrap().status, Status::Pong);
}
