//! The quantitative gate of the ANN serving path: the IVF index has no
//! bitwise contract against the exact ranking (that is the point of
//! approximate retrieval), so it carries a measured **recall@10 ≥ 0.95**
//! gate at the default probe width instead — across seeds, shapes and
//! both retrieval entry points — plus determinism pins: the same seed
//! must freeze byte-identical indexes, and IVF answers must be a pure
//! function of `(artifact, nprobe)`.

use bns_data::Interactions;
use bns_model::MatrixFactorization;
use bns_serve::{IndexMode, IvfConfig, ModelArtifact, QueryEngine, QueryScratch, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Freezes a random MF of the given shape with a forced IVF index.
fn frozen(n_users: u32, n_items: u32, dim: usize, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = MatrixFactorization::new(n_users, n_items, dim, 0.1, &mut rng).unwrap();
    let pairs: Vec<(u32, u32)> = (0..n_users)
        .flat_map(|u| [(u, (u * 13) % n_items), (u, (u * 29 + 5) % n_items)])
        .collect();
    let mut pairs = pairs;
    pairs.sort_unstable();
    pairs.dedup();
    let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
    ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default())).unwrap()
}

/// Mean recall@k of the IVF engine against the exact engine over every
/// user, at the index's default probe width.
fn mean_recall_at_default_nprobe(artifact: &ModelArtifact, k: usize) -> (f64, usize) {
    let nprobe = artifact.index().unwrap().default_nprobe();
    let exact = QueryEngine::new(artifact.clone());
    let ivf = QueryEngine::with_index_mode(artifact.clone(), IndexMode::Ivf { nprobe }).unwrap();
    let n_users = artifact.seen().n_users();
    let mut total = 0.0f64;
    for u in 0..n_users {
        let truth = exact.top_k(u, k, true).unwrap();
        let approx = ivf.top_k(u, k, true).unwrap();
        let hit = truth.iter().filter(|i| approx.contains(i)).count();
        total += hit as f64 / truth.len().max(1) as f64;
    }
    (total / n_users as f64, nprobe)
}

#[test]
fn recall_at_10_is_at_least_095_across_seeds_and_shapes() {
    // Random (untrained) embeddings are the *hard* case for IVF-MIPS —
    // trained tables are more clusterable — so a 0.95 gate here is
    // conservative for real serving.
    let shapes: &[(u32, u32, usize, u64)] = &[
        (40, 2000, 8, 7),
        (40, 3000, 16, 11),
        (40, 1200, 4, 13),
        (40, 2000, 8, 101),
        (40, 3000, 16, 103),
    ];
    for &(n_users, n_items, dim, seed) in shapes {
        let artifact = frozen(n_users, n_items, dim, seed);
        let (recall, nprobe) = mean_recall_at_default_nprobe(&artifact, 10);
        assert!(
            recall >= 0.95,
            "recall@10 = {recall:.4} < 0.95 at {n_items} items × dim {dim}, seed {seed} \
             (nprobe {nprobe}, {} clusters)",
            artifact.index().unwrap().n_clusters()
        );
    }
}

#[test]
fn same_seed_freezes_byte_identical_indexes() {
    let a = frozen(20, 1500, 8, 42).encode();
    let b = frozen(20, 1500, 8, 42).encode();
    assert_eq!(a, b, "same seed must freeze byte-identical artifacts");

    let mut rng = StdRng::seed_from_u64(42);
    let model = MatrixFactorization::new(20, 1500, 8, 0.1, &mut rng).unwrap();
    let seen = Interactions::from_pairs(20, 1500, &[(0, 3)]).unwrap();
    let base = ModelArtifact::freeze_with(&model, &seen, Some(IvfConfig::default()))
        .unwrap()
        .encode();
    let reseeded = ModelArtifact::freeze_with(
        &model,
        &seen,
        Some(IvfConfig {
            seed: 777,
            ..IvfConfig::default()
        }),
    )
    .unwrap()
    .encode();
    assert_ne!(base, reseeded, "the k-means seed must reach the bytes");
}

#[test]
fn ivf_answers_are_identical_across_runs_threads_and_entry_points() {
    let artifact = frozen(30, 2500, 8, 17);
    let nprobe = artifact.index().unwrap().default_nprobe();
    let engine = QueryEngine::with_index_mode(artifact.clone(), IndexMode::Ivf { nprobe }).unwrap();
    let requests: Vec<Request> = (0..90u32)
        .map(|i| Request {
            user: i % 30,
            k: 10,
            exclude_seen: i % 2 == 0,
        })
        .collect();
    let single = engine.serve(&requests, 1).unwrap();
    let multi = engine.serve(&requests, 4).unwrap();
    for (a, b) in single.results.iter().zip(&multi.results) {
        assert_eq!(a.items, b.items, "IVF answers moved across schedules");
    }
    // Batched entry point agrees bitwise with the one-at-a-time path.
    let mut scratch = QueryScratch::new();
    let mut outs: Vec<Vec<u32>> = vec![Vec::new(); requests.len()];
    engine
        .top_k_batch_into(&requests, &mut scratch, &mut outs)
        .unwrap();
    for (r, out) in single.results.iter().zip(&outs) {
        assert_eq!(&r.items, out, "batched IVF diverged from single path");
    }
}

#[test]
fn raising_nprobe_converges_to_the_exact_ranking() {
    let artifact = frozen(25, 1600, 8, 23);
    let n_clusters = artifact.index().unwrap().n_clusters();
    let exact = QueryEngine::new(artifact.clone());
    let mut last = -1.0f64;
    for nprobe in [1usize, n_clusters / 4, n_clusters] {
        let nprobe = nprobe.max(1);
        let ivf =
            QueryEngine::with_index_mode(artifact.clone(), IndexMode::Ivf { nprobe }).unwrap();
        let mut total = 0.0;
        for u in 0..25u32 {
            let truth = exact.top_k(u, 10, true).unwrap();
            let approx = ivf.top_k(u, 10, true).unwrap();
            total += truth.iter().filter(|i| approx.contains(i)).count() as f64 / 10.0;
        }
        let recall = total / 25.0;
        assert!(
            recall >= last - 1e-9,
            "recall must not fall as nprobe grows: {last:.4} -> {recall:.4} at nprobe {nprobe}"
        );
        last = recall;
    }
    assert!(
        (last - 1.0).abs() < 1e-12,
        "probing every cluster must reach recall 1.0, got {last}"
    );
}
