//! Regression pin for the multi-thread latency tail.
//!
//! The original work-stealing loop spawned however many workers the
//! caller asked for. On a box with fewer cores than workers, every
//! involuntary preemption parked a claimed request for a full scheduler
//! quantum (~10ms under default CFS), blowing the 4-thread p99 out to
//! ~90× the single-thread p50 while throughput gained nothing. The fix
//! clamps the worker count to `available_parallelism()` and keeps the
//! per-request clock scoped to the query itself (buffer allocation
//! happens before `Instant::now()`).
//!
//! This test pins the repaired behaviour on a loopback workload:
//! multi-thread p99 must stay within 10× the single-thread p50, floored
//! at 1ms so sub-microsecond p50s on fast machines don't turn scheduler
//! noise into flakes. It lives in its own integration-test binary so no
//! sibling `#[test]` threads compete for the cores while latency is
//! being measured.

use bns_data::Interactions;
use bns_model::MatrixFactorization;
use bns_serve::{ModelArtifact, QueryEngine, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine() -> QueryEngine {
    let n_users = 64;
    let n_items = 512;
    let mut rng = StdRng::seed_from_u64(91);
    let model = MatrixFactorization::new(n_users, n_items, 16, 0.1, &mut rng).unwrap();
    let pairs: Vec<(u32, u32)> = (0..n_users)
        .flat_map(|u| (0..8u32).map(move |j| (u, (u * 7 + j * 13) % n_items)))
        .collect();
    let seen = Interactions::from_pairs(n_users, n_items, &pairs).unwrap();
    QueryEngine::new(ModelArtifact::freeze(&model, &seen).unwrap())
}

fn loopback_requests(n: usize) -> Vec<Request> {
    // Zipf-ish skew: head users repeat, like real loopback traffic.
    let mut rng = StdRng::seed_from_u64(97);
    (0..n)
        .map(|_| Request {
            user: (rng.random_range(0..64u32) * rng.random_range(0..64u32)) / 64,
            k: 10,
            exclude_seen: true,
        })
        .collect()
}

#[test]
fn multi_thread_p99_stays_within_ten_times_single_thread_p50() {
    let e = engine();
    let requests = loopback_requests(4_000);

    // Warm caches and lazy init outside the measured runs.
    let warm: Vec<Request> = requests.iter().take(200).copied().collect();
    e.serve(&warm, 1).unwrap();

    let single = e.serve(&requests, 1).unwrap();
    let multi = e.serve(&requests, 4).unwrap();

    let p50_single = single.latency_percentile_ms(0.5);
    let p99_multi = multi.latency_percentile_ms(0.99);
    // 10× p50 is the regression bar from the serving PR's diagnosis; the
    // 1ms floor keeps a sub-microsecond p50 from making OS jitter a flake.
    let bar = (10.0 * p50_single).max(1.0);
    assert!(
        p99_multi <= bar,
        "multi-thread p99 {p99_multi:.4}ms exceeds bar {bar:.4}ms \
         (single-thread p50 {p50_single:.4}ms, {} workers)",
        multi.threads,
    );
}

#[test]
fn worker_count_never_exceeds_the_core_count() {
    let e = engine();
    let requests = loopback_requests(256);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let report = e.serve(&requests, cores * 8).unwrap();
    assert!(
        report.threads <= cores,
        "{} workers on a {cores}-core machine",
        report.threads
    );
    // Clamping must not change answers or drop requests.
    assert_eq!(report.results.len(), requests.len());
    let seq = e.serve(&requests, 1).unwrap();
    for (a, b) in seq.results.iter().zip(&report.results) {
        assert_eq!(a.items, b.items);
    }
}
