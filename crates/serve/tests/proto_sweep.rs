//! Protocol decode hardening: round-trip for every frame type, plus the
//! exhaustive corruption sweeps the wire checksum exists to win —
//! **every** single-byte flip (all 255 XOR masks at every position) and
//! **every** truncation of a valid frame decodes to a typed
//! [`ProtoError`]; no input panics or reads out of bounds. This mirrors
//! the artifact format's `artifact_integrity` sweep, one layer down.

use bns_serve::proto::{
    frame_checksum, FrameHeader, ModeRequest, ProtoError, RequestFrame, ResponseFrame, Status,
    HEADER_LEN, MAX_PAYLOAD_LEN,
};
use proptest::prelude::*;

/// Every request frame shape the sweep drives.
fn request_fixtures() -> Vec<RequestFrame> {
    let mut frames = vec![RequestFrame::Ping];
    for mode in [ModeRequest::Default, ModeRequest::Exact, ModeRequest::Ivf] {
        for exclude_seen in [false, true] {
            frames.push(RequestFrame::TopK {
                user: 0xDEAD_BEEF,
                k: 37,
                exclude_seen,
                mode,
            });
        }
    }
    frames.push(RequestFrame::TopK {
        user: 0,
        k: 1,
        exclude_seen: false,
        mode: ModeRequest::Default,
    });
    frames
}

/// Every response frame shape the sweep drives, including an `Ok` with a
/// three-digit item list so the `n`/payload-length coupling is exercised.
fn response_fixtures() -> Vec<ResponseFrame> {
    let mut frames = vec![
        ResponseFrame::ok(0, Vec::new()),
        ResponseFrame::ok(
            41,
            (0..100u32).map(|i| i.wrapping_mul(2654435761)).collect(),
        ),
    ];
    for status in [
        Status::Overloaded,
        Status::UnknownUser,
        Status::NoIndex,
        Status::Timeout,
        Status::Pong,
        Status::BadRequest,
    ] {
        frames.push(ResponseFrame::error(status));
    }
    frames
}

#[test]
fn every_fixture_round_trips() {
    for req in request_fixtures() {
        assert_eq!(RequestFrame::decode(&req.encode()).unwrap(), req);
    }
    for resp in response_fixtures() {
        assert_eq!(ResponseFrame::decode(&resp.encode()).unwrap(), resp);
    }
}

/// Single-byte corruption of a request frame — any position, any of the
/// 255 non-identity XOR masks — is always a typed error, never a
/// different valid request. The FNV-1a frame checksum guarantees this:
/// multiplication by an odd prime is a bijection mod 2^32, so two
/// equal-length payloads differing in any byte keep different digests.
#[test]
fn request_byte_flips_never_decode() {
    for req in request_fixtures() {
        let good = req.encode();
        for i in 0..good.len() {
            for mask in 1..=255u8 {
                let mut bad = good.clone();
                bad[i] ^= mask;
                let err = RequestFrame::decode(&bad)
                    .expect_err(&format!("flip {mask:#04x} at byte {i} of {req:?} decoded"));
                // Any variant is acceptable; the point is it is *typed*.
                let _: ProtoError = err;
            }
        }
    }
}

#[test]
fn response_byte_flips_never_decode() {
    for resp in response_fixtures() {
        let good = resp.encode();
        // All 255 masks on the header and the first payload bytes; the
        // full mask set over a 400-byte item list repeats the same
        // checksum argument, so the item region uses four spot masks.
        for i in 0..good.len() {
            let masks: &[u8] = if i < HEADER_LEN + 16 {
                &ALL_MASKS
            } else {
                &[0x01, 0x10, 0x80, 0xFF]
            };
            for &mask in masks {
                let mut bad = good.clone();
                bad[i] ^= mask;
                assert!(
                    ResponseFrame::decode(&bad).is_err(),
                    "flip {mask:#04x} at byte {i} of a {:?} response decoded",
                    resp.status
                );
            }
        }
    }
}

const ALL_MASKS: [u8; 255] = {
    let mut m = [0u8; 255];
    let mut i = 0;
    while i < 255 {
        m[i] = i as u8 + 1;
        i += 1;
    }
    m
};

/// Every proper prefix of a valid frame is a typed error (`Truncated`),
/// and every extension is `TrailingBytes` — a frame boundary can neither
/// shrink nor grow silently.
#[test]
fn every_truncation_and_extension_is_typed() {
    let mut frames: Vec<Vec<u8>> = request_fixtures()
        .iter()
        .map(RequestFrame::encode)
        .collect();
    frames.extend(response_fixtures().iter().map(ResponseFrame::encode));
    for good in frames {
        for cut in 0..good.len() {
            match RequestFrame::decode(&good[..cut]) {
                Err(ProtoError::Truncated { .. }) => {}
                other => panic!("cut at {cut}/{} gave {other:?}", good.len()),
            }
            // The response decoder must agree byte for byte.
            assert!(ResponseFrame::decode(&good[..cut]).is_err());
        }
        let mut extended = good.clone();
        extended.push(0xAA);
        assert!(matches!(
            RequestFrame::decode(&extended),
            Err(ProtoError::TrailingBytes { extra: 1 })
        ));
    }
}

#[test]
fn oversized_length_prefix_is_rejected_at_the_header() {
    for claimed in [
        MAX_PAYLOAD_LEN as u32 + 1,
        u32::MAX / 2,
        u32::MAX, // would wrap any naive `len + HEADER_LEN` arithmetic
    ] {
        let mut buf = claimed.to_le_bytes().to_vec();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0; 32]);
        assert!(
            matches!(
                RequestFrame::decode(&buf),
                Err(ProtoError::Oversized { len }) if len == claimed as usize
            ),
            "claimed {claimed}"
        );
    }
}

proptest! {
    /// Arbitrary requests round-trip through encode → decode.
    #[test]
    fn prop_request_round_trip(
        user in 0u32..=u32::MAX,
        k in 0u16..=u16::MAX,
        variant in 0u8..6,
    ) {
        let mode = [ModeRequest::Default, ModeRequest::Exact, ModeRequest::Ivf]
            [usize::from(variant % 3)];
        let exclude_seen = variant >= 3;
        let req = RequestFrame::TopK { user, k, exclude_seen, mode };
        prop_assert_eq!(RequestFrame::decode(&req.encode()).unwrap(), req);
    }

    /// Arbitrary `Ok` responses round-trip, generation and items intact.
    #[test]
    fn prop_response_round_trip(
        generation in 0u64..=u64::MAX,
        items in prop::collection::vec(0u32..=u32::MAX, 0..300),
    ) {
        let resp = ResponseFrame::ok(generation, items);
        prop_assert_eq!(ResponseFrame::decode(&resp.encode()).unwrap(), resp);
    }

    /// Random byte soup never panics either decoder — it merely errors
    /// (or, astronomically rarely, decodes; both are acceptable, crashing
    /// is not).
    #[test]
    fn prop_fuzz_decode_never_panics(bytes in prop::collection::vec(0u8..=u8::MAX, 0..64)) {
        let _ = RequestFrame::decode(&bytes);
        let _ = ResponseFrame::decode(&bytes);
    }

    /// A flip confined to the payload is always a checksum mismatch —
    /// the stronger guarantee behind the sweep above.
    #[test]
    fn prop_payload_flip_is_checksum_mismatch(
        user in 0u32..=u32::MAX,
        pos in 0usize..8,
        mask in 1u8..=u8::MAX,
    ) {
        let req = RequestFrame::TopK {
            user, k: 9, exclude_seen: true, mode: ModeRequest::Default,
        };
        let mut buf = req.encode();
        buf[HEADER_LEN + pos] ^= mask;
        prop_assert!(matches!(
            RequestFrame::decode(&buf),
            Err(ProtoError::ChecksumMismatch { .. })
        ));
    }
}

/// The incremental header API agrees with the strict decoder about when
/// a header exists and what it claims.
#[test]
fn incremental_header_matches_strict_view() {
    let buf = RequestFrame::Ping.encode();
    for cut in 0..HEADER_LEN {
        assert_eq!(
            bns_serve::proto::parse_header(&buf[..cut]).unwrap(),
            FrameHeader::NeedHeader
        );
    }
    match bns_serve::proto::parse_header(&buf).unwrap() {
        FrameHeader::Payload { len, check } => {
            assert_eq!(len, 1);
            assert_eq!(check, frame_checksum(&buf[HEADER_LEN..]));
        }
        FrameHeader::NeedHeader => panic!("full header not recognized"),
    }
}
