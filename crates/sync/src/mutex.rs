//! Mutual exclusion, modeled under the checker.

use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;

/// A mutex whose lock acquisition is a schedule point of the model
/// checker.
///
/// In normal builds this is a zero-cost wrapper over `std::sync::Mutex`
/// that panics on poison (a poisoned lock means a worker already panicked;
/// continuing with its half-updated state would corrupt results silently).
/// Under `--cfg bns_model_check` the *logical* acquisition is arbitrated by
/// the deterministic scheduler — contenders block in the model, never on
/// the OS — so lock-ordering deadlocks and atomicity violations show up as
/// replayable counterexamples.
///
/// ```
/// use bns_sync::Mutex;
///
/// let cache = Mutex::new(vec![1, 2]);
/// cache.lock().push(3);
/// assert_eq!(cache.lock().len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is available. Panics if a
    /// previous holder panicked (poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(bns_model_check)]
        let key = {
            // The mutex's address identifies it to the model scheduler;
            // logical ownership is granted before the (then uncontended)
            // real lock is taken.
            let key = self as *const Self as usize;
            crate::model::mutex_acquire(key, "Mutex::lock");
            key
        };
        let guard = self
            .inner
            .lock()
            .expect("bns_sync::Mutex poisoned: a previous holder panicked");
        MutexGuard {
            guard: Some(guard),
            #[cfg(bns_model_check)]
            key,
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("bns_sync::Mutex poisoned: a previous holder panicked")
    }

    /// Mutable access without locking — the `&mut` receiver proves
    /// exclusivity statically.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .expect("bns_sync::Mutex poisoned: a previous holder panicked")
    }
}

/// RAII guard for [`Mutex`]; releases on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // `Option` so `Drop` can release the real lock *before* telling the
    // model scheduler, mirroring acquisition order.
    guard: Option<StdMutexGuard<'a, T>>,
    #[cfg(bns_model_check)]
    key: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        #[cfg(bns_model_check)]
        // `mutex_release` never panics: guards drop during unwinds.
        crate::model::mutex_release(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn get_mut_skips_locking() {
        let mut m = Mutex::new(String::from("a"));
        m.get_mut().push('b');
        assert_eq!(&*m.lock(), "ab");
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..250 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 1000);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poison_panics_on_lock() {
        let m = Mutex::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("holder dies");
        }));
        let _ = m.lock();
    }
}
