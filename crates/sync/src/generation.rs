//! Cache-invalidation epoch counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic epoch counter that publishes artifact swaps.
///
/// The serve path stamps every cache entry with the generation observed at
/// query start; [`bump`](Self::bump) (called by `swap_artifact`) makes all
/// previously stamped entries stale at once, without walking the cache.
///
/// ```
/// use bns_sync::Generation;
///
/// let generation = Generation::new();
/// assert_eq!(generation.current(), 0);
/// assert_eq!(generation.bump(), 1);
/// assert_eq!(generation.current(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Generation {
    epoch: AtomicU64,
}

impl Generation {
    /// Creates a counter at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current generation.
    #[inline]
    pub fn current(&self) -> u64 {
        #[cfg(bns_model_check)]
        crate::model::point("Generation::current");
        // ordering: Acquire — pairs with the Release in `bump` so a reader
        // that observes generation g+1 also observes every write the
        // swapper made before bumping (the new artifact's state). Today
        // `swap_artifact` takes `&mut self`, which already excludes
        // concurrent readers, but the Acquire pins the protocol the
        // planned shared-reference hot-swap (ROADMAP items 3–4) will need,
        // and is free on x86 loads anyway.
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances to the next generation and returns it.
    #[inline]
    pub fn bump(&self) -> u64 {
        #[cfg(bns_model_check)]
        crate::model::point("Generation::bump");
        // ordering: Release — the bump is the publication point of an
        // artifact swap: everything written before it (the new artifact)
        // must be visible to any thread that Acquire-reads the new value.
        // See `current` for the pairing and the &mut-exclusivity caveat.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotonic_and_returns_new_value() {
        let g = Generation::new();
        assert_eq!(g.current(), 0);
        assert_eq!(g.bump(), 1);
        assert_eq!(g.bump(), 2);
        assert_eq!(g.current(), 2);
    }
}
