//! Relaxed statistics counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter for statistics no control flow depends on
/// (cache hit/lookup counts, dropped-work tallies).
///
/// Deliberately *not* suitable for claim protocols or publication — use
/// [`crate::ClaimCursor`] or [`crate::Generation`] for those.
///
/// ```
/// use bns_sync::Counter;
///
/// let hits = Counter::new();
/// hits.incr();
/// assert_eq!(hits.get(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    count: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        #[cfg(bns_model_check)]
        crate::model::point("Counter::incr");
        // ordering: Relaxed — pure statistics: the total only needs each
        // increment to land exactly once (RMW atomicity); nothing reads the
        // counter to make a synchronization decision.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current total.
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(bns_model_check)]
        crate::model::point("Counter::get");
        // ordering: Relaxed — a statistics snapshot; staleness is
        // acceptable and no other memory hangs off the value.
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_from_zero() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.incr();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..500 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 2000);
    }
}
