//! Reader–writer lock, modeled (conservatively) under the checker.

use std::sync::RwLock as StdRwLock;
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A reader–writer lock for read-mostly shared state with rare exclusive
/// swaps — the hot-swap protocol of the network front-end: every request
/// holds a read guard for its whole service, an artifact swap takes the
/// write guard, so a response can never mix two generations.
///
/// In normal builds this is a zero-cost wrapper over `std::sync::RwLock`
/// that panics on poison, like [`crate::Mutex`]. Under
/// `--cfg bns_model_check` both acquisitions route through the model
/// scheduler's mutex protocol — a **conservative exclusive approximation**
/// (modeled readers do not overlap). That over-serializes schedules but
/// cannot hide a data race the real lock would allow: shared read guards
/// only ever hand out `&T`, and writes always hold the exclusive guard in
/// both the model and the real lock.
///
/// ```
/// use bns_sync::RwLock;
///
/// let state = RwLock::new(7);
/// assert_eq!(*state.read(), 7);
/// *state.write() += 1;
/// assert_eq!(*state.read(), 8);
/// ```
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access, blocking while a writer holds the
    /// lock. Panics if a previous writer panicked (poison).
    pub fn read(&self) -> ReadGuard<'_, T> {
        #[cfg(bns_model_check)]
        let key = {
            let key = self as *const Self as usize;
            crate::model::mutex_acquire(key, "RwLock::read");
            key
        };
        let guard = self
            .inner
            .read()
            .expect("bns_sync::RwLock poisoned: a previous writer panicked");
        ReadGuard {
            guard: Some(guard),
            #[cfg(bns_model_check)]
            key,
        }
    }

    /// Acquires exclusive write access, blocking until all readers and
    /// writers release. Panics if a previous writer panicked (poison).
    pub fn write(&self) -> WriteGuard<'_, T> {
        #[cfg(bns_model_check)]
        let key = {
            let key = self as *const Self as usize;
            crate::model::mutex_acquire(key, "RwLock::write");
            key
        };
        let guard = self
            .inner
            .write()
            .expect("bns_sync::RwLock poisoned: a previous writer panicked");
        WriteGuard {
            guard: Some(guard),
            #[cfg(bns_model_check)]
            key,
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("bns_sync::RwLock poisoned: a previous writer panicked")
    }

    /// Mutable access without locking — the `&mut` receiver proves
    /// exclusivity statically.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .expect("bns_sync::RwLock poisoned: a previous writer panicked")
    }
}

/// Shared RAII guard for [`RwLock`]; releases on drop.
#[derive(Debug)]
pub struct ReadGuard<'a, T> {
    guard: Option<StdReadGuard<'a, T>>,
    #[cfg(bns_model_check)]
    key: usize,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        #[cfg(bns_model_check)]
        crate::model::mutex_release(self.key);
    }
}

/// Exclusive RAII guard for [`RwLock`]; releases on drop.
#[derive(Debug)]
pub struct WriteGuard<'a, T> {
    guard: Option<StdWriteGuard<'a, T>>,
    #[cfg(bns_model_check)]
    key: usize,
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        #[cfg(bns_model_check)]
        crate::model::mutex_release(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn get_mut_skips_locking() {
        let mut l = RwLock::new(String::from("a"));
        l.get_mut().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn contended_writes_all_land() {
        let l = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                s.spawn(move || {
                    for _ in 0..250 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(l.into_inner(), 1000);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poison_panics_on_read() {
        let l = RwLock::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = l.write();
            panic!("writer dies");
        }));
        let _ = l.read();
    }
}
