//! Sticky cross-thread failure latch.

use std::sync::atomic::{AtomicBool, Ordering};

/// A one-way boolean latch: once [`set`](Self::set), it stays set.
///
/// Used by `bns-core::parallel` to propagate a worker failure to its
/// siblings so they stop early instead of burning through a batch whose
/// result will be discarded.
///
/// ```
/// use bns_sync::PoisonFlag;
///
/// let poisoned = PoisonFlag::new();
/// assert!(!poisoned.is_set());
/// poisoned.set();
/// assert!(poisoned.is_set());
/// ```
#[derive(Debug, Default)]
pub struct PoisonFlag {
    poisoned: AtomicBool,
}

impl PoisonFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the flag.
    #[inline]
    pub fn set(&self) {
        #[cfg(bns_model_check)]
        crate::model::point("PoisonFlag::set");
        // ordering: Release — pairs with the Acquire in `is_set`: a sibling
        // that observes the latch also observes whatever failure state the
        // setter wrote before latching.
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether the flag has been latched.
    #[inline]
    pub fn is_set(&self) -> bool {
        #[cfg(bns_model_check)]
        crate::model::point("PoisonFlag::is_set");
        // ordering: Acquire — see `set`; an observed latch carries the
        // setter's prior writes with it.
        self.poisoned.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_sticky() {
        let f = PoisonFlag::new();
        assert!(!f.is_set());
        f.set();
        f.set();
        assert!(f.is_set());
    }
}
