//! Fixed log-bucket latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`LatencyHistogram`].
///
/// Values 0–15 get one bucket each; above that, every power-of-two octave
/// is split into 4 sub-buckets (top two mantissa bits), so the relative
/// quantization error of any recorded value is at most 25%. The top
/// bucket absorbs everything up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 16 + 60 * 4;

/// A concurrent histogram of `u64` samples (latencies in nanoseconds by
/// convention) over fixed logarithmic buckets.
///
/// The struct holds **no clock**: callers measure durations at the edge
/// and feed the finished number into [`record`](Self::record). Recording
/// is one relaxed `fetch_add` per sample on a fixed-size table — no
/// allocation, no locks, safe to call from every worker thread
/// concurrently. Reading ([`snapshot`](Self::snapshot)) is a relaxed
/// sweep: totals are exact once writers quiesce, and only approximately
/// consistent while they race — the usual statistics-counter contract
/// ([`crate::Counter`]).
///
/// ```
/// use bns_sync::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 400, 1_000_000] {
///     h.record(ns);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert!(snap.percentile(0.5) >= 200 && snap.percentile(0.5) <= 400);
/// assert!(snap.percentile(1.0) >= 1_000_000);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a sample: identity below 16, then 4 sub-buckets per
/// octave keyed by the two bits after the leading one.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 2)) & 0x3) as usize;
    16 + (msb - 4) * 4 + sub
}

/// Inclusive upper bound of a bucket (the value reported for samples that
/// landed in it — an overestimate by at most 25%).
fn bucket_upper(b: usize) -> u64 {
    if b < 16 {
        return b as u64;
    }
    let group = (b - 16) / 4;
    let sub = ((b - 16) % 4) as u64;
    let msb = group + 4;
    // Lower bound of the next sub-bucket, minus one; the last sub-bucket
    // of the top octave saturates at u64::MAX (in u128 to dodge overflow).
    let base = 1u128 << msb;
    let step = base / 4;
    u64::try_from(base + step * (sub as u128 + 1) - 1).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(bns_model_check)]
        crate::model::point("LatencyHistogram::record");
        // ordering: Relaxed — pure statistics: each RMW lands exactly once
        // by atomicity alone; nothing synchronizes on histogram contents
        // and readers tolerate torn cross-bucket snapshots.
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same statistics contract as the buckets.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same statistics contract as the buckets.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies the current totals out into an owned [`HistogramSnapshot`].
    /// Exact once writers quiesce; while writers race, each bucket is
    /// individually correct but the set may straddle in-flight records.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(bns_model_check)]
        crate::model::point("LatencyHistogram::snapshot");
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            // ordering: Relaxed — statistics snapshot; staleness and
            // cross-bucket skew are acceptable by contract.
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            // ordering: Relaxed — statistics snapshot (see above).
            count: self.count.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot (see above).
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s totals at one point in time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`] for layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (mean = `sum / count`).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile (`q` in `[0, 1]`), reported as the upper
    /// bound of the bucket holding that rank — an overestimate of the true
    /// sample by at most 25%. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Iterates the non-empty buckets as `(inclusive_upper_bound, count)`
    /// pairs, in ascending bound order — the exposition shape a `/metrics`
    /// endpoint renders.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_upper(b), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.sum, (0..16).sum::<u64>());
        for v in 0..16u64 {
            assert_eq!(s.buckets[v as usize], 1);
        }
        assert_eq!(s.percentile(0.0), 0);
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for b in 1..HISTOGRAM_BUCKETS {
            let upper = bucket_upper(b);
            assert!(upper > prev, "bucket {b} bound {upper} <= {prev}");
            prev = upper;
        }
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value maps into the bucket whose bounds contain it.
        for v in [
            0,
            1,
            15,
            16,
            17,
            100,
            1023,
            1024,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "value {v} above its bucket bound");
            if b > 0 {
                assert!(v > bucket_upper(b - 1), "value {v} below bucket {b}");
            }
        }
    }

    #[test]
    fn percentile_error_is_bounded() {
        let h = LatencyHistogram::new();
        // A known distribution: 1..=1000 microseconds in nanoseconds.
        for us in 1..=1000u64 {
            h.record(us * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.percentile(0.5) as f64;
        let p99 = s.percentile(0.99) as f64;
        // True p50 = 500_000 ns, p99 = 990_000 ns; bound: +25% / -0%.
        assert!((500_000.0..=625_000.0).contains(&p50), "p50 {p50}");
        assert!((990_000.0..=1_237_500.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..500u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 2000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 2000);
    }

    #[test]
    fn nonzero_buckets_match_totals() {
        let h = LatencyHistogram::new();
        h.record(3);
        h.record(3);
        h.record(1_000_000);
        let s = h.snapshot();
        let pairs: Vec<(u64, u64)> = s.nonzero_buckets().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (3, 2));
        assert_eq!(pairs.iter().map(|&(_, c)| c).sum::<u64>(), s.count);
    }
}
