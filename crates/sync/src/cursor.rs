//! Work-stealing claim cursor.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A monotonically advancing index cursor whose `fetch_add` claims are
/// exclusive.
///
/// This is the primitive under the serve engine's sharded work-stealing
/// loop: each shard has one cursor, every worker (owner or thief) claims
/// the next index with [`claim`](Self::claim), and RMW atomicity alone
/// guarantees no index is handed out twice. Claims past the shard's end
/// are simply discarded by the caller's bounds check.
///
/// ```
/// use bns_sync::ClaimCursor;
///
/// let cursor = ClaimCursor::new(10);
/// assert_eq!(cursor.claim(), 10);
/// assert_eq!(cursor.claim(), 11);
/// ```
#[derive(Debug)]
pub struct ClaimCursor {
    next: AtomicUsize,
}

impl ClaimCursor {
    /// Creates a cursor whose first claim returns `start`.
    pub fn new(start: usize) -> Self {
        Self {
            next: AtomicUsize::new(start),
        }
    }

    /// Claims and returns the next index. Each index is returned to
    /// exactly one caller.
    #[inline]
    pub fn claim(&self) -> usize {
        #[cfg(bns_model_check)]
        crate::model::point("ClaimCursor::claim");
        // ordering: Relaxed — exclusivity of claims needs only the
        // atomicity of the RMW, not any ordering: the data each claimed
        // index refers to was published before the worker threads were
        // spawned (scope-spawn is a synchronization point), and nothing is
        // published back through the cursor.
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_are_sequential_from_start() {
        let c = ClaimCursor::new(3);
        assert_eq!((c.claim(), c.claim(), c.claim()), (3, 4, 5));
    }

    #[test]
    fn concurrent_claims_are_exclusive_and_complete() {
        let c = ClaimCursor::new(0);
        let mut seen: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = &c;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = c.claim();
                            if i >= 1000 {
                                break;
                            }
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }
}
