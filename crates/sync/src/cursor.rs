//! Work-stealing claim cursor.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A monotonically advancing index cursor whose `fetch_add` claims are
/// exclusive.
///
/// This is the primitive under the serve engine's sharded work-stealing
/// loop: each shard has one cursor, every worker (owner or thief) claims
/// the next index with [`claim`](Self::claim), and RMW atomicity alone
/// guarantees no index is handed out twice. Claims past the shard's end
/// are simply discarded by the caller's bounds check.
///
/// ```
/// use bns_sync::ClaimCursor;
///
/// let cursor = ClaimCursor::new(10);
/// assert_eq!(cursor.claim(), 10);
/// assert_eq!(cursor.claim(), 11);
/// ```
#[derive(Debug)]
pub struct ClaimCursor {
    next: AtomicUsize,
}

impl ClaimCursor {
    /// Creates a cursor whose first claim returns `start`.
    pub fn new(start: usize) -> Self {
        Self {
            next: AtomicUsize::new(start),
        }
    }

    /// Claims and returns the next index. Each index is returned to
    /// exactly one caller.
    #[inline]
    pub fn claim(&self) -> usize {
        #[cfg(bns_model_check)]
        crate::model::point("ClaimCursor::claim");
        // ordering: Relaxed — exclusivity of claims needs only the
        // atomicity of the RMW, not any ordering: the data each claimed
        // index refers to was published before the worker threads were
        // spawned (scope-spawn is a synchronization point), and nothing is
        // published back through the cursor.
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Claims and returns the start of a contiguous run of `n` indices
    /// (`start..start + n`). Each index is still handed to exactly one
    /// caller — a run claim is one RMW, so runs from concurrent callers
    /// never overlap. `claim_many(1)` is exactly [`claim`](Self::claim).
    ///
    /// This is the coalescing primitive of the serve loop: a worker grabs
    /// up to a batch worth of adjacent requests in one claim and scores
    /// them as a single blocked multi-user GEMM. As with `claim`, runs
    /// past the shard's end are discarded (in part or whole) by the
    /// caller's bounds check.
    #[inline]
    pub fn claim_many(&self, n: usize) -> usize {
        #[cfg(bns_model_check)]
        crate::model::point("ClaimCursor::claim_many");
        // ordering: Relaxed — same argument as `claim`: run exclusivity is
        // RMW atomicity; the claimed requests were published before the
        // worker scope spawned, and nothing publishes back through the
        // cursor.
        self.next.fetch_add(n, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_are_sequential_from_start() {
        let c = ClaimCursor::new(3);
        assert_eq!((c.claim(), c.claim(), c.claim()), (3, 4, 5));
    }

    #[test]
    fn run_claims_are_contiguous_and_exclusive() {
        let c = ClaimCursor::new(0);
        assert_eq!(c.claim_many(4), 0);
        assert_eq!(c.claim(), 4);
        assert_eq!(c.claim_many(3), 5);
        assert_eq!(c.claim_many(1), 8);
    }

    #[test]
    fn concurrent_run_claims_never_overlap() {
        let c = ClaimCursor::new(0);
        let mut seen: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let c = &c;
                    s.spawn(move || {
                        let batch = 1 + w % 3;
                        let mut mine = Vec::new();
                        loop {
                            let start = c.claim_many(batch);
                            if start >= 600 {
                                break;
                            }
                            mine.extend(start..(start + batch).min(600));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_claims_are_exclusive_and_complete() {
        let c = ClaimCursor::new(0);
        let mut seen: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = &c;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = c.claim();
                            if i >= 1000 {
                                break;
                            }
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }
}
