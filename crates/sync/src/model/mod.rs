//! A loom-lite deterministic model checker for the facade types.
//!
//! The stress tests in this workspace (`concurrent_updates_keep_model_finite`,
//! `parallel_serve_matches_sequential_answers`, …) only find an interleaving
//! bug if the OS scheduler happens to produce it. This module removes the
//! luck: a **scenario** is an ordinary closure that spawns *virtual threads*
//! with [`spawn`], and every operation on a facade type ([`crate::AtomicF32Cell`],
//! [`crate::ClaimCursor`], [`crate::Generation`], [`crate::Counter`],
//! [`crate::PoisonFlag`], [`crate::Mutex`]) becomes a **schedule point** at
//! which a deterministic scheduler decides which thread performs its next
//! visible operation. Exactly one virtual thread runs between two points, so
//! each execution is one sequentially consistent interleaving chosen by the
//! scheduler — and the full set of interleavings can be enumerated or
//! sampled instead of hoped for.
//!
//! Three exploration strategies ([`Mode`]):
//!
//! * [`Mode::Exhaustive`] — depth-first enumeration of *every* schedule via
//!   an odometer over the decision tree. Use for small scenarios (two to
//!   three threads, a handful of operations each); the schedule count is
//!   multinomial in the operation counts.
//! * [`Mode::Random`] — PCT-style randomized exploration: each iteration
//!   draws its scheduling decisions from a SplitMix64 stream seeded from
//!   `seed` and the iteration index, so a failure names the exact iteration
//!   that produced it and the whole run is reproducible from `seed`.
//! * [`Mode::Replay`] — deterministically re-executes one recorded schedule
//!   (the [`Counterexample::schedule`] of a previous failure).
//!
//! A failing execution (assertion panic in any virtual thread, or a
//! deadlock) stops exploration and is returned as a [`Counterexample`]
//! carrying the schedule and the tail of the operation log; feeding the
//! schedule back through [`Mode::Replay`] reproduces the identical
//! execution, which is what makes counterexamples debuggable.
//!
//! # Instrumentation and cost
//!
//! In normal builds the facade types compile to bare `std::sync::atomic`
//! operations — no thread-local lookups, no branches — and this module is
//! inert (its scheduler is still compiled and unit-tested, but nothing
//! routes through it). Building with `RUSTFLAGS="--cfg bns_model_check"`
//! (see `ci.sh`) turns every facade operation into a schedule point. The
//! scenario suite lives in `crates/check` and only exists under that cfg.
//!
//! # Writing a scenario
//!
//! ```
//! use bns_sync::model::{check, spawn, Mode};
//! use bns_sync::ClaimCursor;
//! use std::sync::Arc;
//!
//! check("two workers claim disjoint indices", Mode::Exhaustive { max_executions: 10_000 }, || {
//!     let cursor = Arc::new(ClaimCursor::new(0));
//!     let workers: Vec<_> = (0..2)
//!         .map(|_| {
//!             let cursor = Arc::clone(&cursor);
//!             spawn(move || cursor.claim())
//!         })
//!         .collect();
//!     let mut claimed: Vec<usize> = workers.into_iter().map(|w| w.join()).collect();
//!     claimed.sort_unstable();
//!     assert_eq!(claimed, vec![0, 1], "claims must be exclusive and complete");
//! });
//! ```
//!
//! Scenario closures run once per explored execution and must be
//! **deterministic given the schedule**: build all state inside the closure,
//! and avoid schedule-visible behavior that depends on `HashMap` iteration
//! order, wall-clock time, or an unseeded RNG. Virtual threads must not
//! perform facade operations from `Drop` impls that can run during a failed
//! execution's unwind.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration strategy for [`run`] / [`check`].
#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first enumeration of every schedule, stopping (with
    /// [`Report::complete`]` == false`) once `max_executions` have run.
    Exhaustive {
        /// Upper bound on explored executions.
        max_executions: usize,
    },
    /// Seeded randomized exploration: `iterations` executions whose
    /// scheduling decisions come from SplitMix64 streams derived from
    /// `seed` and the iteration index.
    Random {
        /// Base seed; the whole run is a pure function of it.
        seed: u64,
        /// Number of randomized executions.
        iterations: usize,
    },
    /// Re-execute exactly one recorded schedule (a
    /// [`Counterexample::schedule`]).
    Replay {
        /// The thread-id sequence to follow, one entry per decision.
        schedule: Vec<usize>,
    },
}

/// Summary of a passing exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions actually run.
    pub executions: usize,
    /// `true` when the decision tree was fully enumerated (always `false`
    /// for [`Mode::Random`], which samples rather than enumerates).
    pub complete: bool,
}

/// A failing execution, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The panic or deadlock message.
    pub message: String,
    /// Thread id chosen at each scheduling decision; feed back through
    /// [`Mode::Replay`] to re-execute this exact interleaving.
    pub schedule: Vec<usize>,
    /// Operation log of the failing execution (`"t<thread> <op>"`).
    pub ops: Vec<String>,
}

impl Counterexample {
    /// The last `n` operations, for compact failure messages.
    pub fn ops_tail(&self, n: usize) -> String {
        let start = self.ops.len().saturating_sub(n);
        self.ops[start..].join("\n")
    }
}

// ---------------------------------------------------------------------------
// Scheduler internals.
// ---------------------------------------------------------------------------

/// Cap on the operation log so pathological scenarios cannot OOM the
/// checker; counterexamples only ever print the tail.
const MAX_OPS: usize = 65_536;

/// Unwind payload used to tear down parked virtual threads once an
/// execution has failed; recognized (and swallowed) by the thread trampoline.
struct AbortUnwind;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Runnable,
    BlockedJoin(usize),
    BlockedMutex(usize),
    Finished,
}

#[derive(Debug)]
enum Chooser {
    /// Odometer over the decision tree: `(options, taken)` per depth.
    Dfs {
        stack: Vec<(usize, usize)>,
        depth: usize,
    },
    /// SplitMix64 stream.
    Random { state: u64 },
    /// Follow a recorded thread-id sequence.
    Replay { schedule: Vec<usize>, pos: usize },
}

impl Chooser {
    /// Picks one of `runnable` (sorted thread ids); `Err` on replay
    /// divergence or a nondeterministic scenario.
    fn choose(&mut self, runnable: &[usize]) -> Result<usize, String> {
        match self {
            Chooser::Dfs { stack, depth } => {
                let idx = if *depth < stack.len() {
                    let (options, taken) = stack[*depth];
                    if options != runnable.len() {
                        return Err(format!(
                            "nondeterministic scenario: decision {depth} had {options} option(s) \
                             on a previous execution, {} now",
                            runnable.len()
                        ));
                    }
                    taken
                } else {
                    stack.push((runnable.len(), 0));
                    0
                };
                *depth += 1;
                Ok(runnable[idx])
            }
            Chooser::Random { state } => {
                *state = splitmix64(*state);
                Ok(runnable[(*state % runnable.len() as u64) as usize])
            }
            Chooser::Replay { schedule, pos } => {
                let Some(&want) = schedule.get(*pos) else {
                    return Err(format!(
                        "replay diverged: schedule exhausted after {} decision(s)",
                        *pos
                    ));
                };
                *pos += 1;
                if runnable.contains(&want) {
                    Ok(want)
                } else {
                    Err(format!(
                        "replay diverged at decision {}: thread {want} is not runnable",
                        *pos - 1
                    ))
                }
            }
        }
    }

    /// Advances a DFS odometer to the next unexplored path; `false` when
    /// the tree is exhausted.
    fn advance_dfs(&mut self) -> bool {
        let Chooser::Dfs { stack, depth } = self else {
            return false;
        };
        *depth = 0;
        while let Some((options, taken)) = stack.pop() {
            if taken + 1 < options {
                stack.push((options, taken + 1));
                return true;
            }
        }
        false
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct St {
    phases: Vec<Phase>,
    current: usize,
    live: usize,
    abort: bool,
    failure: Option<String>,
    schedule: Vec<usize>,
    ops: Vec<String>,
    chooser: Chooser,
    mutex_owner: HashMap<usize, usize>,
}

struct Exec {
    st: StdMutex<St>,
    cv: Condvar,
}

impl Exec {
    fn new(chooser: Chooser) -> Self {
        Exec {
            st: StdMutex::new(St {
                phases: vec![Phase::Runnable],
                current: 0,
                live: 1,
                abort: false,
                failure: None,
                schedule: Vec::new(),
                ops: Vec::new(),
                chooser,
                mutex_owner: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, St> {
        self.st.lock().expect("model-check scheduler lock poisoned")
    }
}

thread_local! {
    /// The execution this OS thread is a virtual thread of, if any.
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Records a failure and condemns the execution; parked threads wake and
/// unwind via [`AbortUnwind`].
fn fail(exec: &Exec, st: &mut St, message: String) {
    if st.failure.is_none() {
        st.failure = Some(message);
    }
    st.abort = true;
    exec.cv.notify_all();
}

/// Picks the thread that performs the next visible operation. The caller
/// has already set its own phase (Runnable to stay in the race, Blocked or
/// Finished otherwise).
fn reschedule(exec: &Exec, st: &mut St) {
    let runnable: Vec<usize> = st
        .phases
        .iter()
        .enumerate()
        .filter(|(_, p)| **p == Phase::Runnable)
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        if st.live > 0 {
            let blocked: Vec<String> = st
                .phases
                .iter()
                .enumerate()
                .filter(|(_, p)| !matches!(p, Phase::Finished))
                .map(|(i, p)| format!("t{i}:{p:?}"))
                .collect();
            fail(exec, st, format!("deadlock: [{}]", blocked.join(", ")));
        }
        return;
    }
    match st.chooser.choose(&runnable) {
        Ok(next) => {
            st.schedule.push(next);
            st.current = next;
            exec.cv.notify_all();
        }
        Err(msg) => fail(exec, st, msg),
    }
}

/// Parks until the scheduler grants this thread; unwinds with
/// [`AbortUnwind`] when the execution is being torn down.
fn wait_granted<'a>(
    exec: &'a Exec,
    mut st: StdMutexGuard<'a, St>,
    me: usize,
) -> StdMutexGuard<'a, St> {
    while !st.abort && st.current != me {
        st = exec
            .cv
            .wait(st)
            .expect("model-check scheduler lock poisoned");
    }
    if st.abort {
        drop(st);
        panic::panic_any(AbortUnwind);
    }
    st
}

fn log_op(st: &mut St, me: usize, label: &str) {
    if st.ops.len() < MAX_OPS {
        st.ops.push(format!("t{me} {label}"));
    }
}

/// A schedule point: lets the scheduler hand the token to any runnable
/// thread before the caller performs its next visible operation. No-op
/// outside an execution.
pub(crate) fn point(label: &'static str) {
    let Some((exec, me)) = current() else { return };
    let mut st = exec.lock();
    if st.abort {
        drop(st);
        panic::panic_any(AbortUnwind);
    }
    reschedule(&exec, &mut st);
    if st.abort {
        drop(st);
        panic::panic_any(AbortUnwind);
    }
    if st.current != me {
        st = wait_granted(&exec, st, me);
    }
    log_op(&mut st, me, label);
}

/// Manual schedule point for scenarios (and the scheduler's own tests) to
/// mark a visible step that is not a facade operation.
pub fn yield_now() {
    point("yield");
}

/// Logical mutex acquisition: a schedule point, then ownership bookkeeping
/// with blocking instead of spinning. No-op outside an execution. The
/// caller takes the real `std::sync::Mutex` afterwards, which is guaranteed
/// uncontended because logical ownership is exclusive.
///
/// [`crate::Mutex`] calls this for you; scenarios only need it to model a
/// bare lock-ordering protocol (e.g. proving an ABBA deadlock) without
/// wrapping data. Pair every call with [`mutex_release`].
pub fn mutex_acquire(key: usize, label: &'static str) {
    let Some((exec, me)) = current() else { return };
    loop {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortUnwind);
        }
        reschedule(&exec, &mut st);
        if st.abort {
            drop(st);
            panic::panic_any(AbortUnwind);
        }
        if st.current != me {
            st = wait_granted(&exec, st, me);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = st.mutex_owner.entry(key) {
            e.insert(me);
            log_op(&mut st, me, label);
            return;
        }
        // Held: block until the owner releases, then retry the acquire.
        st.phases[me] = Phase::BlockedMutex(key);
        reschedule(&exec, &mut st);
        if st.abort {
            drop(st);
            panic::panic_any(AbortUnwind);
        }
        let st = wait_granted(&exec, st, me);
        drop(st);
    }
}

/// Logical mutex release. Runs from guard `Drop`, so it must never panic —
/// including during an abort unwind; it only does bookkeeping and lets the
/// releasing thread keep the token until its next point.
pub fn mutex_release(key: usize) {
    let Some((exec, me)) = current() else { return };
    let Ok(mut st) = exec.st.lock() else { return };
    st.mutex_owner.remove(&key);
    for p in st.phases.iter_mut() {
        if *p == Phase::BlockedMutex(key) {
            *p = Phase::Runnable;
        }
    }
    log_op(&mut st, me, "Mutex::unlock");
}

/// Handle to a virtual thread spawned with [`spawn`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (under the scheduler) until the virtual thread finishes and
    /// returns its value. Panics if the target panicked.
    pub fn join(self) -> T {
        let (exec, me) = current().expect("JoinHandle::join outside a model-check execution");
        loop {
            let mut st = exec.lock();
            if st.abort {
                drop(st);
                panic::panic_any(AbortUnwind);
            }
            if st.phases[self.id] == Phase::Finished {
                log_op(&mut st, me, "join");
                drop(st);
                break;
            }
            st.phases[me] = Phase::BlockedJoin(self.id);
            reschedule(&exec, &mut st);
            if st.abort {
                drop(st);
                panic::panic_any(AbortUnwind);
            }
            let st = wait_granted(&exec, st, me);
            drop(st);
        }
        self.result
            .lock()
            .expect("virtual thread result lock poisoned")
            .take()
            .expect("joined virtual thread produced no value")
    }
}

/// Spawns a virtual thread inside the current execution. Panics when called
/// outside one — virtual threads only exist under [`run`] / [`check`].
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, _) = current().expect("bns_sync::model::spawn outside a model-check execution");
    let id = {
        let mut st = exec.lock();
        st.phases.push(Phase::Runnable);
        st.live += 1;
        st.phases.len() - 1
    };
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let child = Arc::clone(&exec);
    std::thread::spawn(move || vthread_main(child, id, f, slot));
    // The child is runnable from here on; give the scheduler the chance to
    // start it before the parent's next operation.
    point("spawn");
    JoinHandle { id, result }
}

/// Trampoline every virtual thread (including the scenario root) runs on:
/// registers with the execution, waits for its first grant, runs the body
/// under `catch_unwind`, then reports its exit to the scheduler.
fn vthread_main<T, F>(exec: Arc<Exec>, id: usize, f: F, slot: Arc<StdMutex<Option<T>>>)
where
    F: FnOnce() -> T,
{
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let st = exec.lock();
        let st = wait_granted(&exec, st, id);
        drop(st);
        f()
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut st = exec.lock();
    st.phases[id] = Phase::Finished;
    st.live -= 1;
    match outcome {
        Ok(value) => {
            *slot.lock().expect("virtual thread result lock poisoned") = Some(value);
            for p in st.phases.iter_mut() {
                if *p == Phase::BlockedJoin(id) {
                    *p = Phase::Runnable;
                }
            }
            if st.live > 0 && !st.abort {
                reschedule(&exec, &mut st);
            } else {
                exec.cv.notify_all();
            }
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortUnwind>().is_some() {
                // Teardown of a condemned execution, not a new failure.
                exec.cv.notify_all();
            } else {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "virtual thread panicked".to_string());
                fail(&exec, &mut st, format!("t{id} panicked: {msg}"));
            }
        }
    }
}

/// Explores `scenario` under `mode`. Returns the passing [`Report`], or the
/// first failing execution as a [`Counterexample`].
pub fn run<F>(mode: Mode, scenario: F) -> Result<Report, Box<Counterexample>>
where
    F: Fn() + Sync,
{
    let mut executions = 0usize;
    let mut chooser = match &mode {
        Mode::Exhaustive { .. } => Chooser::Dfs {
            stack: Vec::new(),
            depth: 0,
        },
        Mode::Random { seed, .. } => Chooser::Random {
            state: splitmix64(*seed),
        },
        Mode::Replay { schedule } => Chooser::Replay {
            schedule: schedule.clone(),
            pos: 0,
        },
    };
    loop {
        if let Mode::Random { seed, .. } = &mode {
            // Fresh decorrelated stream per iteration, derived purely from
            // the base seed and the iteration index.
            chooser = Chooser::Random {
                state: splitmix64(seed.wrapping_add(splitmix64(executions as u64))),
            };
        }
        let exec = Arc::new(Exec::new(chooser));
        let root_slot: Arc<StdMutex<Option<()>>> = Arc::new(StdMutex::new(None));
        let scenario_ref = &scenario;
        std::thread::scope(|scope| {
            let exec_root = Arc::clone(&exec);
            let slot = Arc::clone(&root_slot);
            scope.spawn(move || vthread_main(exec_root, 0, scenario_ref, slot));
            let mut st = exec.lock();
            while st.live > 0 {
                st = exec
                    .cv
                    .wait(st)
                    .expect("model-check scheduler lock poisoned");
            }
        });
        executions += 1;
        let (failure, schedule, ops, used) = {
            let mut st = exec.lock();
            (
                st.failure.take(),
                std::mem::take(&mut st.schedule),
                std::mem::take(&mut st.ops),
                std::mem::replace(&mut st.chooser, Chooser::Random { state: 0 }),
            )
        };
        if let Some(message) = failure {
            return Err(Box::new(Counterexample {
                message,
                schedule,
                ops,
            }));
        }
        chooser = used;
        match &mode {
            Mode::Exhaustive { max_executions } => {
                if !chooser.advance_dfs() {
                    return Ok(Report {
                        executions,
                        complete: true,
                    });
                }
                if executions >= *max_executions {
                    return Ok(Report {
                        executions,
                        complete: false,
                    });
                }
            }
            Mode::Random { iterations, .. } => {
                if executions >= *iterations {
                    return Ok(Report {
                        executions,
                        complete: false,
                    });
                }
            }
            Mode::Replay { .. } => {
                return Ok(Report {
                    executions,
                    complete: false,
                })
            }
        }
    }
}

/// [`run`], panicking with a replayable counterexample on failure — the
/// entry point scenario tests use.
pub fn check<F>(name: &str, mode: Mode, scenario: F) -> Report
where
    F: Fn() + Sync,
{
    match run(mode, scenario) {
        Ok(report) => report,
        Err(cex) => panic!(
            "model check '{name}' found a counterexample: {}\n\
             schedule (feed back through Mode::Replay): {:?}\n\
             last operations:\n{}",
            cex.message,
            cex.schedule,
            cex.ops_tail(64)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Exhaustive exploration of a racy read-modify-write must find the
    /// lost update, and the recorded schedule must replay to the same
    /// failure — the checker's own correctness contract.
    fn lost_update_scenario() {
        let x = Arc::new(AtomicU32::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                spawn(move || {
                    // ordering: Relaxed — the bug under test is the
                    // non-atomic load/yield/store sequence, not the cell.
                    let v = x.load(Ordering::Relaxed);
                    yield_now();
                    // ordering: Relaxed — see the load above; the race is
                    // the point of this scenario.
                    x.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        // ordering: Relaxed — all writers joined; this is a quiesced read.
        let total = x.load(Ordering::Relaxed);
        assert_eq!(total, 2, "increment lost to an interleaving");
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let cex = run(
            Mode::Exhaustive {
                max_executions: 10_000,
            },
            lost_update_scenario,
        )
        .expect_err("the lost update must be found");
        assert!(cex.message.contains("increment lost"), "{}", cex.message);
        assert!(!cex.schedule.is_empty());
    }

    #[test]
    fn counterexample_replays_deterministically() {
        let cex = run(
            Mode::Exhaustive {
                max_executions: 10_000,
            },
            lost_update_scenario,
        )
        .expect_err("the lost update must be found");
        let replayed = run(
            Mode::Replay {
                schedule: cex.schedule.clone(),
            },
            lost_update_scenario,
        )
        .expect_err("replay must reproduce the failure");
        assert_eq!(replayed.message, cex.message);
        assert_eq!(replayed.schedule, cex.schedule);
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let a = run(
            Mode::Random {
                seed: 7,
                iterations: 64,
            },
            lost_update_scenario,
        )
        .expect_err("64 random schedules of a 2-thread race must hit it");
        let b = run(
            Mode::Random {
                seed: 7,
                iterations: 64,
            },
            lost_update_scenario,
        )
        .expect_err("same seed, same outcome");
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.message, b.message);
    }

    #[test]
    fn atomic_rmw_passes_exhaustively() {
        let report = check(
            "fetch_add has no lost updates",
            Mode::Exhaustive {
                max_executions: 10_000,
            },
            || {
                let x = Arc::new(AtomicU32::new(0));
                let workers: Vec<_> = (0..2)
                    .map(|_| {
                        let x = Arc::clone(&x);
                        spawn(move || {
                            yield_now();
                            // ordering: Relaxed — RMW atomicity is the
                            // property under test, not publication.
                            x.fetch_add(1, Ordering::Relaxed);
                            yield_now();
                        })
                    })
                    .collect();
                for w in workers {
                    w.join();
                }
                // ordering: Relaxed — all writers joined; quiesced read.
                assert_eq!(x.load(Ordering::Relaxed), 2);
            },
        );
        assert!(report.complete, "small state space must be enumerable");
        assert!(report.executions > 1, "must explore > 1 interleaving");
    }

    #[test]
    fn exhaustive_execution_count_is_stable() {
        let count = |_: ()| {
            check(
                "stable",
                Mode::Exhaustive {
                    max_executions: 10_000,
                },
                || {
                    let h = spawn(|| {
                        yield_now();
                        yield_now();
                    });
                    yield_now();
                    h.join();
                },
            )
            .executions
        };
        assert_eq!(count(()), count(()), "enumeration must be deterministic");
    }

    #[test]
    fn abba_deadlock_is_detected() {
        let cex = run(
            Mode::Exhaustive {
                max_executions: 10_000,
            },
            || {
                let t1 = spawn(|| {
                    mutex_acquire(1, "lock a");
                    yield_now();
                    mutex_acquire(2, "lock b");
                    mutex_release(2);
                    mutex_release(1);
                });
                let t2 = spawn(|| {
                    mutex_acquire(2, "lock b");
                    yield_now();
                    mutex_acquire(1, "lock a");
                    mutex_release(1);
                    mutex_release(2);
                });
                t1.join();
                t2.join();
            },
        )
        .expect_err("ABBA must deadlock under some schedule");
        assert!(cex.message.contains("deadlock"), "{}", cex.message);
    }

    #[test]
    fn mutex_exclusion_holds() {
        let report = check(
            "logical mutex is exclusive",
            Mode::Exhaustive {
                max_executions: 10_000,
            },
            || {
                let in_cs = Arc::new(AtomicU32::new(0));
                let workers: Vec<_> = (0..2)
                    .map(|_| {
                        let in_cs = Arc::clone(&in_cs);
                        spawn(move || {
                            mutex_acquire(9, "lock");
                            // ordering: Relaxed — exclusion, not publication,
                            // is the property under test.
                            let was = in_cs.fetch_add(1, Ordering::Relaxed);
                            assert_eq!(was, 0, "two threads inside the critical section");
                            yield_now();
                            // ordering: Relaxed — still inside the modeled
                            // critical section; exclusion is under test.
                            in_cs.fetch_sub(1, Ordering::Relaxed);
                            mutex_release(9);
                        })
                    })
                    .collect();
                for w in workers {
                    w.join();
                }
            },
        );
        assert!(report.complete);
    }

    #[test]
    fn spawn_outside_execution_panics() {
        let err = panic::catch_unwind(|| {
            let _ = spawn(|| ());
        });
        assert!(err.is_err());
    }
}
