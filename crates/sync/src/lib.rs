//! Concurrency facade for the workspace's lock-free paths, plus a
//! deterministic model checker.
//!
//! This crate is the **only** place in the workspace allowed to import
//! `std::sync::atomic` (enforced by `bns-lint`'s `atomic-import` rule).
//! Instead of raw atomics, concurrent code uses small project types that
//! expose exactly the operations — and exactly the memory orderings — each
//! protocol is allowed to rely on:
//!
//! | Type | Protocol | Orderings |
//! |------|----------|-----------|
//! | [`AtomicF32Cell`] | hogwild embedding tables: racy-by-design reads and writes of f32 bit patterns | `Relaxed` load/store |
//! | [`ClaimCursor`] | work-stealing claim loops: exclusivity comes from RMW atomicity alone | `Relaxed` `fetch_add` |
//! | [`Generation`] | cache-invalidation epochs: the bump publishes "a new artifact is live" | `Release` bump / `Acquire` read |
//! | [`Counter`] | statistics (hit/lookup counts) that no control flow depends on | `Relaxed` |
//! | [`PoisonFlag`] | sticky cross-thread failure latch | `Release` set / `Acquire` read |
//! | [`Mutex`] | plain mutual exclusion, modeled under the checker | n/a |
//! | [`RwLock`] | read-mostly shared state with rare exclusive swaps (the serve hot-swap protocol) | n/a |
//! | [`LatencyHistogram`] | fixed log-bucket latency statistics: one relaxed RMW per sample, no clock inside | `Relaxed` |
//! | [`CachePadded`] | layout shim: gives each element of an array of contended atomics its own cache line | n/a |
//!
//! Narrowing the API is the point: a call site cannot pick a wrong ordering
//! because the ordering is baked into the type, and a new protocol needs a
//! new type (with its own justification) rather than an ad-hoc atomic.
//!
//! # Model checking
//!
//! When built with `RUSTFLAGS="--cfg bns_model_check"`, every operation on
//! these types becomes a schedule point of the deterministic interleaving
//! scheduler in [`model`]. Scenario tests (see `crates/check`) then explore
//! thread interleavings exhaustively (small state spaces) or with seeded
//! randomized search, and any failure is replayable from its recorded
//! schedule. In normal builds the types compile straight to the underlying
//! atomics with zero overhead.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cell;
mod counter;
mod cursor;
mod flag;
mod generation;
mod histogram;
pub mod model;
mod mutex;
mod padded;
mod rwlock;

pub use cell::AtomicF32Cell;
pub use counter::Counter;
pub use cursor::ClaimCursor;
pub use flag::PoisonFlag;
pub use generation::Generation;
pub use histogram::{HistogramSnapshot, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use mutex::{Mutex, MutexGuard};
pub use padded::CachePadded;
pub use rwlock::{ReadGuard, RwLock, WriteGuard};
