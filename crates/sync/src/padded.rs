//! Cache-line padding for arrays of independently contended atomics.

/// Pads and aligns `T` to a cache line so adjacent array elements never
/// share one.
///
/// The serve engine keeps one [`ClaimCursor`](crate::ClaimCursor) per
/// shard in a `Vec`. Unpadded, an 8-byte cursor packs eight shards into a
/// single 64-byte line, so every `fetch_add` by one worker invalidates the
/// line under seven others — false sharing that turns independent claims
/// into a coherence ping-pong. Wrapping each cursor in `CachePadded` gives
/// it a line of its own.
///
/// The alignment is 128 bytes, not 64: modern x86 prefetches adjacent line
/// pairs ("spatial prefetcher"), and recent aarch64 parts have 128-byte
/// lines outright, so 64-byte padding still invites destructive
/// interference on those machines.
///
/// ```
/// use bns_sync::{CachePadded, ClaimCursor};
///
/// let cursors: Vec<CachePadded<ClaimCursor>> =
///     (0..4).map(|_| CachePadded::new(ClaimCursor::new(0))).collect();
/// assert_eq!(cursors[2].claim(), 0);
/// ```
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_elements_do_not_share_a_line() {
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent elements {} bytes apart", b - a);
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(7u32);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
