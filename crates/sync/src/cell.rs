//! Racy-by-design f32 cell for hogwild embedding tables.

use std::sync::atomic::{AtomicU32, Ordering};

/// An `f32` stored as atomic bits, read and written with `Relaxed`
/// ordering.
///
/// This is the cell type of the hogwild embedding tables
/// (`bns-model::hogwild`): concurrent trainers race on it *on purpose* —
/// Hogwild!-style SGD tolerates lost updates — but every load must still
/// observe some value that was actually stored (no tearing), which the
/// atomic guarantees and a plain `f32` would not.
///
/// ```
/// use bns_sync::AtomicF32Cell;
///
/// let cell = AtomicF32Cell::new(1.5);
/// cell.store(2.5);
/// assert_eq!(cell.load(), 2.5);
/// ```
#[derive(Default)]
pub struct AtomicF32Cell {
    bits: AtomicU32,
}

impl AtomicF32Cell {
    /// Creates a cell holding `value`.
    pub fn new(value: f32) -> Self {
        Self {
            bits: AtomicU32::new(value.to_bits()),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f32 {
        #[cfg(bns_model_check)]
        crate::model::point("AtomicF32Cell::load");
        // ordering: Relaxed — hogwild reads race with concurrent writers by
        // design; only per-cell value atomicity (no tearing) is required,
        // and no other memory is published through this load.
        f32::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&self, value: f32) {
        #[cfg(bns_model_check)]
        crate::model::point("AtomicF32Cell::store");
        // ordering: Relaxed — lost updates between racing trainers are
        // accepted by the hogwild algorithm; the store publishes nothing
        // beyond its own bits.
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for AtomicF32Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ordering: Relaxed — debug formatting reads the raw bits directly
        // (not through `load`) so it never takes a model-check schedule
        // point from inside formatting machinery.
        let value = f32::from_bits(self.bits.load(Ordering::Relaxed));
        f.debug_tuple("AtomicF32Cell").field(&value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_bits() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::MIN_POSITIVE, f32::MAX] {
            let cell = AtomicF32Cell::new(v);
            assert_eq!(cell.load().to_bits(), v.to_bits());
            cell.store(-v);
            assert_eq!(cell.load().to_bits(), (-v).to_bits());
        }
    }

    #[test]
    fn nan_survives_bitwise() {
        let nan = f32::from_bits(0x7FC0_0001);
        let cell = AtomicF32Cell::new(nan);
        assert_eq!(cell.load().to_bits(), 0x7FC0_0001);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF32Cell::default().load(), 0.0);
    }

    #[test]
    fn debug_shows_value() {
        assert_eq!(
            format!("{:?}", AtomicF32Cell::new(1.5)),
            "AtomicF32Cell(1.5)"
        );
    }
}
