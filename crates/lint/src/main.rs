//! CLI for the workspace invariant linter.
//!
//! ```text
//! bns-lint [--root <path>]
//! ```
//!
//! Prints one `path:line: rule: message` diagnostic per violation to
//! stdout and exits nonzero if any were found; prints `bns-lint: clean`
//! otherwise. `ci.sh` runs it from the workspace root.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("bns-lint: --root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: bns-lint [--root <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bns-lint: unknown argument '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let diags = bns_lint::lint_workspace(&root);
    if diags.is_empty() {
        println!("bns-lint: clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("bns-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
