//! Workspace invariant linter.
//!
//! `bns-lint` enforces the repo's concurrency and documentation invariants
//! as machine-checked rules with rustc-style `file:line` diagnostics. It is
//! deliberately *not* a Rust parser: a std-only line scanner with just
//! enough lexing to split each line into a **code part** and a **comment
//! part** (line, block, and doc comments; string/raw-string/char literals
//! are excluded from the code part) is fast, dependency-free, and
//! impossible to break with a toolchain upgrade.
//!
//! # Rules
//!
//! | rule | what it flags |
//! |------|---------------|
//! | `atomic-import` | `std::sync::atomic` / `core::sync::atomic` outside the `bns-sync` facade (`crates/sync/src/`) |
//! | `relaxed-justify` | `Ordering::Relaxed` without an `// ordering:` justification comment |
//! | `seqcst-ban` | any `Ordering::SeqCst` (a SeqCst that seems needed means the protocol is not understood) |
//! | `unsafe-safety` | `unsafe` without a `// SAFETY:` comment |
//! | `wall-clock` | `SystemTime` / `Instant::now` in the determinism-critical crates (`crates/core/src/`, `crates/model/src/`, `crates/data/src/`) and in the serve wire modules (`net.rs`, `proto.rs`, `metrics.rs`), which must observe time only at `lint:allow`-justified edge sites |
//! | `missing-docs` | a published crate root (`crates/*/src/lib.rs`) without `#![deny(missing_docs)]` |
//!
//! Justification markers (`ordering:`, `SAFETY:`) and the escape hatch
//! `lint:allow(<rule>)` are honored on the same line's comment or in the
//! contiguous comment block immediately above the flagged line.
//!
//! ```
//! use bns_lint::lint_source;
//!
//! let diags = lint_source("crates/x/src/a.rs", "let v = c.load(Ordering::Relaxed);\n");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "relaxed-justify");
//! let clean = lint_source(
//!     "crates/x/src/a.rs",
//!     "// ordering: Relaxed — statistics only.\nlet v = c.load(Ordering::Relaxed);\n",
//! );
//! assert!(clean.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, formatted `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the linted root, with `/`
    /// separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (the `lint:allow(...)` key).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Directories never descended into: third-party code, build output, VCS
/// metadata, and the linter's own deliberately-bad test fixtures.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Crate roots exempt from the `missing-docs` rule: internal benchmark and
/// experiment harnesses, not published API surface.
const MISSING_DOCS_EXEMPT: [&str; 2] = ["crates/bench/src/lib.rs", "crates/experiments/src/lib.rs"];

/// Lints every `.rs` file under `root` (skipping `vendor/`, `target/`,
/// `.git/`, fixtures, and dot-directories) and
/// returns diagnostics ordered by path, then line.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let mut diags = Vec::new();
    for rel in files {
        let abs = root.join(&rel);
        let Ok(text) = std::fs::read_to_string(&abs) else {
            // Unreadable (permissions, non-UTF-8): ignore rather than fail
            // the whole lint run on a file rustc could not compile anyway.
            continue;
        };
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        diags.extend(lint_source(&rel_str, &text));
    }
    diags
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// One source line split into its code and comment parts.
#[derive(Debug, Default, Clone)]
struct SplitLine {
    code: String,
    comment: String,
}

/// Lints a single file's text. `relpath` must use `/` separators and be
/// relative to the workspace root (rule scoping keys off its prefix).
pub fn lint_source(relpath: &str, text: &str) -> Vec<Diagnostic> {
    let lines = split_lines(text);
    let mut diags = Vec::new();

    check_missing_docs(relpath, &lines, &mut diags);

    let in_facade = relpath.starts_with("crates/sync/src/");
    // The serve wire modules carry the ban too: protocol encoding, metric
    // structs, and the request path must stay clock-free so latency is
    // only observed at the network edge (one justified site in net.rs).
    let serve_wire = [
        "crates/serve/src/net.rs",
        "crates/serve/src/proto.rs",
        "crates/serve/src/metrics.rs",
    ]
    .contains(&relpath);
    let determinism_critical = relpath.starts_with("crates/core/src/")
        || relpath.starts_with("crates/model/src/")
        || relpath.starts_with("crates/data/src/")
        || serve_wire;

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code.as_str();

        if !in_facade
            && (code.contains("std::sync::atomic") || code.contains("core::sync::atomic"))
            && !allowed(&lines, i, "atomic-import")
        {
            diags.push(Diagnostic {
                path: relpath.to_string(),
                line: lineno,
                rule: "atomic-import",
                message: "raw atomics are only allowed inside the bns-sync facade; \
                          use its types (AtomicF32Cell, ClaimCursor, Generation, Counter, \
                          PoisonFlag) or add one there"
                    .to_string(),
            });
        }

        if code.contains("Ordering::Relaxed")
            && !has_marker(&lines, i, "ordering:")
            && !allowed(&lines, i, "relaxed-justify")
        {
            diags.push(Diagnostic {
                path: relpath.to_string(),
                line: lineno,
                rule: "relaxed-justify",
                message: "Ordering::Relaxed requires an `// ordering:` comment justifying \
                          why no synchronization is needed here"
                    .to_string(),
            });
        }

        if code.contains("Ordering::SeqCst") && !allowed(&lines, i, "seqcst-ban") {
            diags.push(Diagnostic {
                path: relpath.to_string(),
                line: lineno,
                rule: "seqcst-ban",
                message: "Ordering::SeqCst is banned: name the actual Acquire/Release \
                          protocol instead of reaching for total order"
                    .to_string(),
            });
        }

        if contains_word(code, "unsafe")
            && !has_marker(&lines, i, "SAFETY:")
            && !allowed(&lines, i, "unsafe-safety")
        {
            diags.push(Diagnostic {
                path: relpath.to_string(),
                line: lineno,
                rule: "unsafe-safety",
                message: "unsafe requires a `// SAFETY:` comment stating the invariant \
                          that makes it sound"
                    .to_string(),
            });
        }

        if determinism_critical
            && (code.contains("SystemTime") || code.contains("Instant::now"))
            && !allowed(&lines, i, "wall-clock")
        {
            diags.push(Diagnostic {
                path: relpath.to_string(),
                line: lineno,
                rule: "wall-clock",
                message: "wall-clock reads are banned here: bns-core/bns-model/bns-data \
                          must be reproducible from their seeds alone, and the serve wire \
                          modules observe time only at the network edge; keep timing in \
                          reporting layers or justify the edge site with lint:allow"
                    .to_string(),
            });
        }
    }
    diags
}

/// `missing-docs`: every published crate root must deny undocumented
/// public items.
fn check_missing_docs(relpath: &str, lines: &[SplitLine], diags: &mut Vec<Diagnostic>) {
    let is_crate_root = relpath.starts_with("crates/")
        && relpath.ends_with("/src/lib.rs")
        && relpath.matches('/').count() == 3;
    if !is_crate_root || MISSING_DOCS_EXEMPT.contains(&relpath) {
        return;
    }
    let has_attr = lines
        .iter()
        .any(|l| l.code.contains("#![deny(missing_docs)]"));
    let allowed_in_header = lines
        .iter()
        .take(10)
        .any(|l| l.comment.contains("lint:allow(missing-docs)"));
    if !has_attr && !allowed_in_header {
        diags.push(Diagnostic {
            path: relpath.to_string(),
            line: 1,
            rule: "missing-docs",
            message: "published crate roots must carry #![deny(missing_docs)]".to_string(),
        });
    }
}

/// Whether the flagged line carries `lint:allow(<rule>)` in its own
/// comment or the contiguous comment block above it.
fn allowed(lines: &[SplitLine], i: usize, rule: &str) -> bool {
    let needle = format!("lint:allow({rule})");
    has_marker(lines, i, &needle)
}

/// Looks for `needle` in line `i`'s comment, or in the contiguous run of
/// comment-only lines immediately above it (a blank or code line ends the
/// run).
fn has_marker(lines: &[SplitLine], i: usize, needle: &str) -> bool {
    if lines[i].comment.contains(needle) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if !l.code.trim().is_empty() || l.comment.trim().is_empty() {
            return false;
        }
        if l.comment.contains(needle) {
            return true;
        }
    }
    false
}

/// Substring match with identifier boundaries on both sides.
fn contains_word(haystack: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0
            || !haystack[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post_ok = end == haystack.len()
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Cross-line lexer state.
enum LexState {
    Code,
    /// Inside nested `/* */` comments, with depth.
    Block(usize),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string, closed by `"` + this many `#`.
    RawStr(usize),
}

/// Splits source text into per-line (code, comment) parts. String, raw
/// string, and char literal *contents* are dropped from the code part (a
/// single space marks their position); all comment flavors — `//`, `///`,
/// `//!`, and `/* */` — land in the comment part.
fn split_lines(text: &str) -> Vec<SplitLine> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw_line in text.lines() {
        let chars: Vec<char> = raw_line.chars().collect();
        let mut line = SplitLine::default();
        let mut i = 0;
        let n = chars.len();
        while i < n {
            match state {
                LexState::Code => {
                    let c = chars[i];
                    if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                        line.comment.push_str(&raw_line[byte_at(raw_line, i)..]);
                        i = n;
                    } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == '"' {
                        line.code.push(' ');
                        state = LexState::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_is_ident(&line.code) {
                        if let Some((hashes, consumed)) = raw_string_open(&chars[i..]) {
                            line.code.push(' ');
                            state = LexState::RawStr(hashes);
                            i += consumed;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        i += char_or_lifetime(&chars[i..], &mut line.code);
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                LexState::Block(depth) => {
                    if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::Block(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(chars[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        i += 2; // skip the escaped char (incl. \" and \\)
                    } else if chars[i] == '"' {
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars[i + 1..], hashes) {
                        state = LexState::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Byte offset of char index `i` in `s` (for slicing the comment tail).
fn byte_at(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Matches `r"`, `r#"`, `br##"`, `b"` … at the head of `chars`; returns
/// (hash count, chars consumed through the opening quote).
fn raw_string_open(chars: &[char]) -> Option<(usize, usize)> {
    let mut i = 0;
    if chars[0] == 'b' {
        i = 1;
        if i < chars.len() && chars[i] == 'r' {
            i += 1;
        } else if i < chars.len() && chars[i] == '"' {
            return Some((0, i + 1)); // b"…": a plain byte string
        } else {
            return None;
        }
    } else if chars[0] == 'r' {
        i = 1;
    }
    let mut hashes = 0;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    // `r"` with zero hashes is still a raw string; `r`/`b` followed by
    // anything other than #*" was an identifier head.
    if i < chars.len() && chars[i] == '"' {
        Some((hashes, i + 1))
    } else {
        None
    }
}

fn closes_raw(rest: &[char], hashes: usize) -> bool {
    rest.len() >= hashes && rest[..hashes].iter().all(|&c| c == '#')
}

/// Consumes a `'…'` char literal (contents dropped) or passes a lifetime
/// tick through to the code part; returns chars consumed.
fn char_or_lifetime(chars: &[char], code: &mut String) -> usize {
    debug_assert_eq!(chars[0], '\'');
    if chars.len() >= 2 && chars[1] == '\\' {
        // Escaped char literal: consume through the closing quote.
        let mut i = 2;
        while i < chars.len() {
            if chars[i] == '\\' {
                i += 2;
                continue;
            }
            if chars[i] == '\'' {
                code.push(' ');
                return i + 1;
            }
            i += 1;
        }
        code.push(' ');
        return chars.len();
    }
    if chars.len() >= 3 && chars[2] == '\'' {
        code.push(' '); // 'x' char literal
        return 3;
    }
    code.push('\''); // lifetime tick: the following ident stays code
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_separates_line_comments() {
        let lines = split_lines("let x = 1; // trailing note\n// full comment\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("trailing note"));
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[1].comment.contains("full comment"));
    }

    #[test]
    fn splitter_drops_string_contents() {
        let lines = split_lines(r#"let s = "Ordering::SeqCst inside a string";"#);
        assert!(!lines[0].code.contains("SeqCst"));
        assert!(lines[0].code.contains("let s ="));
    }

    #[test]
    fn splitter_handles_raw_strings_and_multiline() {
        let text = "let s = r#\"Ordering::SeqCst\nstill \"inside\"#;\nlet y = 2;\n";
        let lines = split_lines(text);
        assert!(!lines[0].code.contains("SeqCst"));
        assert!(!lines[1].code.contains("still"));
        assert!(lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn splitter_handles_block_comments_and_nesting() {
        let text = "let a = 1; /* unsafe /* nested */ still comment */ let b = 2;\n";
        let lines = split_lines(text);
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(lines[0].code.contains("let b = 2;"));
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("still comment"));
    }

    #[test]
    fn splitter_distinguishes_char_literal_from_lifetime() {
        let lines = split_lines("fn f<'a>(x: &'a str) -> char { 'u' }\n");
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains('u'), "char literal content dropped");
    }

    #[test]
    fn doc_comments_are_not_code() {
        let text = "/// Mentions Ordering::SeqCst and unsafe in prose.\nlet x = 1;\n";
        let diags = lint_source("crates/x/src/a.rs", text);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn relaxed_needs_justification_marker() {
        let bad = "let v = c.load(Ordering::Relaxed);\n";
        assert_eq!(lint_source("crates/x/src/a.rs", bad).len(), 1);
        let same_line = "let v = c.load(Ordering::Relaxed); // ordering: stats only\n";
        assert!(lint_source("crates/x/src/a.rs", same_line).is_empty());
        let above = "// ordering: stats only\nlet v = c.load(Ordering::Relaxed);\n";
        assert!(lint_source("crates/x/src/a.rs", above).is_empty());
        let gap = "// ordering: stats only\n\nlet v = c.load(Ordering::Relaxed);\n";
        assert_eq!(
            lint_source("crates/x/src/a.rs", gap).len(),
            1,
            "a blank line must break the justification block"
        );
    }

    #[test]
    fn lint_allow_suppresses_exactly_its_rule() {
        let text = "// lint:allow(seqcst-ban) — fixture\nlet v = c.load(Ordering::SeqCst);\n";
        assert!(lint_source("crates/x/src/a.rs", text).is_empty());
        let wrong = "// lint:allow(relaxed-justify)\nlet v = c.load(Ordering::SeqCst);\n";
        assert_eq!(lint_source("crates/x/src/a.rs", wrong).len(), 1);
    }

    #[test]
    fn atomic_import_exempts_facade() {
        let text = "use std::sync::atomic::AtomicU32;\n";
        assert_eq!(lint_source("crates/serve/src/engine.rs", text).len(), 1);
        assert!(lint_source("crates/sync/src/cell.rs", text).is_empty());
    }

    #[test]
    fn wall_clock_scoped_to_core_model_and_data() {
        let text = "let t = Instant::now();\n";
        assert_eq!(lint_source("crates/core/src/trainer.rs", text).len(), 1);
        assert_eq!(lint_source("crates/model/src/hogwild.rs", text).len(), 1);
        assert_eq!(lint_source("crates/data/src/synthetic.rs", text).len(), 1);
        assert!(lint_source("crates/serve/src/engine.rs", text).is_empty());
    }

    #[test]
    fn wall_clock_covers_the_serve_wire_modules() {
        let text = "let t = Instant::now();\n";
        for file in ["net.rs", "proto.rs", "metrics.rs"] {
            let path = format!("crates/serve/src/{file}");
            assert_eq!(lint_source(&path, text).len(), 1, "{path} must be covered");
        }
        // The justified edge site pattern used in net.rs stays clean.
        let edge = "// lint:allow(wall-clock): the network edge observes time\n\
                    let t = Instant::now();\n";
        assert!(lint_source("crates/serve/src/net.rs", edge).is_empty());
        // Engine/query/index stay exempt — they are timed by callers.
        assert!(lint_source("crates/serve/src/query.rs", text).is_empty());
    }

    #[test]
    fn unsafe_wants_safety_comment_with_word_boundary() {
        assert_eq!(lint_source("src/a.rs", "unsafe { ptr.read() }\n").len(), 1);
        assert!(lint_source(
            "src/a.rs",
            "// SAFETY: checked above\nunsafe { ptr.read() }\n"
        )
        .is_empty());
        assert!(
            lint_source("src/a.rs", "let unsafe_count = 1;\n").is_empty(),
            "identifier containing the word must not match"
        );
    }

    #[test]
    fn missing_docs_rule_scopes_to_crate_roots() {
        assert_eq!(
            lint_source("crates/newcrate/src/lib.rs", "pub fn f() {}\n").len(),
            1
        );
        assert!(lint_source(
            "crates/newcrate/src/lib.rs",
            "//! Docs.\n#![deny(missing_docs)]\npub fn f() {}\n"
        )
        .is_empty());
        // Not a crate root: module files and the workspace facade root.
        assert!(lint_source("crates/newcrate/src/util.rs", "pub fn f() {}\n").is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "seqcst-ban",
            message: "nope".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/a.rs:7: seqcst-ban: nope");
    }
}
