//! Golden-diagnostics tests: the linter must flag every seeded fixture at
//! the exact `file:line`, honor the escape hatches, and pass the real
//! workspace.

use bns_lint::lint_workspace;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// `(path, line, rule)` of every expected fixture finding, in the
/// path-sorted order the linter reports.
const GOLDEN: [(&str, usize, &str); 6] = [
    ("crates/badcrate/src/lib.rs", 1, "missing-docs"),
    ("crates/core/src/wall_clock.rs", 2, "wall-clock"),
    ("src/atomic_import.rs", 1, "atomic-import"),
    ("src/relaxed.rs", 2, "relaxed-justify"),
    ("src/seqcst.rs", 2, "seqcst-ban"),
    ("src/unsafe_no_safety.rs", 2, "unsafe-safety"),
];

#[test]
fn fixtures_produce_exactly_the_golden_diagnostics() {
    let diags = lint_workspace(&fixture_root());
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule))
        .collect();
    let want: Vec<(String, usize, &str)> = GOLDEN
        .iter()
        .map(|&(p, l, r)| (p.to_string(), l, r))
        .collect();
    assert_eq!(got, want, "full diagnostics: {diags:#?}");
}

#[test]
fn clean_fixtures_stay_clean() {
    // The escape-hatch and tokenizer fixtures must contribute nothing.
    let diags = lint_workspace(&fixture_root());
    for clean in ["src/strings_and_docs.rs", "crates/sync/src/facade_ok.rs"] {
        assert!(
            diags.iter().all(|d| d.path != clean),
            "{clean} was flagged: {diags:?}"
        );
    }
}

#[test]
fn binary_reports_fixture_diagnostics_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_bns-lint"))
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run bns-lint");
    assert!(!out.status.success(), "must exit nonzero on violations");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), GOLDEN.len());
    for (line, (path, lineno, rule)) in lines.iter().zip(GOLDEN) {
        assert!(
            line.starts_with(&format!("{path}:{lineno}: {rule}: ")),
            "unexpected diagnostic line: {line}"
        );
    }
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("6 violation(s)"), "stderr: {stderr}");
}

#[test]
fn binary_is_clean_on_the_real_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_bns-lint"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run bns-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must lint clean; output:\n{stdout}"
    );
    assert_eq!(stdout.trim(), "bns-lint: clean");
}

#[test]
fn library_agrees_with_binary_on_the_workspace() {
    let diags = lint_workspace(&workspace_root());
    assert!(diags.is_empty(), "{diags:#?}");
}
