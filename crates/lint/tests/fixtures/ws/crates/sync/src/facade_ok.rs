use std::sync::atomic::{AtomicU32, Ordering};

pub struct Cell(AtomicU32);

impl Cell {
    pub fn get(&self) -> u32 {
        // ordering: Relaxed — fixture: the facade path may use raw atomics
        // (with justification), so this file must stay clean.
        self.0.load(Ordering::Relaxed)
    }
}
