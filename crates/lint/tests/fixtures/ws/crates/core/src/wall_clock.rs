pub fn timed() -> f64 {
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}

pub fn justified() -> f64 {
    // lint:allow(wall-clock) — fixture: reporting-only timing.
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}
