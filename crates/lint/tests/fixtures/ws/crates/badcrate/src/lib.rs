//! A published crate root that forgot `#![deny(missing_docs)]`.

pub fn undocumented_api() {}
