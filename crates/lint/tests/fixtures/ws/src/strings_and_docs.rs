//! Tokenizer fixture: every banned pattern below lives in a string, raw
//! string, or comment — none may be flagged. Ordering::SeqCst, unsafe,
//! std::sync::atomic, Instant::now.

/// Doc comments mentioning Ordering::Relaxed and unsafe are prose.
pub fn clean() -> (&'static str, &'static str) {
    let a = "Ordering::SeqCst and unsafe and std::sync::atomic";
    let b = r#"Ordering::Relaxed with "quotes" and unsafe"#;
    /* block comment: Ordering::SeqCst, unsafe, Instant::now() */
    (a, b)
}
