use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next(c: &AtomicUsize) -> usize {
    // ordering: fixture — justified so only the import above is flagged.
    c.fetch_add(1, Ordering::Relaxed)
}
