pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: fixture — a documented block must not be flagged.
    unsafe { *p }
}
