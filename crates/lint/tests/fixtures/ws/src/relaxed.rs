pub fn unjustified(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn justified(c: &AtomicU64) -> u64 {
    // ordering: Relaxed — fixture: a justified site must not be flagged.
    c.load(Ordering::Relaxed)
}
