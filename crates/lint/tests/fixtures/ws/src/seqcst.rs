pub fn banned(c: &AtomicBool) -> bool {
    c.load(Ordering::SeqCst)
}

pub fn escaped(c: &AtomicBool) -> bool {
    // lint:allow(seqcst-ban) — fixture: the escape hatch must suppress.
    c.load(Ordering::SeqCst)
}
