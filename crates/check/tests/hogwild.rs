//! Hogwild storage scenarios: racing `AtomicF32Cell` writers may lose
//! updates (the hogwild contract) but a reader can only ever observe a
//! value some writer actually stored — no tearing, no invented bits.
#![cfg(bns_model_check)]

use bns_sync::model::{check, spawn, Mode};
use bns_sync::AtomicF32Cell;
use std::sync::Arc;

#[test]
fn loads_only_observe_stored_values_exhaustive() {
    // Two writers store distinct sentinel values while a reader loads
    // twice; every observed value must be one of the three legal ones.
    // This is the property plain f32 (UB data race) could not promise.
    let report = check(
        "hogwild: no tearing across all schedules",
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || {
            let cell = Arc::new(AtomicF32Cell::new(0.0));
            let writers: Vec<_> = [1.5f32, -2.25]
                .into_iter()
                .map(|v| {
                    let cell = Arc::clone(&cell);
                    spawn(move || cell.store(v))
                })
                .collect();
            let reader = {
                let cell = Arc::clone(&cell);
                spawn(move || (cell.load(), cell.load()))
            };
            let (a, b) = reader.join();
            for w in writers {
                w.join();
            }
            let legal = |x: f32| x == 0.0 || x == 1.5 || x == -2.25;
            assert!(legal(a) && legal(b), "torn read: {a} {b}");
            // ordering: quiesced final read — both writers joined.
            let last = cell.load();
            assert!(last == 1.5 || last == -2.25, "final value lost: {last}");
        },
    );
    assert!(report.complete);
    assert!(report.executions > 1);
}

#[test]
fn store_load_round_trip_under_contention() {
    // A worker that writes its own cell and reads it back must see its own
    // value bit-exactly, no matter how a contending writer on a *different*
    // cell of the same table is scheduled — rows with a single writer stay
    // exact, which is what user-sharded training relies on.
    let report = check(
        "hogwild: private rows round-trip bit-exactly",
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || {
            let table: Arc<Vec<AtomicF32Cell>> =
                Arc::new((0..2).map(|_| AtomicF32Cell::new(0.0)).collect());
            let own = {
                let table = Arc::clone(&table);
                spawn(move || {
                    table[0].store(3.75);
                    table[0].load()
                })
            };
            let other = {
                let table = Arc::clone(&table);
                spawn(move || table[1].store(-1.5))
            };
            let got = own.join();
            other.join();
            assert_eq!(
                got.to_bits(),
                3.75f32.to_bits(),
                "single-writer row diverged"
            );
        },
    );
    assert!(report.complete);
}

#[test]
fn racing_rmw_loses_updates_but_stays_legal() {
    // Document the hogwild trade precisely: a load/compute/store sequence
    // can lose one increment under contention, but the result is always
    // one of the two legal outcomes — never garbage. (This is the scenario
    // that would fail if someone "simplified" AtomicF32Cell to plain f32.)
    let report = check(
        "hogwild: lost updates bounded to legal outcomes",
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || {
            let cell = Arc::new(AtomicF32Cell::new(0.0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    spawn(move || {
                        let v = cell.load();
                        cell.store(v + 1.0);
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            // ordering: quiesced read after joins.
            let v = cell.load();
            assert!(v == 1.0 || v == 2.0, "impossible sum: {v}");
        },
    );
    assert!(report.complete);
}
