//! Epoch-merge scenarios: per-shard [`PosteriorStats`] merged under the
//! facade mutex equal the serial sum across every interleaving — the
//! barrier-merge step of the hogwild trainer (`bns_core::parallel`).
#![cfg(bns_model_check)]

use bns_core::PosteriorStats;
use bns_sync::model::{check, spawn, Mode};
use bns_sync::Mutex;
use std::sync::Arc;

fn shard_stats(w: u64) -> PosteriorStats {
    PosteriorStats {
        draws: 10 + w,
        info_sum: 0.5 * (w + 1) as f64,
        likelihood_sum: 0.25 * (w + 1) as f64,
        prior_sum: 0.125 * (w + 1) as f64,
        unbias_sum: 0.0625 * (w + 1) as f64,
        risk_sum: -0.03125 * (w + 1) as f64,
    }
}

#[test]
fn epoch_merge_equals_serial_sum_across_interleavings() {
    let mut expected = PosteriorStats::default();
    for w in 0..3 {
        expected.merge(&shard_stats(w));
    }
    let report = check(
        "posterior: 3-shard merge over all schedules",
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || {
            let total = Arc::new(Mutex::new(PosteriorStats::default()));
            let workers: Vec<_> = (0..3)
                .map(|w| {
                    let total = Arc::clone(&total);
                    spawn(move || total.lock().merge(&shard_stats(w)))
                })
                .collect();
            for worker in workers {
                worker.join();
            }
            let got = total.lock();
            assert_eq!(got.draws, expected.draws, "a shard's draws went missing");
            // f64 addition is commutative over these exact dyadic values,
            // so every merge order must land on identical bits.
            assert_eq!(got.info_sum.to_bits(), expected.info_sum.to_bits());
            assert_eq!(got.unbias_sum.to_bits(), expected.unbias_sum.to_bits());
            assert_eq!(got.risk_sum.to_bits(), expected.risk_sum.to_bits());
        },
    );
    assert!(report.complete, "state space must be fully enumerated");
    assert!(
        report.executions > 1,
        "merge order must branch the schedule"
    );
}
