//! Work-stealing scenarios: every index is claimed exactly once — the
//! contract `serve_parallel` (crates/serve/src/engine.rs) builds on — and
//! the checker catches the non-atomic variant that breaks it.
#![cfg(bns_model_check)]

use bns_sync::model::{check, run, spawn, yield_now, Mode};
use bns_sync::{ClaimCursor, Counter};
use std::sync::Arc;

/// The claim loop of `serve_parallel`, reduced to its protocol: workers
/// visit their own shard first, then steal from the others, claiming via
/// `ClaimCursor`. Returns each worker's claimed indices.
fn steal_protocol(n_items: usize, n_workers: usize) -> Vec<Vec<usize>> {
    let chunk = n_items.div_ceil(n_workers);
    let bounds: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..n_workers)
            .map(|s| (s * chunk, ((s + 1) * chunk).min(n_items)))
            .collect(),
    );
    let cursors: Arc<Vec<ClaimCursor>> =
        Arc::new(bounds.iter().map(|&(lo, _)| ClaimCursor::new(lo)).collect());
    let handles: Vec<_> = (0..n_workers)
        .map(|w| {
            let bounds = Arc::clone(&bounds);
            let cursors = Arc::clone(&cursors);
            spawn(move || {
                let mut mine = Vec::new();
                for visit in 0..bounds.len() {
                    let shard = (w + visit) % bounds.len();
                    let (_, end) = bounds[shard];
                    loop {
                        let idx = cursors[shard].claim();
                        if idx >= end {
                            break;
                        }
                        mine.push(idx);
                    }
                }
                mine
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join()).collect()
}

fn assert_exactly_once(parts: Vec<Vec<usize>>, n_items: usize) {
    let mut all: Vec<usize> = parts.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..n_items).collect::<Vec<_>>(),
        "an index was dropped or claimed twice"
    );
}

#[test]
fn every_index_claimed_exactly_once_exhaustive() {
    let report = check(
        "steal: 4 items / 2 workers, all schedules",
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || assert_exactly_once(steal_protocol(4, 2), 4),
    );
    assert!(report.complete, "state space must be fully enumerated");
    assert!(
        report.executions > 10,
        "claim races must branch the schedule"
    );
}

#[test]
fn every_index_claimed_exactly_once_randomized() {
    let report = check(
        "steal: 12 items / 3 workers, seeded random",
        Mode::Random {
            seed: 0xB2D5,
            iterations: 300,
        },
        || assert_exactly_once(steal_protocol(12, 3), 12),
    );
    assert_eq!(report.executions, 300);
}

/// The broken variant: claim with a non-atomic get-then-add over a
/// `Counter` instead of `ClaimCursor`'s atomic RMW. The checker must find
/// a double claim, and the recorded schedule must replay to it.
fn broken_claim_scenario() {
    let cursor = Arc::new(Counter::new());
    let n_items = 2usize;
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            spawn(move || {
                let mut mine = Vec::new();
                loop {
                    // BUG under test: read-then-increment is not atomic.
                    let idx = cursor.get() as usize;
                    yield_now();
                    cursor.incr();
                    if idx >= n_items {
                        break;
                    }
                    mine.push(idx);
                }
                mine
            })
        })
        .collect();
    let parts: Vec<Vec<usize>> = handles.into_iter().map(|h| h.join()).collect();
    assert_exactly_once(parts, n_items);
}

#[test]
fn non_atomic_claim_is_caught_and_replays() {
    let cex = run(
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        broken_claim_scenario,
    )
    .expect_err("get-then-incr claims must double-claim under some schedule");
    assert!(
        cex.message.contains("dropped or claimed twice"),
        "unexpected failure: {}",
        cex.message
    );
    let replay = run(
        Mode::Replay {
            schedule: cex.schedule.clone(),
        },
        broken_claim_scenario,
    )
    .expect_err("the counterexample schedule must reproduce the failure");
    assert_eq!(replay.message, cex.message);
    assert_eq!(replay.schedule, cex.schedule);
}
