//! Cache-swap scenarios over the REAL [`bns_serve::TopKCache`]: after a
//! generation bump, no stale-generation entry can be served — and the
//! read-generation-once discipline of `QueryEngine::top_k_into` is exactly
//! what makes that true (the broken re-read variant is caught below).
//!
//! This suite is the regression net for the `swap_artifact` ordering audit
//! (ISSUE 6 satellite): `Generation::bump` publishes with Release and
//! `Generation::current` reads Acquire, and the invariant holds across
//! every explored interleaving of queries and swaps.
#![cfg(bns_model_check)]

use bns_serve::TopKCache;
use bns_sync::model::{check, run, spawn, Mode};
use bns_sync::{Generation, Mutex};
use std::sync::Arc;

const KEY: u64 = 7;

/// One query with the production protocol: observe the generation ONCE,
/// then use that observation for both the lookup and the insert. The
/// "artifact" at generation `g` is modeled as the list `[g]`, so a list
/// from the wrong artifact is immediately visible.
fn query_correct(generation: &Generation, cache: &Mutex<TopKCache>) {
    let g = generation.current();
    let mut cache = cache.lock();
    if let Some(items) = cache.get(KEY, g) {
        assert_eq!(items, [g as u32], "hit at generation {g} served stale data");
        return;
    }
    let computed = vec![g as u32];
    cache.insert(KEY, g, &computed);
}

/// The broken variant: compute under the first observation, but stamp the
/// insert with a RE-READ of the generation. A swap between the two reads
/// stamps old-artifact data as fresh.
fn query_buggy(generation: &Generation, cache: &Mutex<TopKCache>) {
    let g = generation.current();
    let computed = vec![g as u32];
    let stamp = generation.current(); // BUG under test: second read
    let mut cache = cache.lock();
    if let Some(items) = cache.get(KEY, stamp) {
        assert_eq!(
            items,
            [stamp as u32],
            "hit at generation {stamp} served stale data"
        );
        return;
    }
    cache.insert(KEY, stamp, &computed);
}

fn swap_scenario(query: fn(&Generation, &Mutex<TopKCache>)) {
    let generation = Arc::new(Generation::new());
    let cache = Arc::new(Mutex::new(TopKCache::new(4)));

    let swapper = {
        let generation = Arc::clone(&generation);
        spawn(move || {
            generation.bump();
        })
    };
    let querier = {
        let generation = Arc::clone(&generation);
        let cache = Arc::clone(&cache);
        spawn(move || query(&generation, &cache))
    };
    querier.join();
    swapper.join();

    // Post-swap serve: whatever the interleaving did, a query at the final
    // generation must never see a stale-generation list.
    let g = generation.current();
    let mut cache = cache.lock();
    if let Some(items) = cache.get(KEY, g) {
        assert_eq!(items, [g as u32], "stale entry survived the swap");
    }
}

#[test]
fn no_stale_entry_survives_a_swap_exhaustive() {
    let report = check(
        "cache-swap: correct protocol over all schedules",
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || swap_scenario(query_correct),
    );
    assert!(report.complete, "state space must be fully enumerated");
    assert!(report.executions > 1);
}

#[test]
fn concurrent_queries_and_swap_randomized() {
    // Two queriers and a swapper over the same key: bigger interleaving
    // space, seeded random exploration.
    let report = check(
        "cache-swap: 2 queriers + swapper, seeded random",
        Mode::Random {
            seed: 0xCAC4E,
            iterations: 400,
        },
        || {
            let generation = Arc::new(Generation::new());
            let cache = Arc::new(Mutex::new(TopKCache::new(4)));
            let swapper = {
                let generation = Arc::clone(&generation);
                spawn(move || {
                    generation.bump();
                })
            };
            let queriers: Vec<_> = (0..2)
                .map(|_| {
                    let generation = Arc::clone(&generation);
                    let cache = Arc::clone(&cache);
                    spawn(move || query_correct(&generation, &cache))
                })
                .collect();
            for q in queriers {
                q.join();
            }
            swapper.join();
            let g = generation.current();
            let mut cache = cache.lock();
            if let Some(items) = cache.get(KEY, g) {
                assert_eq!(items, [g as u32], "stale entry survived the swap");
            }
        },
    );
    assert_eq!(report.executions, 400);
}

#[test]
fn generation_restamping_bug_is_caught_and_replays() {
    let cex = run(
        Mode::Exhaustive {
            max_executions: 200_000,
        },
        || swap_scenario(query_buggy),
    )
    .expect_err("re-reading the generation at insert time must leak stale data");
    assert!(
        cex.message.contains("stale"),
        "unexpected failure: {}",
        cex.message
    );
    let replay = run(
        Mode::Replay {
            schedule: cex.schedule.clone(),
        },
        || swap_scenario(query_buggy),
    )
    .expect_err("the counterexample schedule must reproduce the failure");
    assert_eq!(replay.message, cex.message);
}
