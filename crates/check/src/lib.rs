//! Model-check scenario suite for the workspace's lock-free protocols.
//!
//! This crate holds no runtime code — its value is the integration tests
//! under `tests/`, which drive the deterministic interleaving scheduler in
//! [`bns_sync::model`] against the protocols the serve and training paths
//! rely on: work-stealing claim exclusivity, hogwild store/load integrity,
//! the cache-generation swap protocol, and `PosteriorStats` merges.
//!
//! The scenarios are gated behind `--cfg bns_model_check` (so they compile
//! to nothing in tier-1 builds, where the facade types are *not*
//! instrumented and exploring interleavings would be meaningless). Run them
//! the way `ci.sh` does:
//!
//! ```text
//! RUSTFLAGS="-C target-cpu=native --cfg bns_model_check" \
//!     cargo test -p bns-check
//! ```
//!
//! Note that `RUSTFLAGS` *replaces* the `[build] rustflags` from
//! `.cargo/config.toml`, which is why the invocation restates
//! `-C target-cpu=native`.
//!
//! Each test follows the same shape: express the protocol with the facade
//! types ([`bns_sync::AtomicF32Cell`], [`bns_sync::ClaimCursor`],
//! [`bns_sync::Generation`], [`bns_sync::Mutex`]), assert its invariant,
//! and hand it to [`bns_sync::model::check`] under an exhaustive (small
//! state space) or seeded-random (larger) exploration mode. Several tests
//! also include a deliberately broken variant and assert the checker
//! *finds* the bug and that the recorded schedule replays to the same
//! failure — guarding the guard.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

// Intentionally empty: see the crate docs and `tests/`.
