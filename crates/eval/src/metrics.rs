//! Ranking metrics.
//!
//! The paper reports Precision, Recall and NDCG at K ∈ {5, 10, 20}
//! (Tables II–IV). HitRate, MAP, MRR and AUC are included for the extended
//! analyses and tests. All metrics take the ranked recommendation list and
//! the user's **sorted** held-out positive set.

/// Whether `item` is in the sorted `relevant` set.
#[inline]
fn is_relevant(relevant: &[u32], item: u32) -> bool {
    relevant.binary_search(&item).is_ok()
}

/// Precision@K: fraction of the top-K that is relevant. Conventionally
/// divides by `k` even when fewer than `k` items were recommendable.
pub fn precision_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|&&i| is_relevant(relevant, i))
        .count();
    hits as f64 / k as f64
}

/// Recall@K: fraction of the relevant set retrieved in the top-K.
pub fn recall_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|&&i| is_relevant(relevant, i))
        .count();
    hits as f64 / relevant.len() as f64
}

/// NDCG@K with binary relevance: `DCG = Σ 1/log₂(rank + 1)` over relevant
/// hits (1-based ranks), normalized by the ideal DCG of
/// `min(k, |relevant|)` front-loaded hits.
pub fn ndcg_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, &i)| is_relevant(relevant, i))
        .map(|(rank0, _)| 1.0 / ((rank0 as f64 + 2.0).log2()))
        .sum();
    let ideal_hits = k.min(relevant.len());
    let idcg: f64 = (0..ideal_hits)
        .map(|r| 1.0 / ((r as f64 + 2.0).log2()))
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// HitRate@K: 1 if any relevant item appears in the top-K.
pub fn hit_rate(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if ranked.iter().take(k).any(|&i| is_relevant(relevant, i)) {
        1.0
    } else {
        0.0
    }
}

/// Average precision over the full ranked list (AP; mean over users = MAP).
pub fn average_precision(ranked: &[u32], relevant: &[u32]) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (rank0, &i) in ranked.iter().enumerate() {
        if is_relevant(relevant, i) {
            hits += 1;
            sum += hits as f64 / (rank0 + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Reciprocal rank of the first relevant item (0 when none appears).
pub fn reciprocal_rank(ranked: &[u32], relevant: &[u32]) -> f64 {
    for (rank0, &i) in ranked.iter().enumerate() {
        if is_relevant(relevant, i) {
            return 1.0 / (rank0 + 1) as f64;
        }
    }
    0.0
}

/// AUC over a full score vector: probability that a random relevant item
/// outranks a random irrelevant one, with ties counted half. `masked`
/// items (train positives) are excluded from both sides. This is the
/// metric the BPR objective of Eq. (1) is the smooth analogue of (§III-D).
pub fn auc(scores: &[f32], relevant: &[u32], masked: &[u32]) -> f64 {
    debug_assert!(relevant.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(masked.windows(2).all(|w| w[0] < w[1]));
    let mut pos: Vec<f32> = Vec::with_capacity(relevant.len());
    let mut neg: Vec<f32> = Vec::new();
    let mut rel_idx = 0usize;
    let mut mask_idx = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        if mask_idx < masked.len() && masked[mask_idx] == i {
            mask_idx += 1;
            continue;
        }
        if rel_idx < relevant.len() && relevant[rel_idx] == i {
            rel_idx += 1;
            pos.push(s);
        } else {
            neg.push(s);
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // O(n log n) via rank-sum rather than the O(|pos|·|neg|) double loop.
    neg.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let mut wins = 0.0f64;
    for &p in &pos {
        let below = neg.partition_point(|&x| x < p);
        let equal = neg.partition_point(|&x| x <= p) - below;
        wins += below as f64 + 0.5 * equal as f64;
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // ranked = [9, 4, 7, 1, 0]; relevant = {4, 1, 5}.
    const RANKED: [u32; 5] = [9, 4, 7, 1, 0];
    const RELEVANT: [u32; 3] = [1, 4, 5];

    #[test]
    fn precision_reference() {
        assert_eq!(precision_at_k(&RANKED, &RELEVANT, 1), 0.0);
        assert_eq!(precision_at_k(&RANKED, &RELEVANT, 2), 0.5);
        assert_eq!(precision_at_k(&RANKED, &RELEVANT, 4), 0.5);
        assert_eq!(precision_at_k(&RANKED, &RELEVANT, 0), 0.0);
    }

    #[test]
    fn recall_reference() {
        assert_eq!(recall_at_k(&RANKED, &RELEVANT, 2), 1.0 / 3.0);
        assert_eq!(recall_at_k(&RANKED, &RELEVANT, 5), 2.0 / 3.0);
        assert_eq!(recall_at_k(&RANKED, &[], 5), 0.0);
    }

    #[test]
    fn ndcg_reference() {
        // Hits at ranks 2 and 4 (1-based): DCG = 1/log2(3) + 1/log2(5).
        let dcg = 1.0 / 3f64.log2() + 1.0 / 5f64.log2();
        // Ideal: 3 hits at ranks 1..3 → IDCG = 1 + 1/log2(3) + 1/2.
        let idcg = 1.0 + 1.0 / 3f64.log2() + 0.5;
        let expected = dcg / idcg;
        assert!((ndcg_at_k(&RANKED, &RELEVANT, 5) - expected).abs() < 1e-12);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let ranked = [1u32, 4, 5, 9, 0];
        assert!((ndcg_at_k(&ranked, &RELEVANT, 5) - 1.0).abs() < 1e-12);
        assert!((ndcg_at_k(&ranked, &RELEVANT, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_no_hits_is_zero() {
        assert_eq!(ndcg_at_k(&[7, 8, 9], &[1, 2], 3), 0.0);
        assert_eq!(ndcg_at_k(&RANKED, &[], 3), 0.0);
    }

    #[test]
    fn hit_rate_reference() {
        assert_eq!(hit_rate(&RANKED, &RELEVANT, 1), 0.0);
        assert_eq!(hit_rate(&RANKED, &RELEVANT, 2), 1.0);
        assert_eq!(hit_rate(&RANKED, &[], 5), 0.0);
    }

    #[test]
    fn map_reference() {
        // Hits at ranks 2 (precision 1/2) and 4 (precision 2/4).
        let expected = (0.5 + 0.5) / 3.0;
        assert!((average_precision(&RANKED, &RELEVANT) - expected).abs() < 1e-12);
    }

    #[test]
    fn mrr_reference() {
        assert_eq!(reciprocal_rank(&RANKED, &RELEVANT), 0.5);
        assert_eq!(reciprocal_rank(&[1, 2], &[1]), 1.0);
        assert_eq!(reciprocal_rank(&[2, 3], &[9]), 0.0);
    }

    #[test]
    fn auc_reference() {
        // scores: item0 = 0.9 (relevant), item1 = 0.5, item2 = 0.1 → AUC 1.
        assert_eq!(auc(&[0.9, 0.5, 0.1], &[0], &[]), 1.0);
        // Relevant item at the bottom → AUC 0.
        assert_eq!(auc(&[0.1, 0.5, 0.9], &[0], &[]), 0.0);
        // Middle: relevant beats 1 of 2 → 0.5.
        assert_eq!(auc(&[0.5, 0.9, 0.1], &[0], &[]), 0.5);
    }

    #[test]
    fn auc_handles_masking_and_ties() {
        // Mask the top negative away: AUC becomes 1.
        assert_eq!(auc(&[0.5, 0.9, 0.1], &[0], &[1]), 1.0);
        // All-ties → 0.5.
        assert_eq!(auc(&[0.5, 0.5, 0.5], &[0], &[]), 0.5);
        // Degenerate sides → 0.5.
        assert_eq!(auc(&[0.5], &[0], &[]), 0.5);
    }

    #[test]
    fn metrics_bounded_in_unit_interval() {
        let ranked: Vec<u32> = (0..50).collect();
        let relevant: Vec<u32> = (0..50).filter(|i| i % 3 == 0).collect();
        for k in [1usize, 5, 10, 50] {
            for v in [
                precision_at_k(&ranked, &relevant, k),
                recall_at_k(&ranked, &relevant, k),
                ndcg_at_k(&ranked, &relevant, k),
                hit_rate(&ranked, &relevant, k),
            ] {
                assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
            }
        }
    }
}
