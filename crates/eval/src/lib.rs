#![deny(missing_docs)]

//! # bns-eval — evaluation substrate for the BNS reproduction
//!
//! * [`topk`] — top-K extraction from score vectors with train-positive
//!   masking.
//! * [`metrics`] — Precision@K, Recall@K, NDCG@K (the paper's Table II–IV
//!   metrics) plus HitRate/MAP/MRR/AUC used in the extended analyses.
//! * [`ranking`] — the full ranking protocol: score every evaluable user,
//!   mask training positives, average metrics (parallelized with std::thread
//!   scoped threads).
//! * [`quality`] — the paper's sampling-quality instruments: TNR (Eq. 33)
//!   and INF (Eq. 34) per-epoch trackers and the Fig. 1 score-distribution
//!   probe, implemented as [`bns_core::TrainObserver`]s.

pub mod beyond;
pub mod curves;
pub mod metrics;
pub mod quality;
pub mod ranking;
pub mod topk;

pub use beyond::{beyond_accuracy, BeyondAccuracy};
pub use curves::{CurvePoint, LearningCurve};
pub use metrics::{
    auc, average_precision, hit_rate, ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank,
};
pub use quality::{QualityTracker, ScoreDistributionProbe};
pub use ranking::{evaluate_ranking, MetricRow, RankingReport};
pub use topk::{top_k_masked, top_k_masked_into, TopKBuffer};
