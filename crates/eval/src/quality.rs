//! Sampling-quality instruments — the paper's Eq. (33)/(34) and Fig. 1/4.
//!
//! During training, every sampled negative `j` of user `u` is labeled
//! against the ground truth: it is a **false negative** if `(u, j)` appears
//! in the held-out test set, a **true negative** otherwise ("by flipping
//! labels of ground-truth records in the test set", §IV-A4). Per epoch:
//!
//! * `TNR = #TN / (#TN + #FN)` — Eq. (33), the unbiasedness of the sampler;
//! * `INF = Σ info(j)·sgn(j) / (#TN + #FN)` — Eq. (34) with `sgn = +1` for
//!   a true negative and `−1` as the penalty for sampling a false negative.
//!
//! [`ScoreDistributionProbe`] reproduces Fig. 1: at chosen epochs it records
//! the predicted scores of true-negative and false-negative populations so
//! the harness can print their densities.

use bns_core::TrainObserver;
use bns_data::Dataset;
use bns_model::Scorer;
use bns_stats::GaussianKde;
use serde::{Deserialize, Serialize};

/// Per-epoch sampling-quality measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochQuality {
    /// Epoch index.
    pub epoch: usize,
    /// Sampled true negatives.
    pub tn: usize,
    /// Sampled false negatives.
    pub fn_: usize,
    /// True-negative rate (Eq. 33).
    pub tnr: f64,
    /// Signed mean informativeness (Eq. 34).
    pub inf: f64,
}

/// Tracks TNR and INF per epoch (the Fig. 4 curves).
pub struct QualityTracker<'a> {
    dataset: &'a Dataset,
    tn: usize,
    fn_: usize,
    signed_info: f64,
    history: Vec<EpochQuality>,
}

impl<'a> QualityTracker<'a> {
    /// Creates a tracker labeling against `dataset`'s test split.
    pub fn new(dataset: &'a Dataset) -> Self {
        Self {
            dataset,
            tn: 0,
            fn_: 0,
            signed_info: 0.0,
            history: Vec::new(),
        }
    }

    /// Completed per-epoch measurements.
    pub fn history(&self) -> &[EpochQuality] {
        &self.history
    }

    /// Mean TNR over all completed epochs.
    pub fn mean_tnr(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(|q| q.tnr).sum::<f64>() / self.history.len() as f64
    }

    /// TNR over the last `n` epochs (the "after enough training" regime the
    /// paper discusses for INF/TNR comparisons).
    pub fn tail_tnr(&self, n: usize) -> f64 {
        let tail = &self.history[self.history.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|q| q.tnr).sum::<f64>() / tail.len() as f64
    }
}

impl TrainObserver for QualityTracker<'_> {
    fn on_triple(&mut self, _epoch: usize, u: u32, _pos: u32, neg: u32, info: f32) {
        if self.dataset.is_false_negative(u, neg) {
            self.fn_ += 1;
            self.signed_info -= info as f64; // sgn(j) = −1 penalty
        } else {
            self.tn += 1;
            self.signed_info += info as f64; // sgn(j) = +1
        }
    }

    fn on_epoch_end(&mut self, epoch: usize, _model: &dyn Scorer) {
        let total = self.tn + self.fn_;
        let (tnr, inf) = if total == 0 {
            (0.0, 0.0)
        } else {
            (
                self.tn as f64 / total as f64,
                self.signed_info / total as f64,
            )
        };
        self.history.push(EpochQuality {
            epoch,
            tn: self.tn,
            fn_: self.fn_,
            tnr,
            inf,
        });
        self.tn = 0;
        self.fn_ = 0;
        self.signed_info = 0.0;
    }
}

/// Recorded score populations at one probed epoch (Fig. 1 raw material).
#[derive(Debug, Clone)]
pub struct ScoreSnapshot {
    /// Epoch index.
    pub epoch: usize,
    /// Scores of sampled-population true negatives.
    pub tn_scores: Vec<f64>,
    /// Scores of false negatives (test positives).
    pub fn_scores: Vec<f64>,
}

/// A density curve as `(x, density)` points.
pub type DensityCurve = Vec<(f64, f64)>;

impl ScoreSnapshot {
    /// KDE density curves `(x, g(x))` / `(x, h(x))` on a shared grid —
    /// exactly what Fig. 1 plots. Returns `None` when a population is empty.
    pub fn density_curves(&self, points: usize) -> Option<(DensityCurve, DensityCurve)> {
        if self.tn_scores.is_empty() || self.fn_scores.is_empty() {
            return None;
        }
        let lo = self
            .tn_scores
            .iter()
            .chain(&self.fn_scores)
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .tn_scores
            .iter()
            .chain(&self.fn_scores)
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let tn = GaussianKde::new(&self.tn_scores).ok()?;
        let fnd = GaussianKde::new(&self.fn_scores).ok()?;
        Some((tn.grid(lo, hi, points), fnd.grid(lo, hi, points)))
    }

    /// Mean score of each population; the separation (fn − tn) grows with
    /// training if the paper's order relation holds.
    pub fn mean_separation(&self) -> f64 {
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        mean(&self.fn_scores) - mean(&self.tn_scores)
    }
}

/// Records TN/FN score populations at chosen epochs (Fig. 1).
///
/// To bound memory on large catalogs the probe examines at most
/// `max_users` users and caps the recorded true negatives per user at
/// `tn_per_user` (false negatives are always all recorded — they are rare).
pub struct ScoreDistributionProbe<'a> {
    dataset: &'a Dataset,
    watch_epochs: Vec<usize>,
    max_users: usize,
    tn_per_user: usize,
    snapshots: Vec<ScoreSnapshot>,
}

impl<'a> ScoreDistributionProbe<'a> {
    /// Probes `dataset` at the given epochs.
    pub fn new(dataset: &'a Dataset, watch_epochs: Vec<usize>) -> Self {
        Self {
            dataset,
            watch_epochs,
            max_users: 500,
            tn_per_user: 50,
            snapshots: Vec::new(),
        }
    }

    /// Adjusts the memory caps.
    pub fn with_limits(mut self, max_users: usize, tn_per_user: usize) -> Self {
        self.max_users = max_users.max(1);
        self.tn_per_user = tn_per_user.max(1);
        self
    }

    /// Snapshots recorded so far.
    pub fn snapshots(&self) -> &[ScoreSnapshot] {
        &self.snapshots
    }
}

impl TrainObserver for ScoreDistributionProbe<'_> {
    fn on_triple(&mut self, _: usize, _: u32, _: u32, _: u32, _: f32) {}

    fn on_epoch_end(&mut self, epoch: usize, model: &dyn Scorer) {
        if !self.watch_epochs.contains(&epoch) {
            return;
        }
        let n_items = self.dataset.n_items() as usize;
        let mut scores = vec![0.0f32; n_items];
        let mut tn_scores = Vec::new();
        let mut fn_scores = Vec::new();
        let users = self.dataset.evaluable_users();
        for &u in users.iter().take(self.max_users) {
            model.score_all(u, &mut scores);
            // All test positives (false negatives) + a stride of TNs.
            for &i in self.dataset.test().items_of(u) {
                fn_scores.push(scores[i as usize] as f64);
            }
            let stride = (n_items / self.tn_per_user).max(1);
            let mut taken = 0usize;
            let mut idx = (u as usize) % stride; // desynchronize across users
            while idx < n_items && taken < self.tn_per_user {
                let i = idx as u32;
                if self.dataset.is_true_negative(u, i) {
                    tn_scores.push(scores[idx] as f64);
                    taken += 1;
                }
                idx += stride;
            }
        }
        self.snapshots.push(ScoreSnapshot {
            epoch,
            tn_scores,
            fn_scores,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::scorer::FixedScorer;

    fn dataset() -> Dataset {
        let train = Interactions::from_pairs(2, 6, &[(0, 0), (1, 1)]).unwrap();
        let test = Interactions::from_pairs(2, 6, &[(0, 2), (1, 3)]).unwrap();
        Dataset::new("q", train, test).unwrap()
    }

    #[test]
    fn tracker_counts_and_rates() {
        let d = dataset();
        let mut t = QualityTracker::new(&d);
        let model = FixedScorer::new(2, 6, vec![0.0; 12]);
        // Epoch 0: two TNs (items 4, 5 for user 0) and one FN (item 2).
        t.on_triple(0, 0, 0, 4, 0.5);
        t.on_triple(0, 0, 0, 5, 0.5);
        t.on_triple(0, 0, 0, 2, 0.8);
        t.on_epoch_end(0, &model);
        let q = t.history()[0];
        assert_eq!(q.tn, 2);
        assert_eq!(q.fn_, 1);
        assert!((q.tnr - 2.0 / 3.0).abs() < 1e-12);
        // INF = (0.5 + 0.5 − 0.8)/3.
        assert!((q.inf - 0.2 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn tracker_resets_between_epochs() {
        let d = dataset();
        let mut t = QualityTracker::new(&d);
        let model = FixedScorer::new(2, 6, vec![0.0; 12]);
        t.on_triple(0, 0, 0, 4, 0.5);
        t.on_epoch_end(0, &model);
        t.on_triple(1, 1, 1, 3, 0.9); // FN for user 1
        t.on_epoch_end(1, &model);
        assert_eq!(t.history().len(), 2);
        assert_eq!(t.history()[1].tn, 0);
        assert_eq!(t.history()[1].fn_, 1);
        assert_eq!(t.history()[1].tnr, 0.0);
        assert!((t.history()[1].inf + 0.9).abs() < 1e-6);
    }

    #[test]
    fn tracker_empty_epoch_is_zero() {
        let d = dataset();
        let mut t = QualityTracker::new(&d);
        let model = FixedScorer::new(2, 6, vec![0.0; 12]);
        t.on_epoch_end(0, &model);
        assert_eq!(t.history()[0].tnr, 0.0);
        assert_eq!(t.history()[0].inf, 0.0);
    }

    #[test]
    fn mean_and_tail_tnr() {
        let d = dataset();
        let mut t = QualityTracker::new(&d);
        let model = FixedScorer::new(2, 6, vec![0.0; 12]);
        // Epoch 0: TNR 1; epoch 1: TNR 0.
        t.on_triple(0, 0, 0, 4, 0.1);
        t.on_epoch_end(0, &model);
        t.on_triple(1, 0, 0, 2, 0.1);
        t.on_epoch_end(1, &model);
        assert!((t.mean_tnr() - 0.5).abs() < 1e-12);
        assert_eq!(t.tail_tnr(1), 0.0);
        assert!((t.tail_tnr(10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probe_records_only_watched_epochs() {
        let d = dataset();
        let mut p = ScoreDistributionProbe::new(&d, vec![1]);
        let model = FixedScorer::new(2, 6, (0..12).map(|i| i as f32).collect());
        p.on_epoch_end(0, &model);
        assert!(p.snapshots().is_empty());
        p.on_epoch_end(1, &model);
        assert_eq!(p.snapshots().len(), 1);
        let snap = &p.snapshots()[0];
        assert_eq!(snap.epoch, 1);
        // Both users contribute their single test positive.
        assert_eq!(snap.fn_scores.len(), 2);
        assert!(!snap.tn_scores.is_empty());
    }

    #[test]
    fn probe_separation_reflects_scores() {
        let d = dataset();
        let mut p = ScoreDistributionProbe::new(&d, vec![0]);
        // Give test positives (items 2 for u0, 3 for u1) clearly higher
        // scores than everything else.
        let mut table = vec![0.0f32; 12];
        table[2] = 5.0; // u0, item 2
        table[6 + 3] = 5.0; // u1, item 3
        let model = FixedScorer::new(2, 6, table);
        p.on_epoch_end(0, &model);
        let snap = &p.snapshots()[0];
        assert!(snap.mean_separation() > 4.0);
        let (tn_curve, fn_curve) = snap.density_curves(50).unwrap();
        assert_eq!(tn_curve.len(), 50);
        assert_eq!(fn_curve.len(), 50);
    }
}
