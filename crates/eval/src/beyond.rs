//! Beyond-accuracy metrics: catalog coverage, recommendation popularity
//! and distributional skew of the recommended lists.
//!
//! These diagnose *how* a negative sampler shapes the learned model —
//! PNS's popularity-weighted negative gradient, for example, suppresses
//! popular items and shifts recommendations toward the long tail, which is
//! invisible to Precision/Recall but obvious in these metrics. Used by the
//! extended analyses and the `sampler_comparison` example.

use crate::topk::top_k_masked;
use bns_data::Dataset;
use bns_model::Scorer;
use serde::{Deserialize, Serialize};

/// Aggregate beyond-accuracy metrics of top-K recommendations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeyondAccuracy {
    /// Cutoff used.
    pub k: usize,
    /// Fraction of the catalog appearing in at least one user's top-K.
    pub catalog_coverage: f64,
    /// Mean training popularity (interaction count) of recommended items.
    pub mean_popularity: f64,
    /// Gini coefficient of recommendation exposure across items
    /// (0 = every item recommended equally, →1 = few items dominate).
    pub exposure_gini: f64,
}

/// Computes coverage/popularity/exposure metrics at cutoff `k`.
pub fn beyond_accuracy(model: &dyn Scorer, dataset: &Dataset, k: usize) -> BeyondAccuracy {
    let n_items = dataset.n_items() as usize;
    let mut exposure = vec![0u64; n_items];
    let mut scores = vec![0.0f32; n_items];
    let mut pop_sum = 0.0f64;
    let mut rec_count = 0usize;
    for &u in dataset.evaluable_users() {
        model.score_all(u, &mut scores);
        let ranked = top_k_masked(&scores, dataset.train().items_of(u), k);
        for &i in &ranked {
            exposure[i as usize] += 1;
            pop_sum += dataset.popularity().count(i) as f64;
            rec_count += 1;
        }
    }
    let covered = exposure.iter().filter(|&&e| e > 0).count();
    BeyondAccuracy {
        k,
        catalog_coverage: covered as f64 / n_items.max(1) as f64,
        mean_popularity: if rec_count == 0 {
            0.0
        } else {
            pop_sum / rec_count as f64
        },
        exposure_gini: gini_u64(&exposure),
    }
}

fn gini_u64(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(idx, &x)| (idx as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::scorer::FixedScorer;

    fn dataset() -> Dataset {
        let train = Interactions::from_pairs(2, 6, &[(0, 0), (1, 1)]).unwrap();
        let test = Interactions::from_pairs(2, 6, &[(0, 2), (1, 3)]).unwrap();
        Dataset::new("b", train, test).unwrap()
    }

    #[test]
    fn uniform_scorer_covers_items() {
        let d = dataset();
        // Score ascending with item id: both users recommend the same top
        // items (minus their own masks).
        let scores: Vec<f32> = (0..12).map(|i| (i % 6) as f32).collect();
        let model = FixedScorer::new(2, 6, scores);
        let m = beyond_accuracy(&model, &d, 2);
        assert_eq!(m.k, 2);
        // Top-2 for both users: items 5, 4 → coverage 2/6.
        assert!((m.catalog_coverage - 2.0 / 6.0).abs() < 1e-12);
        // Items 4, 5 have zero training popularity.
        assert_eq!(m.mean_popularity, 0.0);
        assert!(m.exposure_gini > 0.5);
    }

    #[test]
    fn personalized_scorer_spreads_exposure() {
        let d = dataset();
        let model = FixedScorer::new(
            2,
            6,
            vec![
                0.0, 0.1, 0.9, 0.8, 0.0, 0.0, // user 0 → items 2, 3
                0.0, 0.0, 0.0, 0.0, 0.9, 0.8, // user 1 → items 4, 5
            ],
        );
        let m = beyond_accuracy(&model, &d, 2);
        assert!((m.catalog_coverage - 4.0 / 6.0).abs() < 1e-12);
        // Exposure is 1 for four items, 0 for two → moderate gini.
        assert!(m.exposure_gini < 0.5);
    }

    #[test]
    fn popularity_reflects_training_counts() {
        // Item popularity from train: item 0 → 1, item 1 → 3.
        let train = Interactions::from_pairs(3, 4, &[(0, 0), (0, 1), (1, 1), (2, 1)]).unwrap();
        let test = Interactions::from_pairs(3, 4, &[(0, 2), (1, 2), (2, 2)]).unwrap();
        let d = Dataset::new("pop", train, test).unwrap();
        let model = FixedScorer::new(
            3,
            4,
            vec![
                0.9, 0.0, 0.1, 0.0, // user 0: mask {0,1} → top-1 = item 2 (pop 0)
                0.9, 0.0, 0.1, 0.0, // user 1: mask {1}   → top-1 = item 0 (pop 1)
                0.9, 0.0, 0.1, 0.0, // user 2: mask {1}   → top-1 = item 0 (pop 1)
            ],
        );
        let m = beyond_accuracy(&model, &d, 1);
        // Recommended popularities: {0, 1, 1} → mean 2/3.
        assert!((m.mean_popularity - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gini_helper_extremes() {
        assert_eq!(gini_u64(&[]), 0.0);
        assert_eq!(gini_u64(&[0, 0]), 0.0);
        assert!(gini_u64(&[1, 1, 1, 1]).abs() < 1e-12);
        assert!((gini_u64(&[0, 0, 0, 8]) - 0.75).abs() < 1e-12);
    }
}
