//! Top-K extraction with training-positive masking.
//!
//! The recommendation list for user `u` ranks the user's **un-interacted**
//! items by predicted score (§II of the paper: "his recommendation list,
//! consisting of his un-interacted items ranked according to their predicted
//! scores"). Training positives are masked out; held-out test positives
//! remain candidates — finding them is the whole game.

/// Returns the item ids of the `k` highest-scored items, excluding the
/// (sorted) `masked` items, ordered by descending score. Ties break toward
/// the lower item id for determinism.
///
/// Allocates two vectors per call; hot loops over many users should hold a
/// [`TopKBuffer`] and call [`top_k_masked_into`] instead.
pub fn top_k_masked(scores: &[f32], masked: &[u32], k: usize) -> Vec<u32> {
    let mut buffer = TopKBuffer::default();
    let mut out = Vec::with_capacity(k);
    top_k_masked_into(scores, masked, k, &mut buffer, &mut out);
    out
}

/// Reusable scratch for [`top_k_masked_into`]: the running best-k list.
/// Steady-state allocation-free once its capacity has reached `k + 1`.
///
/// The buffer is also an **incremental** selector: [`begin`](Self::begin)
/// resets it for a cutoff, [`offer`](Self::offer) feeds one `(score, id)`
/// candidate, and [`emit`](Self::emit) writes the ranked ids out. Every
/// selection path in the workspace — the dense scan of
/// [`top_k_masked_into`] and the cluster-at-a-time candidate stream of the
/// IVF serving path — funnels through the same `offer`, so the ordering
/// rule (descending score, ties toward the lower id) has exactly one
/// implementation.
#[derive(Debug, Default, Clone)]
pub struct TopKBuffer {
    best: Vec<(f32, u32)>,
    k: usize,
}

impl TopKBuffer {
    /// Resets the selector for a fresh top-`k` extraction.
    pub fn begin(&mut self, k: usize) {
        self.k = k;
        self.best.clear();
        self.best.reserve(k + 1);
    }

    /// Feeds one candidate. Kept iff it beats the current `k`-th best
    /// under the (score desc, id asc) order. Candidates may arrive in any
    /// id order; equal `(score, id)` re-offers are idempotent in effect
    /// because ids are unique per extraction.
    #[inline]
    pub fn offer(&mut self, score: f32, id: u32) {
        if self.k == 0 {
            return;
        }
        debug_assert!(score.is_finite(), "score for item {id} is not finite");
        let better = |&(bs, bi): &(f32, u32)| score > bs || (score == bs && id < bi);
        if self.best.len() < self.k {
            let pos = self.best.iter().position(better).unwrap_or(self.best.len());
            self.best.insert(pos, (score, id));
        } else if better(self.best.last().expect("k > 0")) {
            let pos = self.best.iter().position(better).expect("strictly better");
            self.best.insert(pos, (score, id));
            self.best.pop();
        }
    }

    /// The score of the current `k`-th best candidate, or `None` while the
    /// selection is not yet full. A candidate stream whose per-block upper
    /// bound falls **strictly** below this floor cannot change the
    /// selection — the admission test behind bound-ordered probe
    /// termination in the IVF serving path. (At the floor exactly, a
    /// lower-id tie could still displace, so equality must keep probing.)
    #[inline]
    pub fn floor(&self) -> Option<f32> {
        (self.k > 0 && self.best.len() == self.k).then(|| self.best.last().expect("k > 0").0)
    }

    /// Writes the ranked ids (best first) into `out`, replacing its
    /// contents.
    pub fn emit(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.best.iter().map(|&(_, i)| i));
    }
}

/// [`top_k_masked`] writing into caller-owned buffers: `out` receives the
/// ranked ids, `buffer` holds the selection scratch. Neither allocates
/// once warm — the per-user hot path of the ranking protocol.
pub fn top_k_masked_into(
    scores: &[f32],
    masked: &[u32],
    k: usize,
    buffer: &mut TopKBuffer,
    out: &mut Vec<u32>,
) {
    debug_assert!(
        masked.windows(2).all(|w| w[0] < w[1]),
        "mask must be sorted unique"
    );
    if k == 0 {
        out.clear();
        return;
    }
    // A fixed-size sorted buffer beats BinaryHeap for the small k used in
    // recommendation (k ≤ 20 in the paper). The dense scan walks the
    // sorted mask with one cursor (ids arrive ascending), then funnels
    // every surviving candidate through the shared `offer` selector.
    buffer.begin(k);
    let mut mask_idx = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        if mask_idx < masked.len() && masked[mask_idx] == i {
            mask_idx += 1;
            continue;
        }
        buffer.offer(s, i);
    }
    buffer.emit(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let scores = [0.1f32, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_masked(&scores, &[], 3), vec![1, 3, 2]);
        assert_eq!(top_k_masked(&scores, &[], 5), vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn masking_removes_train_positives() {
        let scores = [0.1f32, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_masked(&scores, &[1, 3], 3), vec![2, 4, 0]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let scores = [0.5f32, 0.4];
        assert!(top_k_masked(&scores, &[], 0).is_empty());
        assert_eq!(top_k_masked(&scores, &[], 10), vec![0, 1]);
        assert_eq!(top_k_masked(&scores, &[0, 1], 10), Vec::<u32>::new());
    }

    #[test]
    fn ties_break_by_lower_id() {
        let scores = [0.5f32, 0.5, 0.5, 0.5];
        assert_eq!(top_k_masked(&scores, &[], 2), vec![0, 1]);
        assert_eq!(top_k_masked(&scores, &[0], 2), vec![1, 2]);
    }

    #[test]
    fn incremental_offer_is_order_invariant() {
        // Feeding candidates in scrambled order (the IVF path visits items
        // cluster by cluster, not by ascending id) must produce the same
        // ranking as the dense ascending scan.
        let scores: Vec<f32> = (0..97)
            .map(|i| (((i * 31 + 7) % 89) as f32) / 89.0)
            .collect();
        let expected = top_k_masked(&scores, &[], 10);
        let mut buffer = TopKBuffer::default();
        buffer.begin(10);
        let mut order: Vec<u32> = (0..97).collect();
        order.reverse();
        order.swap(3, 60);
        for &i in &order {
            buffer.offer(scores[i as usize], i);
        }
        let mut out = Vec::new();
        buffer.emit(&mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn floor_tracks_the_kth_best_score() {
        let mut buffer = TopKBuffer::default();
        buffer.begin(0);
        buffer.offer(1.0, 0);
        assert_eq!(buffer.floor(), None, "k = 0 never fills");

        buffer.begin(2);
        assert_eq!(buffer.floor(), None);
        buffer.offer(0.5, 10);
        assert_eq!(buffer.floor(), None, "not full at 1 of 2");
        buffer.offer(0.9, 11);
        assert_eq!(buffer.floor(), Some(0.5));
        buffer.offer(0.7, 12);
        assert_eq!(
            buffer.floor(),
            Some(0.7),
            "floor rises as better candidates land"
        );
        buffer.offer(0.1, 13);
        assert_eq!(
            buffer.floor(),
            Some(0.7),
            "rejected candidates leave the floor alone"
        );
    }

    #[test]
    fn matches_full_sort_reference() {
        // Pseudo-random scores; compare against a full sort.
        let scores: Vec<f32> = (0..200)
            .map(|i| (((i * 7919) % 997) as f32) / 997.0)
            .collect();
        let masked: Vec<u32> = (0..200).filter(|i| i % 7 == 0).collect();
        let got = top_k_masked(&scores, &masked, 10);

        let mut all: Vec<(f32, u32)> = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| *i % 7 != 0)
            .map(|(i, &s)| (s, i as u32))
            .collect();
        all.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<u32> = all.into_iter().take(10).map(|(_, i)| i).collect();
        assert_eq!(got, expected);
    }
}
