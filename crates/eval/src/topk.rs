//! Top-K extraction with training-positive masking.
//!
//! The recommendation list for user `u` ranks the user's **un-interacted**
//! items by predicted score (§II of the paper: "his recommendation list,
//! consisting of his un-interacted items ranked according to their predicted
//! scores"). Training positives are masked out; held-out test positives
//! remain candidates — finding them is the whole game.

/// Returns the item ids of the `k` highest-scored items, excluding the
/// (sorted) `masked` items, ordered by descending score. Ties break toward
/// the lower item id for determinism.
///
/// Allocates two vectors per call; hot loops over many users should hold a
/// [`TopKBuffer`] and call [`top_k_masked_into`] instead.
pub fn top_k_masked(scores: &[f32], masked: &[u32], k: usize) -> Vec<u32> {
    let mut buffer = TopKBuffer::default();
    let mut out = Vec::with_capacity(k);
    top_k_masked_into(scores, masked, k, &mut buffer, &mut out);
    out
}

/// Reusable scratch for [`top_k_masked_into`]: the running best-k list.
/// Steady-state allocation-free once its capacity has reached `k + 1`.
#[derive(Debug, Default, Clone)]
pub struct TopKBuffer {
    best: Vec<(f32, u32)>,
}

/// [`top_k_masked`] writing into caller-owned buffers: `out` receives the
/// ranked ids, `buffer` holds the selection scratch. Neither allocates
/// once warm — the per-user hot path of the ranking protocol.
pub fn top_k_masked_into(
    scores: &[f32],
    masked: &[u32],
    k: usize,
    buffer: &mut TopKBuffer,
    out: &mut Vec<u32>,
) {
    debug_assert!(
        masked.windows(2).all(|w| w[0] < w[1]),
        "mask must be sorted unique"
    );
    out.clear();
    if k == 0 {
        return;
    }
    // Min-heap of the current best k, keyed by (score, Reverse(id)).
    // A fixed-size sorted buffer beats BinaryHeap for the small k used in
    // recommendation (k ≤ 20 in the paper).
    let best = &mut buffer.best;
    best.clear();
    best.reserve(k + 1);
    let mut mask_idx = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        if mask_idx < masked.len() && masked[mask_idx] == i {
            mask_idx += 1;
            continue;
        }
        debug_assert!(s.is_finite(), "score for item {i} is not finite");
        let better = |&(bs, bi): &(f32, u32)| s > bs || (s == bs && i < bi);
        if best.len() < k {
            let pos = best.iter().position(better).unwrap_or(best.len());
            best.insert(pos, (s, i));
        } else if better(best.last().expect("k > 0")) {
            let pos = best.iter().position(better).expect("strictly better");
            best.insert(pos, (s, i));
            best.pop();
        }
    }
    out.extend(best.iter().map(|&(_, i)| i));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let scores = [0.1f32, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_masked(&scores, &[], 3), vec![1, 3, 2]);
        assert_eq!(top_k_masked(&scores, &[], 5), vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn masking_removes_train_positives() {
        let scores = [0.1f32, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_masked(&scores, &[1, 3], 3), vec![2, 4, 0]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let scores = [0.5f32, 0.4];
        assert!(top_k_masked(&scores, &[], 0).is_empty());
        assert_eq!(top_k_masked(&scores, &[], 10), vec![0, 1]);
        assert_eq!(top_k_masked(&scores, &[0, 1], 10), Vec::<u32>::new());
    }

    #[test]
    fn ties_break_by_lower_id() {
        let scores = [0.5f32, 0.5, 0.5, 0.5];
        assert_eq!(top_k_masked(&scores, &[], 2), vec![0, 1]);
        assert_eq!(top_k_masked(&scores, &[0], 2), vec![1, 2]);
    }

    #[test]
    fn matches_full_sort_reference() {
        // Pseudo-random scores; compare against a full sort.
        let scores: Vec<f32> = (0..200)
            .map(|i| (((i * 7919) % 997) as f32) / 997.0)
            .collect();
        let masked: Vec<u32> = (0..200).filter(|i| i % 7 == 0).collect();
        let got = top_k_masked(&scores, &masked, 10);

        let mut all: Vec<(f32, u32)> = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| *i % 7 != 0)
            .map(|(i, &s)| (s, i as u32))
            .collect();
        all.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<u32> = all.into_iter().take(10).map(|(_, i)| i).collect();
        assert_eq!(got, expected);
    }
}
