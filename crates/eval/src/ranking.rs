//! The full ranking-evaluation protocol.
//!
//! For every evaluable user (≥1 train positive, ≥1 test positive): score
//! all items, mask training positives, extract the top-K list and compute
//! Precision/Recall/NDCG at each requested K; report the mean over users.
//! This is the protocol behind Tables II, III and IV.
//!
//! Scoring users is embarrassingly parallel; users are partitioned across
//! std::thread scoped workers and partial sums merged at the end.

use crate::metrics::{ndcg_at_k, precision_at_k, recall_at_k};
use crate::topk::{top_k_masked_into, TopKBuffer};
use bns_data::Dataset;
use bns_model::Scorer;
use serde::{Deserialize, Serialize};

/// Metrics at one cutoff K.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// The cutoff.
    pub k: usize,
    /// Mean Precision@K over evaluable users.
    pub precision: f64,
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
}

/// Evaluation result over all requested cutoffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingReport {
    /// One row per requested K, in input order.
    pub rows: Vec<MetricRow>,
    /// Number of users averaged over.
    pub n_users: usize,
}

impl RankingReport {
    /// The row for cutoff `k`, if it was requested.
    pub fn at(&self, k: usize) -> Option<&MetricRow> {
        self.rows.iter().find(|r| r.k == k)
    }
}

/// Evaluates `model` on `dataset` at the given cutoffs using `n_threads`
/// parallel workers (1 = sequential; the paper's cutoffs are {5, 10, 20}).
pub fn evaluate_ranking(
    model: &(dyn Scorer + Sync),
    dataset: &Dataset,
    ks: &[usize],
    n_threads: usize,
) -> RankingReport {
    let users = dataset.evaluable_users();
    let max_k = ks.iter().copied().max().unwrap_or(0);
    if users.is_empty() || max_k == 0 {
        return RankingReport {
            rows: ks
                .iter()
                .map(|&k| MetricRow {
                    k,
                    precision: 0.0,
                    recall: 0.0,
                    ndcg: 0.0,
                })
                .collect(),
            n_users: 0,
        };
    }

    let n_threads = n_threads.max(1).min(users.len());
    let chunk = users.len().div_ceil(n_threads);
    // Partial metric sums per thread: [k_idx] → (p, r, n).
    let partials: Vec<Vec<(f64, f64, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_threads);
        for worker in users.chunks(chunk) {
            handles.push(scope.spawn(move || {
                // One set of buffers per worker thread, reused across all
                // of its users: the score vector, the top-k selection
                // scratch and the ranked-id list. The per-user loop is
                // allocation-free once these are warm.
                let n_items = dataset.n_items() as usize;
                let mut scores = vec![0.0f32; n_items];
                let mut topk = TopKBuffer::default();
                let mut ranked: Vec<u32> = Vec::with_capacity(max_k);
                let mut sums = vec![(0.0f64, 0.0f64, 0.0f64); ks.len()];
                for &u in worker {
                    model.score_all(u, &mut scores);
                    let masked = dataset.train().items_of(u);
                    top_k_masked_into(&scores, masked, max_k, &mut topk, &mut ranked);
                    let relevant = dataset.test().items_of(u);
                    for (ki, &k) in ks.iter().enumerate() {
                        sums[ki].0 += precision_at_k(&ranked, relevant, k);
                        sums[ki].1 += recall_at_k(&ranked, relevant, k);
                        sums[ki].2 += ndcg_at_k(&ranked, relevant, k);
                    }
                }
                sums
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker panicked"))
            .collect()
    });

    let n = users.len() as f64;
    let rows = ks
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let (p, r, nd) = partials.iter().fold((0.0, 0.0, 0.0), |acc, part| {
                (acc.0 + part[ki].0, acc.1 + part[ki].1, acc.2 + part[ki].2)
            });
            MetricRow {
                k,
                precision: p / n,
                recall: r / n,
                ndcg: nd / n,
            }
        })
        .collect();
    RankingReport {
        rows,
        n_users: users.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::scorer::FixedScorer;

    /// 2 users × 5 items. User 0: train {0}, test {1, 2}; user 1: train
    /// {4}, test {3}.
    fn dataset() -> Dataset {
        let train = Interactions::from_pairs(2, 5, &[(0, 0), (1, 4)]).unwrap();
        let test = Interactions::from_pairs(2, 5, &[(0, 1), (0, 2), (1, 3)]).unwrap();
        Dataset::new("eval", train, test).unwrap()
    }

    fn perfect_scorer() -> FixedScorer {
        // User 0 ranks 1, 2 on top (after masking 0); user 1 ranks 3 first.
        FixedScorer::new(
            2,
            5,
            vec![
                0.9, 0.8, 0.7, 0.1, 0.0, // user 0
                0.0, 0.1, 0.2, 0.9, 0.5, // user 1
            ],
        )
    }

    #[test]
    fn perfect_model_gets_perfect_ndcg() {
        let d = dataset();
        let report = evaluate_ranking(&perfect_scorer(), &d, &[2], 1);
        assert_eq!(report.n_users, 2);
        let row = report.at(2).unwrap();
        // User 0: top-2 after mask = [1, 2] (both relevant): P = 1, R = 1.
        // User 1: top-2 = [3, 4→masked? no: train {4} masked → [3, 2]]:
        //   P = 0.5, R = 1.
        assert!((row.precision - 0.75).abs() < 1e-12);
        assert!((row.recall - 1.0).abs() < 1e-12);
        assert!((row.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_perfect_model_gets_zero() {
        let d = dataset();
        // Scores inverted: relevant items at the bottom.
        let scorer = FixedScorer::new(
            2,
            5,
            vec![
                0.0, 0.1, 0.2, 0.8, 0.9, // user 0: top-2 after mask = [4, 3]
                0.9, 0.8, 0.7, 0.0, 0.1, // user 1: top-2 after mask = [0, 1]
            ],
        );
        let report = evaluate_ranking(&scorer, &d, &[2], 1);
        let row = report.at(2).unwrap();
        assert_eq!(row.precision, 0.0);
        assert_eq!(row.recall, 0.0);
        assert_eq!(row.ndcg, 0.0);
    }

    #[test]
    fn multiple_cutoffs_and_ordering() {
        let d = dataset();
        let report = evaluate_ranking(&perfect_scorer(), &d, &[1, 2, 4], 1);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].k, 1);
        assert_eq!(report.rows[2].k, 4);
        // Recall grows with K.
        assert!(report.rows[0].recall <= report.rows[1].recall);
        assert!(report.rows[1].recall <= report.rows[2].recall);
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = dataset();
        let seq = evaluate_ranking(&perfect_scorer(), &d, &[1, 2], 1);
        let par = evaluate_ranking(&perfect_scorer(), &d, &[1, 2], 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_cutoffs_and_no_users() {
        let d = dataset();
        let report = evaluate_ranking(&perfect_scorer(), &d, &[], 1);
        assert!(report.rows.is_empty());

        // Dataset where no user has test items → no evaluable users.
        let train = Interactions::from_pairs(1, 3, &[(0, 0)]).unwrap();
        let test = Interactions::from_pairs(1, 3, &[]).unwrap();
        let d2 = Dataset::new("no-test", train, test).unwrap();
        let scorer = FixedScorer::new(1, 3, vec![0.0; 3]);
        let report = evaluate_ranking(&scorer, &d2, &[5], 2);
        assert_eq!(report.n_users, 0);
        assert_eq!(report.at(5).unwrap().ndcg, 0.0);
    }
}
