//! Learning curves: periodic ranking evaluation during training.
//!
//! The paper evaluates only after the final epoch; convergence *speed* is
//! nonetheless part of a sampler's value (hard negatives accelerate early
//! learning — §IV-C2's warm-start discussion). [`LearningCurve`] is a
//! [`TrainObserver`] that records NDCG@K every `every` epochs so sampler
//! convergence can be compared directly.

use bns_core::TrainObserver;
use bns_data::Dataset;
use bns_model::Scorer;
use serde::{Deserialize, Serialize};

/// One learning-curve point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Epoch at which the evaluation ran.
    pub epoch: usize,
    /// NDCG@K at that epoch.
    pub ndcg: f64,
    /// Recall@K at that epoch.
    pub recall: f64,
}

/// Observer recording `NDCG@k` / `Recall@k` every `every` epochs.
pub struct LearningCurve<'a> {
    dataset: &'a Dataset,
    k: usize,
    every: usize,
    threads: usize,
    points: Vec<CurvePoint>,
}

impl<'a> LearningCurve<'a> {
    /// Evaluates at cutoff `k` every `every` epochs (and always at epoch 0).
    pub fn new(dataset: &'a Dataset, k: usize, every: usize) -> Self {
        Self {
            dataset,
            k: k.max(1),
            every: every.max(1),
            threads: 2,
            points: Vec::new(),
        }
    }

    /// Sets the evaluation thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Recorded curve points in epoch order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// First epoch at which NDCG reached `fraction` of its final value —
    /// a convergence-speed summary. `None` if the curve is empty or never
    /// reaches the target.
    pub fn epochs_to_fraction(&self, fraction: f64) -> Option<usize> {
        let last = self.points.last()?.ndcg;
        let target = last * fraction;
        self.points
            .iter()
            .find(|p| p.ndcg >= target)
            .map(|p| p.epoch)
    }
}

impl TrainObserver for LearningCurve<'_> {
    fn on_triple(&mut self, _: usize, _: u32, _: u32, _: u32, _: f32) {}

    fn on_epoch_end(&mut self, epoch: usize, model: &dyn Scorer) {
        if !epoch.is_multiple_of(self.every) {
            return;
        }
        // The trainer hands us a &dyn Scorer, which is not Sync; evaluate
        // sequentially through a shim (the parallel path needs Sync).
        let report = evaluate_sequential(model, self.dataset, self.k);
        self.points.push(CurvePoint {
            epoch,
            ndcg: report.0,
            recall: report.1,
        });
        let _ = self.threads;
    }
}

/// Sequential (single-thread) evaluation returning `(ndcg@k, recall@k)`.
fn evaluate_sequential(model: &dyn Scorer, dataset: &Dataset, k: usize) -> (f64, f64) {
    use crate::metrics::{ndcg_at_k, recall_at_k};
    use crate::topk::top_k_masked;
    let users = dataset.evaluable_users();
    if users.is_empty() {
        return (0.0, 0.0);
    }
    let mut scores = vec![0.0f32; dataset.n_items() as usize];
    let mut ndcg = 0.0;
    let mut recall = 0.0;
    for &u in users {
        model.score_all(u, &mut scores);
        let ranked = top_k_masked(&scores, dataset.train().items_of(u), k);
        let relevant = dataset.test().items_of(u);
        ndcg += ndcg_at_k(&ranked, relevant, k);
        recall += recall_at_k(&ranked, relevant, k);
    }
    (ndcg / users.len() as f64, recall / users.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::evaluate_ranking;
    use bns_data::Interactions;
    use bns_model::scorer::FixedScorer;

    fn dataset() -> Dataset {
        let train = Interactions::from_pairs(2, 5, &[(0, 0), (1, 4)]).unwrap();
        let test = Interactions::from_pairs(2, 5, &[(0, 1), (1, 3)]).unwrap();
        Dataset::new("curve", train, test).unwrap()
    }

    #[test]
    fn records_every_nth_epoch() {
        let d = dataset();
        let mut curve = LearningCurve::new(&d, 2, 3);
        let model = FixedScorer::new(2, 5, vec![0.1; 10]);
        for epoch in 0..10 {
            curve.on_epoch_end(epoch, &model);
        }
        let epochs: Vec<usize> = curve.points().iter().map(|p| p.epoch).collect();
        assert_eq!(epochs, vec![0, 3, 6, 9]);
    }

    #[test]
    fn sequential_matches_parallel_protocol() {
        let d = dataset();
        let model = FixedScorer::new(2, 5, vec![0.0, 0.9, 0.1, 0.2, 0.0, 0.0, 0.1, 0.2, 0.9, 0.0]);
        let (ndcg, recall) = evaluate_sequential(&model, &d, 2);
        let report = evaluate_ranking(&model, &d, &[2], 2);
        let row = report.at(2).unwrap();
        assert!((ndcg - row.ndcg).abs() < 1e-12);
        assert!((recall - row.recall).abs() < 1e-12);
    }

    #[test]
    fn convergence_summary() {
        let d = dataset();
        let mut curve = LearningCurve::new(&d, 2, 1);
        // Simulate an improving model: at epoch 0 the relevant items are
        // buried; by epoch 2 they rank on top.
        let bad = FixedScorer::new(2, 5, vec![0.9, 0.0, 0.1, 0.0, 0.8, 0.9, 0.1, 0.0, 0.0, 0.8]);
        let good = FixedScorer::new(2, 5, vec![0.0, 0.9, 0.1, 0.0, 0.0, 0.0, 0.1, 0.0, 0.9, 0.0]);
        curve.on_epoch_end(0, &bad);
        curve.on_epoch_end(1, &good);
        curve.on_epoch_end(2, &good);
        assert_eq!(curve.epochs_to_fraction(0.9), Some(1));
        assert!(curve.points()[0].ndcg < curve.points()[1].ndcg);
    }

    #[test]
    fn empty_curve_has_no_summary() {
        let d = dataset();
        let curve = LearningCurve::new(&d, 2, 1);
        assert_eq!(curve.epochs_to_fraction(0.5), None);
    }
}
