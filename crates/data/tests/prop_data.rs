//! Property-based tests of the data substrate.

use bns_data::{k_core, split_leave_one_out, Interactions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn kcore_survivors_meet_degree_bound(
        pairs in prop::collection::vec((0u32..12, 0u32..18), 1..150),
        k in 1u32..4,
    ) {
        let x = Interactions::from_pairs(12, 18, &pairs).unwrap();
        match k_core(&x, k) {
            Ok(r) => {
                // Every surviving user has degree ≥ k.
                for u in 0..r.interactions.n_users() {
                    prop_assert!(r.interactions.degree(u) >= k as usize);
                }
                // Every surviving item has ≥ k interactions.
                for (i, &c) in r.interactions.item_counts().iter().enumerate() {
                    prop_assert!(c >= k, "item {} has count {}", i, c);
                }
                // Filtering never adds interactions.
                prop_assert!(r.interactions.len() <= x.len());
                // Id maps are injective over survivors.
                let mut seen = std::collections::BTreeSet::new();
                for m in r.user_map.iter().flatten() {
                    prop_assert!(seen.insert(*m));
                }
            }
            Err(_) => {
                // Allowed: the filter may legitimately empty the dataset.
            }
        }
    }

    #[test]
    fn kcore_is_idempotent(
        pairs in prop::collection::vec((0u32..10, 0u32..14), 1..120),
        k in 1u32..4,
    ) {
        let x = Interactions::from_pairs(10, 14, &pairs).unwrap();
        if let Ok(once) = k_core(&x, k) {
            let twice = k_core(&once.interactions, k).expect("fixed point survives");
            prop_assert_eq!(once.interactions, twice.interactions);
        }
    }

    #[test]
    fn leave_one_out_properties(
        pairs in prop::collection::vec((0u32..10, 0u32..20), 1..150),
        seed in 0u64..500,
    ) {
        let all = Interactions::from_pairs(10, 20, &pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = split_leave_one_out(&all, &mut rng).unwrap();
        prop_assert_eq!(train.len() + test.len(), all.len());
        for u in 0..10u32 {
            match all.degree(u) {
                0 => prop_assert_eq!(test.degree(u), 0),
                1 => {
                    prop_assert_eq!(train.degree(u), 1);
                    prop_assert_eq!(test.degree(u), 0);
                }
                d => {
                    prop_assert_eq!(test.degree(u), 1);
                    prop_assert_eq!(train.degree(u), d - 1);
                }
            }
        }
    }

    #[test]
    fn union_is_commutative_and_idempotent(
        a_pairs in prop::collection::vec((0u32..8, 0u32..12), 0..60),
        b_pairs in prop::collection::vec((0u32..8, 0u32..12), 0..60),
    ) {
        let a = Interactions::from_pairs(8, 12, &a_pairs).unwrap();
        let b = Interactions::from_pairs(8, 12, &b_pairs).unwrap();
        let ab = a.union(&b).unwrap();
        let ba = b.union(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        let aa = a.union(&a).unwrap();
        prop_assert_eq!(&aa, &a);
        // Union contains both sides.
        for (u, i) in a.iter_pairs().chain(b.iter_pairs()) {
            prop_assert!(ab.contains(u, i));
        }
    }
}
