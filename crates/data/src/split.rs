//! Train/test splitting.
//!
//! The paper randomly selects 20% of each dataset as test data (§IV-A1).
//! [`split_random`] reproduces that protocol with one guard: a user whose
//! every interaction lands in the test side keeps one training interaction,
//! since a user without training positives can neither be trained on nor
//! generate pairwise triples.

use crate::interactions::{Interactions, InteractionsBuilder};
use crate::{DataError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the random split.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Fraction of interactions assigned to the test set (the paper: 0.2).
    pub test_fraction: f64,
    /// Keep at least this many interactions per user in the training side
    /// (the paper's models need ≥ 1).
    pub min_train_per_user: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            test_fraction: 0.2,
            min_train_per_user: 1,
        }
    }
}

/// Randomly splits `all` into `(train, test)` per `config`.
pub fn split_random<R: Rng + ?Sized>(
    all: &Interactions,
    config: SplitConfig,
    rng: &mut R,
) -> Result<(Interactions, Interactions)> {
    if !(0.0..1.0).contains(&config.test_fraction) {
        return Err(DataError::Invalid("test_fraction must be in [0, 1)".into()));
    }
    if all.is_empty() {
        return Err(DataError::Invalid("cannot split an empty dataset".into()));
    }

    let mut train = InteractionsBuilder::with_capacity(all.n_users(), all.n_items(), all.len());
    let mut test = InteractionsBuilder::new(all.n_users(), all.n_items());

    // Split per user so the min-train guarantee is local and exact.
    let mut shuffled: Vec<u32> = Vec::new();
    for u in 0..all.n_users() {
        let items = all.items_of(u);
        if items.is_empty() {
            continue;
        }
        shuffled.clear();
        shuffled.extend_from_slice(items);
        shuffled.shuffle(rng);

        let want_test = (items.len() as f64 * config.test_fraction).round() as usize;
        let max_test = items.len().saturating_sub(config.min_train_per_user);
        let n_test = want_test.min(max_test);

        for (k, &i) in shuffled.iter().enumerate() {
            if k < n_test {
                test.push(u, i)?;
            } else {
                train.push(u, i)?;
            }
        }
    }
    Ok((train.build()?, test.build()?))
}

/// Leave-one-out split: exactly one random interaction per user goes to the
/// test side (users with a single interaction keep it in train). A common
/// alternative protocol in the implicit-feedback literature (He et al.,
/// NCF; used here for the extended analyses).
pub fn split_leave_one_out<R: Rng + ?Sized>(
    all: &Interactions,
    rng: &mut R,
) -> Result<(Interactions, Interactions)> {
    if all.is_empty() {
        return Err(DataError::Invalid("cannot split an empty dataset".into()));
    }
    let mut train = InteractionsBuilder::with_capacity(all.n_users(), all.n_items(), all.len());
    let mut test = InteractionsBuilder::new(all.n_users(), all.n_items());
    for u in 0..all.n_users() {
        let items = all.items_of(u);
        if items.is_empty() {
            continue;
        }
        if items.len() == 1 {
            train.push(u, items[0])?;
            continue;
        }
        let held_out = items[rng.random_range(0..items.len())];
        for &i in items {
            if i == held_out {
                test.push(u, i)?;
            } else {
                train.push(u, i)?;
            }
        }
    }
    Ok((train.build()?, test.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense(n_users: u32, n_items: u32, per_user: u32) -> Interactions {
        let mut pairs = Vec::new();
        for u in 0..n_users {
            for k in 0..per_user {
                pairs.push((u, (u + k * 7) % n_items));
            }
        }
        Interactions::from_pairs(n_users, n_items, &pairs).unwrap()
    }

    #[test]
    fn split_is_a_partition() {
        let all = dense(50, 40, 20);
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = split_random(&all, SplitConfig::default(), &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), all.len());
        for (u, i) in test.iter_pairs() {
            assert!(all.contains(u, i));
            assert!(!train.contains(u, i));
        }
        for (u, i) in train.iter_pairs() {
            assert!(all.contains(u, i));
        }
    }

    #[test]
    fn ratio_is_approximately_respected() {
        let all = dense(100, 200, 40);
        let mut rng = StdRng::seed_from_u64(1);
        let (_, test) = split_random(&all, SplitConfig::default(), &mut rng).unwrap();
        let ratio = test.len() as f64 / all.len() as f64;
        assert!((ratio - 0.2).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn every_user_keeps_a_training_item() {
        // Users with a single interaction must keep it in train.
        let all = Interactions::from_pairs(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SplitConfig {
            test_fraction: 0.9,
            min_train_per_user: 1,
        };
        let (train, test) = split_random(&all, cfg, &mut rng).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 0);
        for u in 0..3 {
            assert_eq!(train.degree(u), 1);
        }
    }

    #[test]
    fn rejects_bad_fraction() {
        let all = dense(2, 2, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SplitConfig {
            test_fraction: 1.0,
            min_train_per_user: 1,
        };
        assert!(split_random(&all, cfg, &mut rng).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let all = Interactions::from_pairs(2, 2, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(split_random(&all, SplitConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let all = dense(30, 30, 10);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let (tr1, te1) = split_random(&all, SplitConfig::default(), &mut rng1).unwrap();
        let (tr2, te2) = split_random(&all, SplitConfig::default(), &mut rng2).unwrap();
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
    }

    #[test]
    fn leave_one_out_holds_exactly_one_per_user() {
        let all = dense(20, 30, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = split_leave_one_out(&all, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), all.len());
        for u in 0..20 {
            assert_eq!(test.degree(u), 1, "user {u}");
            assert_eq!(train.degree(u), all.degree(u) - 1);
            let held = test.items_of(u)[0];
            assert!(all.contains(u, held));
            assert!(!train.contains(u, held));
        }
    }

    #[test]
    fn leave_one_out_keeps_singletons_in_train() {
        let all = Interactions::from_pairs(2, 3, &[(0, 0), (1, 1), (1, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let (train, test) = split_leave_one_out(&all, &mut rng).unwrap();
        assert_eq!(train.degree(0), 1);
        assert_eq!(test.degree(0), 0);
        assert_eq!(test.degree(1), 1);
    }

    #[test]
    fn leave_one_out_rejects_empty() {
        let all = Interactions::from_pairs(2, 2, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        assert!(split_leave_one_out(&all, &mut rng).is_err());
    }
}
