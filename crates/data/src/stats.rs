//! Dataset statistics — the Table I reproduction.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Summary statistics of a train/test dataset (Table I plus density and
/// popularity-skew diagnostics that validate the synthetic stand-ins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset display name.
    pub name: String,
    /// Users in the id space.
    pub users: u32,
    /// Items in the id space.
    pub items: u32,
    /// Training interactions.
    pub train_size: usize,
    /// Test interactions.
    pub test_size: usize,
    /// `train / (users × items)`.
    pub density: f64,
    /// Mean training interactions per user.
    pub mean_user_degree: f64,
    /// Gini coefficient of item popularity (0 = uniform, →1 = concentrated).
    pub popularity_gini: f64,
}

impl DatasetStats {
    /// Computes the statistics of `d`.
    pub fn of(d: &Dataset) -> Self {
        let users = d.n_users();
        let items = d.n_items();
        let train_size = d.train().len();
        let test_size = d.test().len();
        let active_users = d.train().active_users().len().max(1);
        Self {
            name: d.name.clone(),
            users,
            items,
            train_size,
            test_size,
            density: train_size as f64 / (users as f64 * items as f64),
            mean_user_degree: train_size as f64 / active_users as f64,
            popularity_gini: d.popularity().gini(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interactions;

    #[test]
    fn computes_basic_counts() {
        let train = Interactions::from_pairs(2, 4, &[(0, 0), (0, 1), (1, 2)]).unwrap();
        let test = Interactions::from_pairs(2, 4, &[(0, 2)]).unwrap();
        let d = Dataset::new("t", train, test).unwrap();
        let s = DatasetStats::of(&d);
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 4);
        assert_eq!(s.train_size, 3);
        assert_eq!(s.test_size, 1);
        assert!((s.density - 3.0 / 8.0).abs() < 1e-12);
        assert!((s.mean_user_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gini_reflects_skew() {
        // All mass on one item → high gini.
        let train = Interactions::from_pairs(3, 3, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let test = Interactions::from_pairs(3, 3, &[(0, 1)]).unwrap();
        let d = Dataset::new("skewed", train, test).unwrap();
        let s = DatasetStats::of(&d);
        assert!(s.popularity_gini > 0.5, "gini = {}", s.popularity_gini);
    }
}
