//! User occupation side-information.
//!
//! Table III's BNS-4 variant enhances the prior with occupation statistics:
//! `P_fn(l) = (popₗ/N) · (1 + Δoᵤₗ)` where `Δoᵤₗ = (oᵤₗ − ōₗ) / max oₗ`
//! measures how much `u`'s occupation group over- or under-consumes item
//! `l` relative to the average group. This module stores the labels and
//! computes the occupation×item count matrix from training data only.

use crate::interactions::Interactions;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Occupation labels for every user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupations {
    labels: Vec<u32>,
    n_groups: u32,
}

impl Occupations {
    /// Assigns each user a uniform-random group.
    pub fn random<R: Rng + ?Sized>(n_users: u32, n_groups: u32, rng: &mut R) -> Self {
        assert!(n_groups > 0, "need at least one occupation group");
        let labels = (0..n_users)
            .map(|_| rng.random_range(0..n_groups))
            .collect();
        Self { labels, n_groups }
    }

    /// Wraps explicit labels; every label must be `< n_groups`.
    pub fn from_labels(labels: Vec<u32>, n_groups: u32) -> Self {
        assert!(n_groups > 0, "need at least one occupation group");
        assert!(
            labels.iter().all(|&l| l < n_groups),
            "occupation label out of range"
        );
        Self { labels, n_groups }
    }

    /// Group of user `u`.
    pub fn of(&self, u: u32) -> u32 {
        self.labels[u as usize]
    }

    /// Number of groups.
    pub fn n_groups(&self) -> u32 {
        self.n_groups
    }

    /// Number of users.
    pub fn n_users(&self) -> u32 {
        self.labels.len() as u32
    }
}

/// Occupation×item interaction count matrix with the derived `Δoᵤₗ`
/// adjustment of the BNS-4 prior.
#[derive(Debug, Clone)]
pub struct OccupationItemCounts {
    n_groups: u32,
    n_items: u32,
    /// Row-major `n_groups × n_items` counts.
    counts: Vec<u32>,
    /// Per-item mean count over groups (`ōₗ`).
    mean_per_item: Vec<f64>,
    /// Per-item max count over groups (`max oₗ`), ≥ 1 to avoid div-by-zero.
    max_per_item: Vec<u32>,
}

impl OccupationItemCounts {
    /// Builds the count matrix from **training** interactions.
    pub fn build(train: &Interactions, occ: &Occupations) -> Self {
        assert_eq!(
            train.n_users(),
            occ.n_users(),
            "occupation labels must cover every user"
        );
        let n_groups = occ.n_groups();
        let n_items = train.n_items();
        let mut counts = vec![0u32; n_groups as usize * n_items as usize];
        for (u, i) in train.iter_pairs() {
            let g = occ.of(u) as usize;
            counts[g * n_items as usize + i as usize] += 1;
        }
        let mut mean_per_item = vec![0f64; n_items as usize];
        let mut max_per_item = vec![0u32; n_items as usize];
        for i in 0..n_items as usize {
            let mut sum = 0u64;
            let mut max = 0u32;
            for g in 0..n_groups as usize {
                let c = counts[g * n_items as usize + i];
                sum += c as u64;
                max = max.max(c);
            }
            mean_per_item[i] = sum as f64 / n_groups as f64;
            max_per_item[i] = max.max(1);
        }
        Self {
            n_groups,
            n_items,
            counts,
            mean_per_item,
            max_per_item,
        }
    }

    /// Count `oᵤₗ` for a group/item pair.
    pub fn count(&self, group: u32, item: u32) -> u32 {
        debug_assert!(group < self.n_groups && item < self.n_items);
        self.counts[group as usize * self.n_items as usize + item as usize]
    }

    /// The paper's adjustment `Δoᵤₗ = (oᵤₗ − ōₗ) / max oₗ` (§IV-C2, BNS-4).
    pub fn delta(&self, group: u32, item: u32) -> f64 {
        let o = self.count(group, item) as f64;
        let mean = self.mean_per_item[item as usize];
        let max = self.max_per_item[item as usize] as f64;
        (o - mean) / max
    }

    /// Number of occupation groups.
    pub fn n_groups(&self) -> u32 {
        self.n_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_assignment_is_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let occ = Occupations::random(100, 7, &mut rng);
        assert_eq!(occ.n_users(), 100);
        assert_eq!(occ.n_groups(), 7);
        for u in 0..100 {
            assert!(occ.of(u) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn from_labels_validates() {
        Occupations::from_labels(vec![0, 5], 3);
    }

    #[test]
    fn counts_accumulate_by_group() {
        // Users 0,1 in group 0; user 2 in group 1.
        let occ = Occupations::from_labels(vec![0, 0, 1], 2);
        let train = Interactions::from_pairs(3, 2, &[(0, 0), (1, 0), (2, 0), (2, 1)]).unwrap();
        let c = OccupationItemCounts::build(&train, &occ);
        assert_eq!(c.count(0, 0), 2);
        assert_eq!(c.count(1, 0), 1);
        assert_eq!(c.count(0, 1), 0);
        assert_eq!(c.count(1, 1), 1);
    }

    #[test]
    fn delta_is_zero_when_groups_are_equal() {
        let occ = Occupations::from_labels(vec![0, 1], 2);
        let train = Interactions::from_pairs(2, 1, &[(0, 0), (1, 0)]).unwrap();
        let c = OccupationItemCounts::build(&train, &occ);
        assert!(c.delta(0, 0).abs() < 1e-12);
        assert!(c.delta(1, 0).abs() < 1e-12);
    }

    #[test]
    fn delta_sign_tracks_over_under_consumption() {
        // Group 0 consumes item 0 twice, group 1 never.
        let occ = Occupations::from_labels(vec![0, 0, 1], 2);
        let train = Interactions::from_pairs(3, 1, &[(0, 0), (1, 0)]).unwrap();
        let c = OccupationItemCounts::build(&train, &occ);
        // ō = 1, max = 2 → Δ(group 0) = (2−1)/2 = 0.5, Δ(group 1) = −0.5.
        assert!((c.delta(0, 0) - 0.5).abs() < 1e-12);
        assert!((c.delta(1, 0) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_handles_never_interacted_item() {
        let occ = Occupations::from_labels(vec![0, 1], 2);
        let train = Interactions::from_pairs(2, 2, &[(0, 0)]).unwrap();
        let c = OccupationItemCounts::build(&train, &occ);
        // Item 1 has no interactions anywhere: Δ must be finite (0).
        assert_eq!(c.delta(0, 1), 0.0);
        assert_eq!(c.delta(1, 1), 0.0);
    }
}
