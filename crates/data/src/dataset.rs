//! A train/test dataset pair plus derived lookups used across the system.

use crate::interactions::Interactions;
use crate::popularity::Popularity;
use crate::{DataError, Result};

/// A recommendation dataset: training interactions (the observed positives),
/// held-out test interactions (the paper's *false negatives* during
/// training), and derived popularity statistics.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset display name (e.g. `"MovieLens-100K (synthetic)"`).
    pub name: String,
    train: Interactions,
    test: Interactions,
    popularity: Popularity,
    /// Users with ≥ 1 train and ≥ 1 test positive, computed once at
    /// construction (the evaluation protocol reads it per epoch probe).
    evaluable_users: Vec<u32>,
}

impl Dataset {
    /// Assembles a dataset, validating that train and test share one id
    /// space and do not overlap.
    pub fn new(name: impl Into<String>, train: Interactions, test: Interactions) -> Result<Self> {
        if train.n_users() != test.n_users() || train.n_items() != test.n_items() {
            return Err(DataError::Invalid(
                "train and test must share the same user/item id space".into(),
            ));
        }
        if train.is_empty() {
            return Err(DataError::Invalid("training set must be non-empty".into()));
        }
        for (u, i) in test.iter_pairs() {
            if train.contains(u, i) {
                return Err(DataError::Invalid(format!(
                    "pair ({u}, {i}) appears in both train and test"
                )));
            }
        }
        let popularity = Popularity::from_interactions(&train);
        let evaluable_users = (0..train.n_users())
            .filter(|&u| train.degree(u) > 0 && test.degree(u) > 0)
            .collect();
        Ok(Self {
            name: name.into(),
            train,
            test,
            popularity,
            evaluable_users,
        })
    }

    /// Training interactions.
    pub fn train(&self) -> &Interactions {
        &self.train
    }

    /// Held-out test interactions.
    pub fn test(&self) -> &Interactions {
        &self.test
    }

    /// Popularity statistics of the **training** set (negative sampling must
    /// not peek at test counts).
    pub fn popularity(&self) -> &Popularity {
        &self.popularity
    }

    /// Users in the id space.
    pub fn n_users(&self) -> u32 {
        self.train.n_users()
    }

    /// Items in the id space.
    pub fn n_items(&self) -> u32 {
        self.train.n_items()
    }

    /// Whether item `i` is a **false negative** for user `u` during
    /// training: un-interacted in train but positive in test. This is the
    /// ground-truth label used by the paper's TNR/INF sampling-quality
    /// metrics (Eq. 33/34) and by the oracle prior of Table IV.
    pub fn is_false_negative(&self, u: u32, i: u32) -> bool {
        self.test.contains(u, i) && !self.train.contains(u, i)
    }

    /// Whether item `i` is a **true negative** for user `u`: un-interacted
    /// in both train and test.
    pub fn is_true_negative(&self, u: u32, i: u32) -> bool {
        !self.test.contains(u, i) && !self.train.contains(u, i)
    }

    /// Users that have at least one training positive *and* at least one
    /// test positive — the population over which ranking metrics are
    /// averaged. Cached at construction (the per-epoch evaluation probes
    /// read it repeatedly), so this is a free slice borrow.
    pub fn evaluable_users(&self) -> &[u32] {
        &self.evaluable_users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let train = Interactions::from_pairs(2, 4, &[(0, 0), (0, 1), (1, 2)]).unwrap();
        let test = Interactions::from_pairs(2, 4, &[(0, 2), (1, 3)]).unwrap();
        Dataset::new("tiny", train, test).unwrap()
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.n_users(), 2);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.train().len(), 3);
        assert_eq!(d.test().len(), 2);
    }

    #[test]
    fn negative_labels() {
        let d = tiny();
        // (0,2) is in test → false negative during training.
        assert!(d.is_false_negative(0, 2));
        assert!(!d.is_true_negative(0, 2));
        // (0,3) is nowhere → true negative.
        assert!(d.is_true_negative(0, 3));
        assert!(!d.is_false_negative(0, 3));
        // (0,0) is a train positive → neither.
        assert!(!d.is_false_negative(0, 0));
        assert!(!d.is_true_negative(0, 0));
    }

    #[test]
    fn rejects_overlap() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0)]).unwrap();
        let test = Interactions::from_pairs(1, 2, &[(0, 0)]).unwrap();
        assert!(Dataset::new("bad", train, test).is_err());
    }

    #[test]
    fn rejects_mismatched_spaces() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0)]).unwrap();
        let test = Interactions::from_pairs(2, 2, &[(1, 1)]).unwrap();
        assert!(Dataset::new("bad", train, test).is_err());
    }

    #[test]
    fn rejects_empty_train() {
        let train = Interactions::from_pairs(1, 2, &[]).unwrap();
        let test = Interactions::from_pairs(1, 2, &[(0, 0)]).unwrap();
        assert!(Dataset::new("bad", train, test).is_err());
    }

    #[test]
    fn evaluable_users_need_both_sides() {
        let train = Interactions::from_pairs(3, 4, &[(0, 0), (1, 1)]).unwrap();
        let test = Interactions::from_pairs(3, 4, &[(0, 2), (2, 3)]).unwrap();
        let d = Dataset::new("t", train, test).unwrap();
        // User 0 has both; user 1 has no test; user 2 has no train.
        assert_eq!(d.evaluable_users(), vec![0]);
    }
}
