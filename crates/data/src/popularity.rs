//! Item popularity statistics.
//!
//! Three consumers:
//! * the PNS baseline samples items with probability `∝ r^0.75` where `r` is
//!   the interaction frequency (§IV-A2);
//! * the BNS prior `P_fn(l) = popₗ / N` (Eq. 17);
//! * Table I's dataset statistics (density, popularity skew).

use crate::interactions::Interactions;

/// Popularity exponent used by PNS, following word2vec and the paper.
pub const PNS_EXPONENT: f64 = 0.75;

/// Per-item interaction counts with cached derived quantities.
#[derive(Debug, Clone)]
pub struct Popularity {
    counts: Vec<u32>,
    total: u64,
}

impl Popularity {
    /// Counts interactions per item in `x`.
    pub fn from_interactions(x: &Interactions) -> Self {
        let counts = x.item_counts();
        let total = counts.iter().map(|&c| c as u64).sum();
        Self { counts, total }
    }

    /// Builds directly from counts (useful in tests).
    pub fn from_counts(counts: Vec<u32>) -> Self {
        let total = counts.iter().map(|&c| c as u64).sum();
        Self { counts, total }
    }

    /// Interaction count of item `i` (`popₗ`).
    pub fn count(&self, i: u32) -> u32 {
        self.counts[i as usize]
    }

    /// All counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total interactions (`N` of Eq. 17).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.counts.len()
    }

    /// The paper's prior probability of item `i` being a false negative:
    /// `P_fn(i) = popᵢ / N` (Eq. 17). Returns 0 when the dataset is empty.
    pub fn prior_fn(&self, i: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i as usize] as f64 / self.total as f64
        }
    }

    /// PNS sampling weights `r^0.75` (unnormalized).
    pub fn pns_weights(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| (c as f64).powf(PNS_EXPONENT))
            .collect()
    }

    /// Gini coefficient of the popularity distribution — a skew summary
    /// reported in the Table I reproduction to show the synthetic datasets
    /// match the long-tailed shape of the real ones.
    pub fn gini(&self) -> f64 {
        if self.total == 0 || self.counts.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<u64> = self.counts.iter().map(|&c| c as u64).collect();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let total = self.total as f64;
        // Gini = (2 Σ_i i·x_i) / (n Σ x) − (n + 1)/n with 1-based i on sorted data.
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(idx, &x)| (idx as f64 + 1.0) * x as f64)
            .sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let x = Interactions::from_pairs(2, 3, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        let p = Popularity::from_interactions(&x);
        assert_eq!(p.count(0), 1);
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 0);
        assert_eq!(p.total(), 3);
        assert_eq!(p.n_items(), 3);
    }

    #[test]
    fn prior_fn_matches_eq_17() {
        let p = Popularity::from_counts(vec![2, 6, 0]);
        assert!((p.prior_fn(0) - 0.25).abs() < 1e-12);
        assert!((p.prior_fn(1) - 0.75).abs() < 1e-12);
        assert_eq!(p.prior_fn(2), 0.0);
    }

    #[test]
    fn prior_fn_empty_dataset() {
        let p = Popularity::from_counts(vec![0, 0]);
        assert_eq!(p.prior_fn(0), 0.0);
    }

    #[test]
    fn pns_weights_use_three_quarters_power() {
        let p = Popularity::from_counts(vec![16, 1, 0]);
        let w = p.pns_weights();
        assert!((w[0] - 8.0).abs() < 1e-12); // 16^0.75 = 8
        assert!((w[1] - 1.0).abs() < 1e-12);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn gini_extremes() {
        // Perfect equality → 0.
        let eq = Popularity::from_counts(vec![5, 5, 5, 5]);
        assert!(eq.gini().abs() < 1e-12);
        // Full concentration → (n−1)/n.
        let conc = Popularity::from_counts(vec![0, 0, 0, 100]);
        assert!((conc.gini() - 0.75).abs() < 1e-12);
        // Empty → 0.
        assert_eq!(Popularity::from_counts(vec![]).gini(), 0.0);
    }
}
