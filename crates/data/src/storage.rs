//! Byte storage behind the zero-copy load paths.
//!
//! [`Storage`] abstracts over *where* a serialized blob lives: an owned
//! heap buffer (the classic read-everything path) or a memory-mapped file
//! ([`Storage::map`]) whose pages are faulted in lazily by the kernel.
//! Decoders build typed views ([`U32Buf`], and the f32 table views in
//! `bns-serve`) that either own their data or borrow it from a shared
//! [`Storage`] through an `Arc`, so a million-row CSR or embedding table
//! costs no copy and no per-element decode loop at load time.
//!
//! ## Zero-copy preconditions
//!
//! A mapped `&[u32]`/`&[f32]` view reinterprets file bytes in place, which
//! is only sound when
//!
//! 1. the platform is **little-endian** (all on-disk integers are LE) and
//! 2. the view's byte offset is **4-byte aligned** (mmap bases are
//!    page-aligned, so only the in-file offset matters).
//!
//! Both are checked at view-construction time; on big-endian targets the
//! callers fall back to the buffered decode path. Mapped views are
//! read-only (`PROT_READ`, `MAP_PRIVATE`), and the artifact checksum is
//! verified over the mapped bytes before any view is handed out, so a
//! file mutated after load is the same trust model as an owned buffer
//! mutated after load: out of scope (artifacts are trusted inputs).

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A read-only byte blob: owned heap memory or a shared file mapping.
#[derive(Debug)]
pub enum Storage {
    /// Heap-owned bytes (`std::fs::read` or an in-memory encode).
    Owned(Vec<u8>),
    /// A memory-mapped read-only file (unix); pages fault in on demand.
    #[cfg(unix)]
    Mapped(Mmap),
}

impl Storage {
    /// Reads a whole file into owned memory — the buffered path.
    pub fn read(path: &Path) -> io::Result<Self> {
        Ok(Storage::Owned(std::fs::read(path)?))
    }

    /// Maps a file read-only. On unix this is `mmap(2)`; elsewhere it
    /// silently degrades to [`Storage::read`] (correct, just not
    /// zero-copy). Empty files map to an empty owned buffer because
    /// zero-length mappings are an `EINVAL` on Linux.
    pub fn map(path: &Path) -> io::Result<Self> {
        #[cfg(unix)]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Storage::Owned(Vec::new()));
            }
            if len > usize::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "file too large to map on this platform",
                ));
            }
            Ok(Storage::Mapped(Mmap::new(&file, len as usize)?))
        }
        #[cfg(not(unix))]
        {
            Self::read(path)
        }
    }

    /// The stored bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Storage::Owned(v) => v,
            #[cfg(unix)]
            Storage::Mapped(m) => m.as_bytes(),
        }
    }

    /// Whether this storage is a live file mapping (used by benches and
    /// tests to assert the zero-copy path was actually taken).
    pub fn is_mapped(&self) -> bool {
        match self {
            Storage::Owned(_) => false,
            #[cfg(unix)]
            Storage::Mapped(_) => true,
        }
    }
}

/// Raw bindings to the three syscalls the mapping needs. `std` already
/// links libc on every unix target, so declaring the symbols directly
/// keeps the workspace dependency-free (no `libc`/`memmap2` crates, which
/// the offline vendor set does not carry).
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// An owned read-only `mmap(2)` region, unmapped on drop.
#[cfg(unix)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared memory
// with no interior mutability — so shared references to it from any
// thread are data-race-free, same as a `&[u8]` into a `Vec`.
unsafe impl Send for Mmap {}
#[cfg(unix)]
// SAFETY: see the `Send` justification: the region is immutable.
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Mmap {
    fn new(file: &File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a live, owned file descriptor for the duration of
        // the call; addr = null lets the kernel choose the placement; the
        // result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `drop` unmaps it; `&self` borrows prevent
        // outliving the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe exactly the region `mmap` returned
        // and it has not been unmapped before (drop runs once).
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

#[cfg(unix)]
impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// Whether a byte range of a [`Storage`] can be reinterpreted as `[u32]`
/// / `[f32]` in place: little-endian target and 4-byte-aligned start (the
/// length is the caller's element count × 4 by construction).
pub fn zero_copy_eligible(storage: &Storage, byte_offset: usize) -> bool {
    let base = storage.as_bytes().as_ptr() as usize;
    cfg!(target_endian = "little") && (base + byte_offset).is_multiple_of(4)
}

/// A `u32` sequence that either owns its elements or borrows them from a
/// shared [`Storage`] — the building block of mapped CSR views.
#[derive(Clone)]
pub enum U32Buf {
    /// Heap-owned elements.
    Owned(Vec<u32>),
    /// A zero-copy window into a shared storage blob.
    Mapped {
        /// The backing blob, kept alive by this view.
        storage: Arc<Storage>,
        /// Byte offset of the first element (4-byte aligned).
        byte_offset: usize,
        /// Number of `u32` elements.
        len: usize,
    },
}

impl U32Buf {
    /// Builds a mapped view after checking the zero-copy preconditions;
    /// returns `None` when the platform or alignment disqualifies it (the
    /// caller then decodes into an owned buffer instead).
    pub fn mapped(storage: &Arc<Storage>, byte_offset: usize, len: usize) -> Option<Self> {
        let bytes = storage.as_bytes();
        let end = byte_offset.checked_add(len.checked_mul(4)?)?;
        if end > bytes.len() || !zero_copy_eligible(storage, byte_offset) {
            return None;
        }
        Some(U32Buf::Mapped {
            storage: Arc::clone(storage),
            byte_offset,
            len,
        })
    }

    /// The elements as a slice, whatever the backing store.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            U32Buf::Owned(v) => v,
            U32Buf::Mapped {
                storage,
                byte_offset,
                len,
            } => {
                let bytes = storage.as_bytes();
                // SAFETY: construction checked little-endianness, 4-byte
                // alignment of base + byte_offset, and that
                // byte_offset + 4·len is in bounds; u32 has no invalid
                // bit patterns; the storage is immutable and outlives
                // this borrow via the Arc.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr().add(*byte_offset) as *const u32, *len)
                }
            }
        }
    }

    /// Whether this buffer borrows from a mapped file.
    pub fn is_mapped(&self) -> bool {
        matches!(self, U32Buf::Mapped { .. })
    }
}

impl std::fmt::Debug for U32Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            U32Buf::Owned(v) => write!(f, "U32Buf::Owned(len = {})", v.len()),
            U32Buf::Mapped { len, .. } => write!(f, "U32Buf::Mapped(len = {len})"),
        }
    }
}

impl From<Vec<u32>> for U32Buf {
    fn from(v: Vec<u32>) -> Self {
        U32Buf::Owned(v)
    }
}

/// An `f32` sequence that either owns its elements or borrows them from a
/// shared [`Storage`] — the building block of mapped embedding tables in
/// `bns-serve`. Same zero-copy preconditions as [`U32Buf`] (`f32` and
/// `u32` share size, alignment, and the every-bit-pattern-valid property).
#[derive(Clone)]
pub enum F32Buf {
    /// Heap-owned elements.
    Owned(Vec<f32>),
    /// A zero-copy window into a shared storage blob.
    Mapped {
        /// The backing blob, kept alive by this view.
        storage: Arc<Storage>,
        /// Byte offset of the first element (4-byte aligned).
        byte_offset: usize,
        /// Number of `f32` elements.
        len: usize,
    },
}

impl F32Buf {
    /// Builds a mapped view after checking the zero-copy preconditions;
    /// `None` when the platform or alignment disqualifies it.
    pub fn mapped(storage: &Arc<Storage>, byte_offset: usize, len: usize) -> Option<Self> {
        let bytes = storage.as_bytes();
        let end = byte_offset.checked_add(len.checked_mul(4)?)?;
        if end > bytes.len() || !zero_copy_eligible(storage, byte_offset) {
            return None;
        }
        Some(F32Buf::Mapped {
            storage: Arc::clone(storage),
            byte_offset,
            len,
        })
    }

    /// The elements as a slice, whatever the backing store.
    pub fn as_slice(&self) -> &[f32] {
        match self {
            F32Buf::Owned(v) => v,
            F32Buf::Mapped {
                storage,
                byte_offset,
                len,
            } => {
                let bytes = storage.as_bytes();
                // SAFETY: same invariants as `U32Buf::as_slice` — bounds,
                // alignment and endianness were checked at construction,
                // every bit pattern is a valid f32, and the Arc keeps the
                // immutable storage alive for the borrow.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr().add(*byte_offset) as *const f32, *len)
                }
            }
        }
    }

    /// Whether this buffer borrows from a mapped file.
    pub fn is_mapped(&self) -> bool {
        matches!(self, F32Buf::Mapped { .. })
    }
}

impl std::fmt::Debug for F32Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            F32Buf::Owned(v) => write!(f, "F32Buf::Owned(len = {})", v.len()),
            F32Buf::Mapped { len, .. } => write!(f, "F32Buf::Mapped(len = {len})"),
        }
    }
}

impl From<Vec<f32>> for F32Buf {
    fn from(v: Vec<f32>) -> Self {
        F32Buf::Owned(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bns_storage_{}_{name}", std::process::id()))
    }

    #[test]
    fn map_and_read_agree() {
        let path = temp("agree.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let read = Storage::read(&path).unwrap();
        let mapped = Storage::map(&path).unwrap();
        assert_eq!(read.as_bytes(), payload.as_slice());
        assert_eq!(mapped.as_bytes(), payload.as_slice());
        assert!(!read.is_mapped());
        #[cfg(unix)]
        assert!(mapped.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_owned() {
        let path = temp("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let mapped = Storage::map(&path).unwrap();
        assert!(mapped.as_bytes().is_empty());
        assert!(!mapped.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Storage::map(&temp("definitely_missing.bin")).is_err());
        assert!(Storage::read(&temp("definitely_missing.bin")).is_err());
    }

    #[test]
    fn mapped_u32_view_round_trips() {
        let path = temp("u32view.bin");
        let values: Vec<u32> = (0..2_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let storage = Arc::new(Storage::map(&path).unwrap());
        let view = U32Buf::mapped(&storage, 0, values.len()).expect("aligned LE view");
        assert_eq!(view.as_slice(), values.as_slice());
        // A 4-byte-offset window skips the first element.
        let shifted = U32Buf::mapped(&storage, 4, values.len() - 1).expect("aligned");
        assert_eq!(shifted.as_slice(), &values[1..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn misaligned_or_out_of_bounds_views_are_refused() {
        let storage = Arc::new(Storage::Owned(vec![0u8; 64]));
        if cfg!(target_endian = "little") {
            // The storage base is heap-aligned; +1 cannot be 4-aligned.
            let base = storage.as_bytes().as_ptr() as usize;
            let misaligned_offset = (4 - base % 4) % 4 + 1;
            assert!(U32Buf::mapped(&storage, misaligned_offset, 4).is_none());
        }
        assert!(
            U32Buf::mapped(&storage, 0, 17).is_none(),
            "64 bytes < 17 u32"
        );
        assert!(U32Buf::mapped(&storage, usize::MAX, 1).is_none());
        assert!(U32Buf::mapped(&storage, 0, usize::MAX).is_none());
    }

    #[test]
    fn mapped_f32_view_round_trips() {
        let path = temp("f32view.bin");
        let values: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let storage = Arc::new(Storage::map(&path).unwrap());
        let view = F32Buf::mapped(&storage, 0, values.len()).expect("aligned LE view");
        assert_eq!(view.as_slice(), values.as_slice());
        assert!(view.is_mapped() == storage.is_mapped());
        assert!(F32Buf::mapped(&storage, 0, values.len() + 1).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_view_keeps_storage_alive() {
        let path = temp("alive.bin");
        std::fs::write(&path, 7u32.to_le_bytes()).unwrap();
        let storage = Arc::new(Storage::map(&path).unwrap());
        let view = U32Buf::mapped(&storage, 0, 1);
        drop(storage);
        if let Some(view) = view {
            assert_eq!(view.as_slice(), &[7]);
        }
        std::fs::remove_file(&path).ok();
    }
}
