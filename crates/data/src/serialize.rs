//! Binary serialization of interaction data.
//!
//! A tiny, versioned little-endian format built on the `bytes` crate, used
//! to cache generated datasets between harness runs (generating the 1M-scale
//! synthetic dataset takes noticeably longer than loading its cached form).
//!
//! Layout:
//! ```text
//! magic  u32  = 0x424E5331 ("BNS1")
//! n_users u32
//! n_items u32
//! n_offsets u64, then offsets as u32 LE
//! n_items_arr u64, then items as u32 LE
//! ```
//!
//! Both `u32` arrays start at 4-byte-aligned file offsets (20 and
//! `28 + 4·n_offsets`), which is what lets [`map_interactions`] hand out
//! CSR views directly over the mapped file with no copy and no
//! per-element decode loop. [`load_interactions`] remains the buffered
//! path; the two agree bit-for-bit
//! (`mapped_load_agrees_with_buffered_load` below).

use crate::interactions::Interactions;
use crate::storage::{Storage, U32Buf};
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Format magic — "BNS1".
const MAGIC: u32 = 0x424E_5331;

/// Encodes interactions into a self-describing binary buffer.
pub fn encode_interactions(x: &Interactions) -> Bytes {
    let (n_users, n_items, offsets, items) = x.csr_parts();
    let mut buf = BytesMut::with_capacity(24 + 4 * (offsets.len() + items.len()));
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(n_users);
    buf.put_u32_le(n_items);
    buf.put_u64_le(offsets.len() as u64);
    for &o in offsets {
        buf.put_u32_le(o);
    }
    buf.put_u64_le(items.len() as u64);
    for &i in items {
        buf.put_u32_le(i);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode_interactions`], re-validating all
/// CSR invariants.
pub fn decode_interactions(mut buf: &[u8]) -> Result<Interactions> {
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(DataError::Invalid(format!(
                "truncated buffer while reading {what}"
            )))
        } else {
            Ok(())
        }
    };
    need(&buf, 4, "magic")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DataError::Invalid(format!(
            "bad magic 0x{magic:08X}, expected 0x{MAGIC:08X}"
        )));
    }
    need(&buf, 8, "header")?;
    let n_users = buf.get_u32_le();
    let n_items = buf.get_u32_le();

    need(&buf, 8, "offsets length")?;
    let n_offsets = buf.get_u64_le() as usize;
    need(&buf, n_offsets.saturating_mul(4), "offsets")?;
    let mut offsets = Vec::with_capacity(n_offsets);
    for _ in 0..n_offsets {
        offsets.push(buf.get_u32_le());
    }

    need(&buf, 8, "items length")?;
    let n_arr = buf.get_u64_le() as usize;
    need(&buf, n_arr.saturating_mul(4), "items")?;
    let mut items = Vec::with_capacity(n_arr);
    for _ in 0..n_arr {
        items.push(buf.get_u32_le());
    }
    if buf.remaining() != 0 {
        return Err(DataError::Invalid("trailing bytes after payload".into()));
    }
    Interactions::from_csr_parts(n_users, n_items, offsets, items)
}

/// Writes interactions to a file.
pub fn save_interactions(x: &Interactions, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, encode_interactions(x))?;
    Ok(())
}

/// Reads interactions from a file.
pub fn load_interactions(path: &std::path::Path) -> Result<Interactions> {
    let data = std::fs::read(path)?;
    decode_interactions(&data)
}

/// Loads interactions zero-copy: the file is memory-mapped and the CSR
/// arrays are aligned views straight into the mapping — no read pass, no
/// copy, no per-element decode. All CSR invariants are still validated
/// over the views; if the platform disqualifies zero-copy (big-endian or
/// an unaligned base) this silently degrades to an owned decode of the
/// mapped bytes, so the result is identical either way.
pub fn map_interactions(path: &std::path::Path) -> Result<Interactions> {
    let storage = Arc::new(Storage::map(path)?);
    let len = storage.as_bytes().len();
    decode_interactions_storage(&storage, 0, len)
}

/// Decodes a `BNS1` region embedded in a shared [`Storage`] blob at
/// `[start, start + len)`, preferring zero-copy views. This is the
/// region-decode core behind [`map_interactions`], also driven by
/// `bns-serve` for the CSR sections of mapped model artifacts.
pub fn decode_interactions_storage(
    storage: &Arc<Storage>,
    start: usize,
    len: usize,
) -> Result<Interactions> {
    let all = storage.as_bytes();
    let end = start
        .checked_add(len)
        .filter(|&e| e <= all.len())
        .ok_or_else(|| DataError::Invalid("interaction region out of bounds".into()))?;
    let region = &all[start..end];

    let need = |pos: usize, n: usize, what: &str| -> Result<usize> {
        pos.checked_add(n)
            .filter(|&e| e <= region.len())
            .ok_or_else(|| DataError::Invalid(format!("truncated buffer while reading {what}")))
    };
    let u32_at = |pos: usize| -> u32 {
        u32::from_le_bytes(region[pos..pos + 4].try_into().expect("4 bytes"))
    };
    let u64_at = |pos: usize| -> u64 {
        u64::from_le_bytes(region[pos..pos + 8].try_into().expect("8 bytes"))
    };

    need(0, 4, "magic")?;
    let magic = u32_at(0);
    if magic != MAGIC {
        return Err(DataError::Invalid(format!(
            "bad magic 0x{magic:08X}, expected 0x{MAGIC:08X}"
        )));
    }
    need(4, 8, "header")?;
    let n_users = u32_at(4);
    let n_items = u32_at(8);

    need(12, 8, "offsets length")?;
    let n_offsets = u64_at(12) as usize;
    let offsets_at = need(12, 8, "offsets length")?;
    let items_len_at = need(offsets_at, n_offsets.saturating_mul(4), "offsets")?;

    need(items_len_at, 8, "items length")?;
    let n_arr = u64_at(items_len_at) as usize;
    let items_at = items_len_at + 8;
    let payload_end = need(items_at, n_arr.saturating_mul(4), "items")?;
    if payload_end != region.len() {
        return Err(DataError::Invalid("trailing bytes after payload".into()));
    }

    let decode_owned =
        |pos: usize, n: usize| -> Vec<u32> { (0..n).map(|k| u32_at(pos + 4 * k)).collect() };
    let (offsets, items) = match (
        U32Buf::mapped(storage, start + offsets_at, n_offsets),
        U32Buf::mapped(storage, start + items_at, n_arr),
    ) {
        (Some(o), Some(i)) => (o, i),
        _ => (
            decode_owned(offsets_at, n_offsets).into(),
            decode_owned(items_at, n_arr).into(),
        ),
    };
    Interactions::from_csr_views(n_users, n_items, offsets, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Interactions {
        Interactions::from_pairs(3, 5, &[(0, 1), (0, 3), (1, 0), (2, 4)]).unwrap()
    }

    #[test]
    fn round_trip() {
        let x = sample();
        let buf = encode_interactions(&x);
        let y = decode_interactions(&buf).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn empty_interactions_round_trip() {
        let x = Interactions::from_pairs(2, 2, &[]).unwrap();
        let y = decode_interactions(&encode_interactions(&x)).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encode_interactions(&sample()).to_vec();
        buf[0] ^= 0xFF;
        assert!(decode_interactions(&buf).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let buf = encode_interactions(&sample()).to_vec();
        for cut in 0..buf.len() {
            assert!(
                decode_interactions(&buf[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = encode_interactions(&sample()).to_vec();
        buf.push(0);
        assert!(decode_interactions(&buf).is_err());
    }

    #[test]
    fn rejects_corrupted_payload() {
        // Corrupt an item id to be out of range.
        let x = sample();
        let mut buf = encode_interactions(&x).to_vec();
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_interactions(&buf).is_err());
    }

    #[test]
    fn file_round_trip() {
        let x = sample();
        let path = std::env::temp_dir().join("bns_serialize_test.bin");
        save_interactions(&x, &path).unwrap();
        let y = load_interactions(&path).unwrap();
        assert_eq!(x, y);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_agrees_with_buffered_load() {
        let x = sample();
        let path =
            std::env::temp_dir().join(format!("bns_serialize_map_{}.bin", std::process::id()));
        save_interactions(&x, &path).unwrap();
        let buffered = load_interactions(&path).unwrap();
        let mapped = map_interactions(&path).unwrap();
        assert_eq!(buffered, mapped);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(
            mapped.is_mapped(),
            "unix LE load must take the zero-copy path"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_rejects_every_truncation() {
        let x = sample();
        let buf = encode_interactions(&x).to_vec();
        let path =
            std::env::temp_dir().join(format!("bns_serialize_trunc_{}.bin", std::process::id()));
        for cut in 0..buf.len() {
            std::fs::write(&path, &buf[..cut]).unwrap();
            assert!(
                map_interactions(&path).is_err(),
                "mapped truncation at {cut} was accepted"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_rejects_corrupt_payload() {
        let x = sample();
        let mut buf = encode_interactions(&x).to_vec();
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&1000u32.to_le_bytes());
        let path =
            std::env::temp_dir().join(format!("bns_serialize_corrupt_{}.bin", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        assert!(map_interactions(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn storage_region_decode_honours_offsets() {
        // Embed the payload at a 4-aligned offset inside a larger blob, as
        // the serve artifact does, and decode just that region.
        let x = sample();
        let payload = encode_interactions(&x).to_vec();
        let mut blob = vec![0xAAu8; 64];
        blob.extend_from_slice(&payload);
        let storage = Arc::new(Storage::Owned(blob));
        let y = decode_interactions_storage(&storage, 64, payload.len()).unwrap();
        assert_eq!(x, y);
        // A region that runs past the blob is an error, not a panic.
        assert!(decode_interactions_storage(&storage, 64, payload.len() + 1).is_err());
        assert!(decode_interactions_storage(&storage, usize::MAX, 4).is_err());
    }
}
