//! Binary serialization of interaction data.
//!
//! A tiny, versioned little-endian format built on the `bytes` crate, used
//! to cache generated datasets between harness runs (generating the 1M-scale
//! synthetic dataset takes noticeably longer than loading its cached form).
//!
//! Layout:
//! ```text
//! magic  u32  = 0x424E5331 ("BNS1")
//! n_users u32
//! n_items u32
//! n_offsets u64, then offsets as u32 LE
//! n_items_arr u64, then items as u32 LE
//! ```

use crate::interactions::Interactions;
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic — "BNS1".
const MAGIC: u32 = 0x424E_5331;

/// Encodes interactions into a self-describing binary buffer.
pub fn encode_interactions(x: &Interactions) -> Bytes {
    let (n_users, n_items, offsets, items) = x.csr_parts();
    let mut buf = BytesMut::with_capacity(24 + 4 * (offsets.len() + items.len()));
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(n_users);
    buf.put_u32_le(n_items);
    buf.put_u64_le(offsets.len() as u64);
    for &o in offsets {
        buf.put_u32_le(o);
    }
    buf.put_u64_le(items.len() as u64);
    for &i in items {
        buf.put_u32_le(i);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode_interactions`], re-validating all
/// CSR invariants.
pub fn decode_interactions(mut buf: &[u8]) -> Result<Interactions> {
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(DataError::Invalid(format!(
                "truncated buffer while reading {what}"
            )))
        } else {
            Ok(())
        }
    };
    need(&buf, 4, "magic")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DataError::Invalid(format!(
            "bad magic 0x{magic:08X}, expected 0x{MAGIC:08X}"
        )));
    }
    need(&buf, 8, "header")?;
    let n_users = buf.get_u32_le();
    let n_items = buf.get_u32_le();

    need(&buf, 8, "offsets length")?;
    let n_offsets = buf.get_u64_le() as usize;
    need(&buf, n_offsets.saturating_mul(4), "offsets")?;
    let mut offsets = Vec::with_capacity(n_offsets);
    for _ in 0..n_offsets {
        offsets.push(buf.get_u32_le());
    }

    need(&buf, 8, "items length")?;
    let n_arr = buf.get_u64_le() as usize;
    need(&buf, n_arr.saturating_mul(4), "items")?;
    let mut items = Vec::with_capacity(n_arr);
    for _ in 0..n_arr {
        items.push(buf.get_u32_le());
    }
    if buf.remaining() != 0 {
        return Err(DataError::Invalid("trailing bytes after payload".into()));
    }
    Interactions::from_csr_parts(n_users, n_items, offsets, items)
}

/// Writes interactions to a file.
pub fn save_interactions(x: &Interactions, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, encode_interactions(x))?;
    Ok(())
}

/// Reads interactions from a file.
pub fn load_interactions(path: &std::path::Path) -> Result<Interactions> {
    let data = std::fs::read(path)?;
    decode_interactions(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Interactions {
        Interactions::from_pairs(3, 5, &[(0, 1), (0, 3), (1, 0), (2, 4)]).unwrap()
    }

    #[test]
    fn round_trip() {
        let x = sample();
        let buf = encode_interactions(&x);
        let y = decode_interactions(&buf).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn empty_interactions_round_trip() {
        let x = Interactions::from_pairs(2, 2, &[]).unwrap();
        let y = decode_interactions(&encode_interactions(&x)).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encode_interactions(&sample()).to_vec();
        buf[0] ^= 0xFF;
        assert!(decode_interactions(&buf).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let buf = encode_interactions(&sample()).to_vec();
        for cut in 0..buf.len() {
            assert!(
                decode_interactions(&buf[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = encode_interactions(&sample()).to_vec();
        buf.push(0);
        assert!(decode_interactions(&buf).is_err());
    }

    #[test]
    fn rejects_corrupted_payload() {
        // Corrupt an item id to be out of range.
        let x = sample();
        let mut buf = encode_interactions(&x).to_vec();
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_interactions(&buf).is_err());
    }

    #[test]
    fn file_round_trip() {
        let x = sample();
        let path = std::env::temp_dir().join("bns_serialize_test.bin");
        save_interactions(&x, &path).unwrap();
        let y = load_interactions(&path).unwrap();
        assert_eq!(x, y);
        std::fs::remove_file(&path).ok();
    }
}
