//! Synthetic implicit-feedback dataset generator.
//!
//! The environment cannot download MovieLens or Yahoo!-R3, so the paper's
//! datasets are replaced by statistically matched synthetic stand-ins (see
//! DESIGN.md §3). The generator plants structure that the paper's analysis
//! depends on:
//!
//! 1. **Latent preference structure.** Users and items get low-rank latent
//!    vectors; interaction propensity grows with their dot product. The
//!    held-out 20% therefore contains items the user genuinely "likes" —
//!    real *false negatives* during training, which is precisely the
//!    population whose scores drift upward in Fig. 1.
//! 2. **Popularity skew.** Item base propensity follows a Zipf law, giving
//!    the long-tailed popularity profile that PNS (`r^0.75`) and the BNS
//!    prior (`popₗ/N`, Eq. 17) key on.
//! 3. **Heterogeneous user activity.** Per-user interaction counts follow a
//!    log-normal law calibrated so the total matches the target count.
//! 4. **Occupation groups.** Users belong to occupation groups that shift
//!    their latent vectors, so occupation statistics carry signal — the
//!    property the BNS-4 prior of Table III exploits.
//!
//! Sampling per user uses the Gumbel-top-k trick: adding iid Gumbel noise to
//! utility logits and taking the top-k is equivalent to sampling k items
//! without replacement from the softmax distribution.
//!
//! ## Streaming at million scale
//!
//! Every random quantity is **hash-derived**: latent components, Gumbel
//! keys, activity draws and occupation labels are pure functions of
//! `(seed, salt, id, component)` through a splitmix64 chain, bit-exact
//! reproducible in any evaluation order. Nothing forces a dense
//! `n_users × d` or `n_items × d` table to exist — [`RowStream`] emits one
//! user row at a time from O(row) scratch plus O(n_items) popularity
//! metadata, and [`generate_streamed`] pipes that straight into CSR
//! construction ([`crate::interactions::RowStreamBuilder`], the push core
//! of `InteractionsBuilder::from_stream`). [`generate`] — the in-RAM
//! analysis path — drives the *same* row stream, so the two are identical
//! by construction (`tests/synthetic_equivalence.rs` additionally proves
//! the stream against an independent dense reference).
//!
//! Per-user emission has two regimes, selected by [`EmissionMode`]:
//!
//! * **Exact** — score every item (`utility = β_lat·⟨w_u, h_i⟩ +
//!   β_pop·pop_logit + Gumbel`) and take the top-k. O(n_items) per user;
//!   item vectors are cached (that cache is the only dense table, and it
//!   only exists in this small-catalog regime).
//! * **Pooled** — sampled-softmax: draw a candidate pool of
//!   `oversample × k` distinct items from the popularity proposal
//!   `q(i) ∝ exp(β_pop·pop_logit_i)` (alias table), then Gumbel-top-k over
//!   the pool with importance-corrected logits. The correction subtracts
//!   `ln q(i)`, which cancels the popularity term exactly, leaving
//!   `β_lat·⟨w_u, h_i⟩ + Gumbel` — so the popularity skew enters through
//!   the pool composition and the latent signal through the selection,
//!   preserving both planted structures at 1M × 1M without any full-catalog
//!   scan.

use crate::interactions::{Interactions, RowStreamBuilder};
use crate::occupation::Occupations;
use crate::{DataError, Result};
use bns_stats::alias::AliasTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How a user's interaction row is drawn from the planted utility model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum EmissionMode {
    /// Pick per catalog size: [`EmissionMode::Exact`] when
    /// `n_items ≤ 4096`, else [`EmissionMode::Pooled`] with oversample 4.
    #[default]
    Auto,
    /// Full-catalog scan: exact Gumbel-top-k over all `n_items` utilities.
    Exact,
    /// Sampled-softmax over a popularity-proposal candidate pool of
    /// `oversample × k` distinct items (importance-corrected, see module
    /// docs). Constant work per emitted interaction.
    Pooled {
        /// Pool size multiplier over the user's activity k (≥ 1).
        oversample: u32,
    },
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Target total number of interactions (approximate; user activities are
    /// integer draws).
    pub target_interactions: usize,
    /// Latent dimensionality of the planted preference model.
    pub latent_dim: usize,
    /// Zipf exponent of item base popularity (≈1 for MovieLens-like skew).
    pub popularity_exponent: f64,
    /// Weight of the popularity logit in the interaction utility.
    pub popularity_weight: f64,
    /// Weight of the latent dot product in the interaction utility
    /// (higher → stronger collaborative signal, easier false negatives).
    pub latent_weight: f64,
    /// Log-normal σ of per-user activity.
    pub activity_sigma: f64,
    /// Minimum interactions per user (MovieLens guarantees 20).
    pub min_activity: u32,
    /// Number of occupation groups (MovieLens-100K has 21).
    pub n_occupations: u32,
    /// Share ρ ∈ [0, 1) of a user's latent vector contributed by the
    /// occupation group vector.
    pub occupation_mix: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
    /// Row-emission regime (defaults to [`EmissionMode::Auto`]).
    pub emission: EmissionMode,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_users: 200,
            n_items: 400,
            target_interactions: 8_000,
            latent_dim: 8,
            popularity_exponent: 1.0,
            popularity_weight: 1.0,
            latent_weight: 4.0,
            activity_sigma: 0.6,
            min_activity: 5,
            n_occupations: 8,
            occupation_mix: 0.3,
            seed: 42,
            emission: EmissionMode::Auto,
        }
    }
}

/// Catalog size up to which [`EmissionMode::Auto`] scans exactly.
const AUTO_EXACT_ITEM_LIMIT: u32 = 4096;
/// Pool multiplier [`EmissionMode::Auto`] uses in the pooled regime.
const AUTO_OVERSAMPLE: u32 = 4;

impl SyntheticConfig {
    fn validate(&self) -> Result<()> {
        if self.n_users == 0 || self.n_items == 0 {
            return Err(DataError::Invalid(
                "need at least one user and one item".into(),
            ));
        }
        if self.latent_dim == 0 {
            return Err(DataError::Invalid("latent_dim must be > 0".into()));
        }
        if self.target_interactions == 0 {
            return Err(DataError::Invalid("target_interactions must be > 0".into()));
        }
        if !(0.0..1.0).contains(&self.occupation_mix) {
            return Err(DataError::Invalid(
                "occupation_mix must be in [0, 1)".into(),
            ));
        }
        if self.n_occupations == 0 {
            return Err(DataError::Invalid("n_occupations must be > 0".into()));
        }
        if let EmissionMode::Pooled { oversample } = self.emission {
            if oversample == 0 {
                return Err(DataError::Invalid("pool oversample must be ≥ 1".into()));
            }
        }
        let max_possible = self.n_users as u64 * self.n_items as u64;
        if self.target_interactions as u64 > max_possible {
            return Err(DataError::Invalid(format!(
                "target_interactions {} exceeds the {} possible pairs",
                self.target_interactions, max_possible
            )));
        }
        Ok(())
    }

    /// The regime [`EmissionMode::Auto`] resolves to for this config.
    pub fn resolved_emission(&self) -> EmissionMode {
        match self.emission {
            EmissionMode::Auto => {
                if self.n_items <= AUTO_EXACT_ITEM_LIMIT {
                    EmissionMode::Exact
                } else {
                    EmissionMode::Pooled {
                        oversample: AUTO_OVERSAMPLE,
                    }
                }
            }
            m => m,
        }
    }
}

// ---------------------------------------------------------------------------
// Hash-derived randomness: every draw is a pure function of
// (seed, salt, id, component), so any subset of the dataset can be
// regenerated bit-exactly without sequencing a global RNG.
// ---------------------------------------------------------------------------

const SALT_OCC_LABEL: u64 = 0x4F43_434C_4142_454C; // "OCCLABEL"
const SALT_OCC_VEC: u64 = 0x4F43_4356_4543_544F;
const SALT_USER_VEC: u64 = 0x5553_4552_5645_4354;
const SALT_ITEM_VEC: u64 = 0x4954_454D_5645_4354;
const SALT_ACTIVITY: u64 = 0x4143_5449_5649_5459;
const SALT_GUMBEL: u64 = 0x4755_4D42_454C_4B45;
const SALT_POOL: u64 = 0x504F_4F4C_5345_4544;
const SALT_RANK: u64 = 0x5241_4E4B_5045_524D;
const SALT_GROUP_LABEL: u64 = 0x4752_504C_4142_454C; // "GRPLABEL"
const SALT_GROUP_VEC: u64 = 0x4752_5056_4543_544F;
const SALT_GROUP_NOISE: u64 = 0x4752_504E_4F49_5345;

/// The splitmix64 finalizer — a full-avalanche 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes `(seed, salt, a, b)` into a uniform 64-bit hash.
#[inline]
fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ a);
    splitmix64(h ^ b)
}

/// Uniform in the open interval (0, 1) — safe for `ln` and `ln(-ln ·)`.
#[inline]
fn unit_open(h: u64) -> f64 {
    ((h >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// A standard normal via Box-Muller over two independent hashes.
#[inline]
fn std_gaussian(seed: u64, salt: u64, id: u64, component: u64) -> f64 {
    let u1 = unit_open(mix(seed, salt, id, component.wrapping_mul(2)));
    let u2 = unit_open(mix(seed, salt, id, component.wrapping_mul(2) + 1));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The Gumbel(0, 1) perturbation key of pair `(u, i)` — a pure function of
/// the seed, so deduplicated pool draws keep their key and emission order
/// cannot change a row.
pub fn pair_gumbel(seed: u64, u: u32, i: u32) -> f64 {
    let v = unit_open(mix(seed, SALT_GUMBEL, u as u64, i as u64));
    -(-v.ln()).ln()
}

/// Component `k` of the latent vector of entity `id` under `salt`, at the
/// `1/√d` prior scale. Used for users (individual part), items and
/// occupation group vectors alike.
#[inline]
fn latent_component(seed: u64, salt: u64, id: u64, k: usize, scale: f64) -> f32 {
    (scale * std_gaussian(seed, salt, id, k as u64)) as f32
}

/// Fills `out` with a **clusterable** item embedding: item `id` belongs
/// to one of `n_groups` hash-derived latent groups and its vector is that
/// group's center (at the `1/√d` prior scale) plus `within × 1/√d`
/// Gaussian within-group noise. A trained item table concentrates around
/// preference modes the same way; this is the planted stand-in that makes
/// IVF-style cluster-probed retrieval meaningful at benchmark scale,
/// where a uniform-random table would be the degenerate worst case.
///
/// Pure function of `(seed, n_groups, within, id)` — streamable in any
/// order, no RNG sequencing, O(d) work per row.
pub fn clustered_item_embedding(seed: u64, n_groups: u32, within: f64, id: u32, out: &mut [f32]) {
    let dim = out.len();
    let scale = 1.0 / (dim as f64).sqrt();
    let group = mix(seed, SALT_GROUP_LABEL, id as u64, 0) % n_groups.max(1) as u64;
    for (k, slot) in out.iter_mut().enumerate() {
        let center = latent_component(seed, SALT_GROUP_VEC, group, k, scale);
        let noise = latent_component(seed, SALT_GROUP_NOISE, id as u64, k, within * scale);
        *slot = center + noise;
    }
}

/// Occupation label of user `u` (uniform over groups, hash-derived).
fn occupation_label(seed: u64, n_occupations: u32, u: u32) -> u32 {
    (mix(seed, SALT_OCC_LABEL, u as u64, 0) % n_occupations as u64) as u32
}

/// Occupation labels for every user — O(n_users) labels, no RNG sequencing.
pub fn derive_occupations(config: &SyntheticConfig) -> Occupations {
    let labels = (0..config.n_users)
        .map(|u| occupation_label(config.seed, config.n_occupations, u))
        .collect();
    Occupations::from_labels(labels, config.n_occupations)
}

/// Activity (row length) of user `u`: a log-normal draw calibrated so the
/// expected total matches `target_interactions`, clamped to
/// `[min_activity, n_items − 1]`.
pub fn user_activity(config: &SyntheticConfig, u: u32) -> u32 {
    let sigma = config.activity_sigma.max(1e-9);
    let mu = (config.target_interactions as f64 / config.n_users as f64).ln() - sigma * sigma / 2.0;
    let raw = (mu + sigma * std_gaussian(config.seed, SALT_ACTIVITY, u as u64, 0))
        .exp()
        .round();
    let max_per_user = config.n_items.saturating_sub(1).max(1);
    (raw as u32).clamp(config.min_activity.min(max_per_user), max_per_user)
}

/// Zipf popularity logits over a seed-derived random item permutation (so
/// popularity is independent of the latent geometry):
/// `pop_logit[i] = −s·ln(rank_i + 1)`.
pub fn popularity_logits(config: &SyntheticConfig) -> Vec<f64> {
    let mut ranks: Vec<u32> = (0..config.n_items).collect();
    let mut rng = StdRng::seed_from_u64(mix(config.seed, SALT_RANK, 0, 0));
    ranks.shuffle(&mut rng);
    let mut pop_logit = vec![0f64; config.n_items as usize];
    for (rank_pos, &item) in ranks.iter().enumerate() {
        pop_logit[item as usize] = -config.popularity_exponent * ((rank_pos + 1) as f64).ln();
    }
    pop_logit
}

/// A generated dataset: interactions, occupation labels, and the planted
/// ground-truth latent model (kept for analysis and tests).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// All generated interactions (pre-split).
    pub interactions: Interactions,
    /// Occupation label per user.
    pub occupations: Occupations,
    /// Planted user latent vectors, row-major `n_users × latent_dim`.
    pub user_factors: Vec<f32>,
    /// Planted item latent vectors, row-major `n_items × latent_dim`.
    pub item_factors: Vec<f32>,
    /// The config used for generation.
    pub config: SyntheticConfig,
}

impl SyntheticDataset {
    /// Ground-truth affinity of `(u, i)` under the planted model
    /// (latent dot product only; no popularity term).
    pub fn true_affinity(&self, u: u32, i: u32) -> f32 {
        let d = self.config.latent_dim;
        let wu = &self.user_factors[u as usize * d..(u as usize + 1) * d];
        let hi = &self.item_factors[i as usize * d..(i as usize + 1) * d];
        wu.iter().zip(hi).map(|(a, b)| a * b).sum()
    }
}

/// The resolved per-run state shared by every emission path: O(n_items)
/// popularity metadata, the tiny occupation-vector table, and — only in
/// the exact regime — the item-factor cache.
struct PlantedModel {
    cfg: SyntheticConfig,
    scale: f64,
    w_ind: f32,
    w_occ: f32,
    /// Occupation group vectors, `n_occupations × d` (tiny).
    occ_factors: Vec<f32>,
    pop_logit: Vec<f64>,
    /// Exact regime only: cached item vectors, `n_items × d`.
    item_cache: Option<Vec<f32>>,
    /// Pooled regime only: alias table over `q(i) ∝ exp(β_pop·pop_logit)`.
    alias: Option<AliasTable>,
    /// Pooled regime only: the normalized proposal probabilities `q(i)`,
    /// needed for the importance correction.
    proposal_q: Vec<f64>,
    oversample: u32,
}

/// Reusable per-row scratch: the only allocation growth across a stream
/// is `Vec` capacity high-water marks.
struct EmitScratch {
    user_vec: Vec<f32>,
    item_vec: Vec<f32>,
    utilities: Vec<(f64, u32)>,
    pool: Vec<u32>,
    row: Vec<u32>,
}

impl PlantedModel {
    fn build(config: &SyntheticConfig) -> Result<Self> {
        config.validate()?;
        let d = config.latent_dim;
        let scale = 1.0 / (d as f64).sqrt();
        let rho = config.occupation_mix;
        let seed = config.seed;

        let mut occ_factors = vec![0f32; config.n_occupations as usize * d];
        for o in 0..config.n_occupations as usize {
            for k in 0..d {
                occ_factors[o * d + k] = latent_component(seed, SALT_OCC_VEC, o as u64, k, scale);
            }
        }

        let pop_logit = popularity_logits(config);
        let (item_cache, alias, proposal_q, oversample) = match config.resolved_emission() {
            EmissionMode::Exact => {
                let mut cache = vec![0f32; config.n_items as usize * d];
                for i in 0..config.n_items as usize {
                    for k in 0..d {
                        cache[i * d + k] =
                            latent_component(seed, SALT_ITEM_VEC, i as u64, k, scale);
                    }
                }
                (Some(cache), None, Vec::new(), 0)
            }
            EmissionMode::Pooled { oversample } => {
                let weights: Vec<f64> = pop_logit
                    .iter()
                    .map(|&l| (config.popularity_weight * l).exp())
                    .collect();
                let total: f64 = weights.iter().sum();
                let q: Vec<f64> = weights.iter().map(|w| w / total).collect();
                let alias = AliasTable::new(&weights)
                    .map_err(|e| DataError::Invalid(format!("popularity proposal: {e}")))?;
                (None, Some(alias), q, oversample)
            }
            EmissionMode::Auto => unreachable!("resolved_emission never returns Auto"),
        };

        Ok(Self {
            cfg: config.clone(),
            scale,
            w_ind: (1.0 - rho).sqrt() as f32,
            w_occ: rho.sqrt() as f32,
            occ_factors,
            pop_logit,
            item_cache,
            alias,
            proposal_q,
            oversample,
        })
    }

    fn scratch(&self) -> EmitScratch {
        let d = self.cfg.latent_dim;
        EmitScratch {
            user_vec: vec![0f32; d],
            item_vec: vec![0f32; d],
            utilities: Vec::new(),
            pool: Vec::new(),
            row: Vec::new(),
        }
    }

    /// Writes user `u`'s latent vector into `out`:
    /// `√(1−ρ)·individual + √ρ·occupation-group`.
    fn user_vec_into(&self, u: u32, out: &mut [f32]) {
        let d = self.cfg.latent_dim;
        let o = occupation_label(self.cfg.seed, self.cfg.n_occupations, u) as usize;
        for (k, slot) in out.iter_mut().enumerate() {
            let ind = latent_component(self.cfg.seed, SALT_USER_VEC, u as u64, k, self.scale);
            *slot = self.w_ind * ind + self.w_occ * self.occ_factors[o * d + k];
        }
    }

    /// Item `i`'s latent vector — from the cache in the exact regime,
    /// derived on the fly in the pooled one (identical values either way).
    fn item_vec<'a>(&'a self, i: u32, scratch_vec: &'a mut [f32]) -> &'a [f32] {
        let d = self.cfg.latent_dim;
        match &self.item_cache {
            Some(cache) => &cache[i as usize * d..(i as usize + 1) * d],
            None => {
                for (k, slot) in scratch_vec.iter_mut().enumerate() {
                    *slot = latent_component(self.cfg.seed, SALT_ITEM_VEC, i as u64, k, self.scale);
                }
                scratch_vec
            }
        }
    }

    /// Emits user `u`'s row into `scratch.row`, sorted ascending.
    fn emit_row(&self, u: u32, scratch: &mut EmitScratch) {
        let cfg = &self.cfg;
        let k = user_activity(cfg, u) as usize;
        let mut user_vec = std::mem::take(&mut scratch.user_vec);
        self.user_vec_into(u, &mut user_vec);

        scratch.utilities.clear();
        if let Some(alias) = &self.alias {
            // Pooled regime: distinct popularity-proposal candidates …
            let target = (k * self.oversample as usize).min(cfg.n_items as usize);
            let mut rng = StdRng::seed_from_u64(mix(cfg.seed, SALT_POOL, u as u64, 0));
            scratch.pool.clear();
            let max_draws = 32 * target + 256;
            let mut draws = 0usize;
            while scratch.pool.len() < target && draws < max_draws {
                let burst = target - scratch.pool.len();
                for _ in 0..burst.max(8) {
                    scratch.pool.push(alias.sample(&mut rng) as u32);
                    draws += 1;
                }
                scratch.pool.sort_unstable();
                scratch.pool.dedup();
            }
            // Deterministic fill if Zipf collisions starved the pool (only
            // reachable when k·oversample approaches the catalog size).
            if scratch.pool.len() < target {
                for i in 0..cfg.n_items {
                    if scratch.pool.binary_search(&i).is_err() {
                        scratch.pool.push(i);
                        if scratch.pool.len() >= target {
                            break;
                        }
                    }
                }
                scratch.pool.sort_unstable();
            }
            // … scored with importance-corrected logits. Subtracting the
            // log inclusion probability ln π_i, π_i = 1 − (1 − q_i)^m over
            // the m proposal draws, approximately cancels the popularity
            // term when the pool is sparse (π_i ≈ m·q_i) and vanishes when
            // the pool saturates the catalog (π_i → 1), where the exact
            // utility must be restored.
            let m = draws as f64;
            let mut item_vec = std::mem::take(&mut scratch.item_vec);
            for &i in &scratch.pool {
                let hi = self.item_vec(i, &mut item_vec);
                let dot: f32 = user_vec.iter().zip(hi).map(|(a, b)| a * b).sum();
                let q = self.proposal_q[i as usize];
                // ln π_i via ln1p/exp_m1 to stay accurate for tiny q·m.
                let log_pi = (-((m * (-q).ln_1p()).exp_m1())).max(1e-300).ln();
                let util = cfg.latent_weight * dot as f64
                    + cfg.popularity_weight * self.pop_logit[i as usize]
                    - log_pi
                    + pair_gumbel(cfg.seed, u, i);
                scratch.utilities.push((util, i));
            }
            scratch.item_vec = item_vec;
        } else {
            // Exact regime: full-catalog utilities.
            let mut item_vec = std::mem::take(&mut scratch.item_vec);
            for i in 0..cfg.n_items {
                let hi = self.item_vec(i, &mut item_vec);
                let dot: f32 = user_vec.iter().zip(hi).map(|(a, b)| a * b).sum();
                let util = cfg.latent_weight * dot as f64
                    + cfg.popularity_weight * self.pop_logit[i as usize]
                    + pair_gumbel(cfg.seed, u, i);
                scratch.utilities.push((util, i));
            }
            scratch.item_vec = item_vec;
        }
        scratch.user_vec = user_vec;

        let k = k.min(scratch.utilities.len());
        // Partial selection of the k largest utilities (Gumbel-top-k).
        scratch.utilities.select_nth_unstable_by(k - 1, |a, b| {
            b.0.partial_cmp(&a.0).expect("finite utilities")
        });
        scratch.row.clear();
        scratch
            .row
            .extend(scratch.utilities[..k].iter().map(|&(_, i)| i));
        scratch.row.sort_unstable();
    }
}

/// A constant-overhead, user-at-a-time stream of interaction rows — the
/// chunked iterator behind [`generate_streamed`]. Rows come out in
/// ascending user order, each sorted ascending, ready for
/// [`crate::interactions::RowStreamBuilder`].
pub struct RowStream {
    model: PlantedModel,
    scratch: EmitScratch,
    next_user: u32,
}

impl RowStream {
    /// Opens a stream over the configured user range.
    pub fn new(config: &SyntheticConfig) -> Result<Self> {
        let model = PlantedModel::build(config)?;
        let scratch = model.scratch();
        Ok(Self {
            model,
            scratch,
            next_user: 0,
        })
    }

    /// Emits the next user's row, or `None` after the last user. The slice
    /// borrows reusable scratch — copy it out before the next call.
    pub fn next_row(&mut self) -> Option<(u32, &[u32])> {
        if self.next_user >= self.model.cfg.n_users {
            return None;
        }
        let u = self.next_user;
        self.next_user += 1;
        self.model.emit_row(u, &mut self.scratch);
        Some((u, &self.scratch.row))
    }

    /// The resolved emission regime of this stream.
    pub fn emission(&self) -> EmissionMode {
        self.model.cfg.resolved_emission()
    }
}

/// Streams the full dataset straight into CSR form without materialising
/// latent tables (beyond the small-catalog exact-regime item cache):
/// memory is the output CSR plus O(n_items) popularity metadata.
/// Bit-identical to [`generate`]'s interactions for the same config.
pub fn generate_streamed(config: &SyntheticConfig) -> Result<Interactions> {
    let mut stream = RowStream::new(config)?;
    let mut builder = RowStreamBuilder::new(config.n_users, config.n_items);
    builder.reserve(config.target_interactions);
    while let Some((u, row)) = stream.next_row() {
        builder.push_row(u, row)?;
    }
    builder.finish()
}

/// Generates a dataset from `config`. Deterministic given the config.
///
/// This is the in-RAM analysis path: it materialises the planted factor
/// tables for tests and diagnostics. The interactions themselves come from
/// the same [`RowStream`] as [`generate_streamed`], so the two agree
/// bit-exactly; use the streamed form when the tables would not fit.
pub fn generate(config: &SyntheticConfig) -> Result<SyntheticDataset> {
    let interactions = generate_streamed(config)?;
    let d = config.latent_dim;
    let scale = 1.0 / (d as f64).sqrt();
    let seed = config.seed;
    let occupations = derive_occupations(config);

    let rho = config.occupation_mix;
    let (w_ind, w_occ) = ((1.0 - rho).sqrt() as f32, rho.sqrt() as f32);
    let mut occ_factors = vec![0f32; config.n_occupations as usize * d];
    for o in 0..config.n_occupations as usize {
        for k in 0..d {
            occ_factors[o * d + k] = latent_component(seed, SALT_OCC_VEC, o as u64, k, scale);
        }
    }
    let mut user_factors = vec![0f32; config.n_users as usize * d];
    for u in 0..config.n_users as usize {
        let o = occupations.of(u as u32) as usize;
        for k in 0..d {
            let ind = latent_component(seed, SALT_USER_VEC, u as u64, k, scale);
            user_factors[u * d + k] = w_ind * ind + w_occ * occ_factors[o * d + k];
        }
    }
    let mut item_factors = vec![0f32; config.n_items as usize * d];
    for i in 0..config.n_items as usize {
        for k in 0..d {
            item_factors[i * d + k] = latent_component(seed, SALT_ITEM_VEC, i as u64, k, scale);
        }
    }

    Ok(SyntheticDataset {
        interactions,
        occupations,
        user_factors,
        item_factors,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_users: 60,
            n_items: 120,
            target_interactions: 2_400,
            seed: 7,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn respects_id_space_and_rough_size() {
        let ds = generate(&small_config()).unwrap();
        let x = &ds.interactions;
        assert_eq!(x.n_users(), 60);
        assert_eq!(x.n_items(), 120);
        // Log-normal draws wobble; allow ±40%.
        let target = 2_400f64;
        assert!(
            (x.len() as f64) > target * 0.6 && (x.len() as f64) < target * 1.4,
            "generated {} interactions for target {target}",
            x.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.user_factors, b.user_factors);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config()).unwrap();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = generate(&cfg).unwrap();
        assert_ne!(a.interactions, b.interactions);
    }

    #[test]
    fn streamed_equals_in_ram() {
        let cfg = small_config();
        let a = generate(&cfg).unwrap().interactions;
        let b = generate_streamed(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_user_meets_min_activity() {
        let ds = generate(&small_config()).unwrap();
        for u in 0..60 {
            assert!(ds.interactions.degree(u) >= 5, "user {u} too inactive");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let ds = generate(&small_config()).unwrap();
        let pop = crate::popularity::Popularity::from_interactions(&ds.interactions);
        // Zipf base popularity should give a clearly non-uniform profile.
        assert!(pop.gini() > 0.2, "gini = {}", pop.gini());
    }

    #[test]
    fn latent_signal_is_planted() {
        // Interacted pairs should have higher ground-truth affinity than
        // random pairs on average.
        let ds = generate(&small_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut pos_aff = 0.0f64;
        let mut n_pos = 0usize;
        for (u, i) in ds.interactions.iter_pairs() {
            pos_aff += ds.true_affinity(u, i) as f64;
            n_pos += 1;
        }
        let mut rand_aff = 0.0f64;
        let n_rand = 4_000;
        for _ in 0..n_rand {
            let u = rng.random_range(0..60u32);
            let i = rng.random_range(0..120u32);
            rand_aff += ds.true_affinity(u, i) as f64;
        }
        let pos_mean = pos_aff / n_pos as f64;
        let rand_mean = rand_aff / n_rand as f64;
        assert!(
            pos_mean > rand_mean + 0.05,
            "positives mean {pos_mean} not above random mean {rand_mean}"
        );
    }

    #[test]
    fn pooled_mode_plants_the_same_structure() {
        let cfg = SyntheticConfig {
            emission: EmissionMode::Pooled { oversample: 4 },
            ..small_config()
        };
        let ds = generate(&cfg).unwrap();
        assert_eq!(ds.interactions.n_users(), 60);
        for u in 0..60 {
            assert!(ds.interactions.degree(u) >= 5, "user {u} too inactive");
        }
        // Popularity skew survives the proposal-pool regime.
        let pop = crate::popularity::Popularity::from_interactions(&ds.interactions);
        assert!(pop.gini() > 0.2, "gini = {}", pop.gini());
        // Streamed ≡ in-RAM holds in the pooled regime too.
        assert_eq!(ds.interactions, generate_streamed(&cfg).unwrap());
        // And the pooled rows differ from exact rows (different regime).
        let exact = generate(&small_config()).unwrap();
        assert_ne!(ds.interactions, exact.interactions);
    }

    #[test]
    fn auto_mode_resolves_by_catalog_size() {
        let small = small_config();
        assert_eq!(small.resolved_emission(), EmissionMode::Exact);
        let big = SyntheticConfig {
            n_items: 100_000,
            ..small_config()
        };
        assert!(matches!(
            big.resolved_emission(),
            EmissionMode::Pooled {
                oversample: AUTO_OVERSAMPLE
            }
        ));
    }

    #[test]
    fn row_stream_is_in_order_and_sorted() {
        let mut stream = RowStream::new(&small_config()).unwrap();
        let mut expected_user = 0u32;
        while let Some((u, row)) = stream.next_row() {
            assert_eq!(u, expected_user);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row not sorted");
            assert!(!row.is_empty());
            expected_user += 1;
        }
        assert_eq!(expected_user, 60);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = small_config();
        c.n_users = 0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.latent_dim = 0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.target_interactions = 0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.occupation_mix = 1.0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.target_interactions = usize::MAX;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.emission = EmissionMode::Pooled { oversample: 0 };
        assert!(generate(&c).is_err());
    }
}
