//! Synthetic implicit-feedback dataset generator.
//!
//! The environment cannot download MovieLens or Yahoo!-R3, so the paper's
//! datasets are replaced by statistically matched synthetic stand-ins (see
//! DESIGN.md §3). The generator plants structure that the paper's analysis
//! depends on:
//!
//! 1. **Latent preference structure.** Users and items get low-rank latent
//!    vectors; interaction propensity grows with their dot product. The
//!    held-out 20% therefore contains items the user genuinely "likes" —
//!    real *false negatives* during training, which is precisely the
//!    population whose scores drift upward in Fig. 1.
//! 2. **Popularity skew.** Item base propensity follows a Zipf law, giving
//!    the long-tailed popularity profile that PNS (`r^0.75`) and the BNS
//!    prior (`popₗ/N`) key on.
//! 3. **Heterogeneous user activity.** Per-user interaction counts follow a
//!    log-normal law calibrated so the total matches the target count.
//! 4. **Occupation groups.** Users belong to occupation groups that shift
//!    their latent vectors, so occupation statistics carry signal — the
//!    property the BNS-4 prior of Table III exploits.
//!
//! Sampling per user uses the Gumbel-top-k trick: adding iid Gumbel noise to
//! utility logits and taking the top-k is equivalent to sampling k items
//! without replacement from the softmax distribution.

use crate::interactions::{Interactions, InteractionsBuilder};
use crate::occupation::Occupations;
use crate::{DataError, Result};
use bns_stats::dist::{Continuous, Normal};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Target total number of interactions (approximate; user activities are
    /// integer draws).
    pub target_interactions: usize,
    /// Latent dimensionality of the planted preference model.
    pub latent_dim: usize,
    /// Zipf exponent of item base popularity (≈1 for MovieLens-like skew).
    pub popularity_exponent: f64,
    /// Weight of the popularity logit in the interaction utility.
    pub popularity_weight: f64,
    /// Weight of the latent dot product in the interaction utility
    /// (higher → stronger collaborative signal, easier false negatives).
    pub latent_weight: f64,
    /// Log-normal σ of per-user activity.
    pub activity_sigma: f64,
    /// Minimum interactions per user (MovieLens guarantees 20).
    pub min_activity: u32,
    /// Number of occupation groups (MovieLens-100K has 21).
    pub n_occupations: u32,
    /// Share ρ ∈ [0, 1) of a user's latent vector contributed by the
    /// occupation group vector.
    pub occupation_mix: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_users: 200,
            n_items: 400,
            target_interactions: 8_000,
            latent_dim: 8,
            popularity_exponent: 1.0,
            popularity_weight: 1.0,
            latent_weight: 4.0,
            activity_sigma: 0.6,
            min_activity: 5,
            n_occupations: 8,
            occupation_mix: 0.3,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    fn validate(&self) -> Result<()> {
        if self.n_users == 0 || self.n_items == 0 {
            return Err(DataError::Invalid(
                "need at least one user and one item".into(),
            ));
        }
        if self.latent_dim == 0 {
            return Err(DataError::Invalid("latent_dim must be > 0".into()));
        }
        if self.target_interactions == 0 {
            return Err(DataError::Invalid("target_interactions must be > 0".into()));
        }
        if !(0.0..1.0).contains(&self.occupation_mix) {
            return Err(DataError::Invalid(
                "occupation_mix must be in [0, 1)".into(),
            ));
        }
        if self.n_occupations == 0 {
            return Err(DataError::Invalid("n_occupations must be > 0".into()));
        }
        let max_possible = self.n_users as usize * self.n_items as usize;
        if self.target_interactions > max_possible {
            return Err(DataError::Invalid(format!(
                "target_interactions {} exceeds the {} possible pairs",
                self.target_interactions, max_possible
            )));
        }
        Ok(())
    }
}

/// A generated dataset: interactions, occupation labels, and the planted
/// ground-truth latent model (kept for analysis and tests).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// All generated interactions (pre-split).
    pub interactions: Interactions,
    /// Occupation label per user.
    pub occupations: Occupations,
    /// Planted user latent vectors, row-major `n_users × latent_dim`.
    pub user_factors: Vec<f32>,
    /// Planted item latent vectors, row-major `n_items × latent_dim`.
    pub item_factors: Vec<f32>,
    /// The config used for generation.
    pub config: SyntheticConfig,
}

impl SyntheticDataset {
    /// Ground-truth affinity of `(u, i)` under the planted model
    /// (latent dot product only; no popularity term).
    pub fn true_affinity(&self, u: u32, i: u32) -> f32 {
        let d = self.config.latent_dim;
        let wu = &self.user_factors[u as usize * d..(u as usize + 1) * d];
        let hi = &self.item_factors[i as usize * d..(i as usize + 1) * d];
        wu.iter().zip(hi).map(|(a, b)| a * b).sum()
    }
}

/// Generates a dataset from `config`. Deterministic given the config.
pub fn generate(config: &SyntheticConfig) -> Result<SyntheticDataset> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = config.latent_dim;
    let n_users = config.n_users as usize;
    let n_items = config.n_items as usize;

    // Latent scale 1/√d keeps dot products O(1) regardless of d.
    let latent_prior = Normal::new(0.0, 1.0 / (d as f64).sqrt()).expect("valid sigma");

    // Occupation group vectors.
    let occupations = Occupations::random(config.n_users, config.n_occupations, &mut rng);
    let mut occ_factors = vec![0f32; config.n_occupations as usize * d];
    for v in occ_factors.iter_mut() {
        *v = latent_prior.sample(&mut rng) as f32;
    }

    // User vectors: mix of an individual component and the occupation vector.
    let rho = config.occupation_mix;
    let (w_ind, w_occ) = ((1.0 - rho).sqrt() as f32, rho.sqrt() as f32);
    let mut user_factors = vec![0f32; n_users * d];
    for u in 0..n_users {
        let o = occupations.of(u as u32) as usize;
        for k in 0..d {
            let z = latent_prior.sample(&mut rng) as f32;
            user_factors[u * d + k] = w_ind * z + w_occ * occ_factors[o * d + k];
        }
    }

    // Item vectors.
    let mut item_factors = vec![0f32; n_items * d];
    for v in item_factors.iter_mut() {
        *v = latent_prior.sample(&mut rng) as f32;
    }

    // Zipf popularity logits over a random item permutation, so popularity
    // is independent of the latent geometry.
    let mut ranks: Vec<u32> = (0..config.n_items).collect();
    ranks.shuffle(&mut rng);
    let mut pop_logit = vec![0f64; n_items];
    for (rank_pos, &item) in ranks.iter().enumerate() {
        pop_logit[item as usize] = -config.popularity_exponent * ((rank_pos + 1) as f64).ln();
    }

    // Per-user activity from a log-normal calibrated to the target total:
    // if n_u = exp(N(μ, σ)) then E[n_u] = exp(μ + σ²/2).
    let sigma = config.activity_sigma;
    let mu = (config.target_interactions as f64 / config.n_users as f64).ln() - sigma * sigma / 2.0;
    let activity_prior = Normal::new(mu, sigma.max(1e-9)).expect("valid sigma");
    let max_per_user = (n_items as u32).saturating_sub(1).max(1);
    let activities: Vec<u32> = (0..n_users)
        .map(|_| {
            let raw = activity_prior.sample(&mut rng).exp().round();
            (raw as u32).clamp(config.min_activity.min(max_per_user), max_per_user)
        })
        .collect();

    // Utility per (u, i) = β_lat · ⟨w_u, h_i⟩ + β_pop · pop_logit + Gumbel.
    let mut builder = InteractionsBuilder::with_capacity(
        config.n_users,
        config.n_items,
        activities.iter().map(|&a| a as usize).sum(),
    );
    let mut utilities: Vec<(f64, u32)> = Vec::with_capacity(n_items);
    for u in 0..n_users {
        utilities.clear();
        let wu = &user_factors[u * d..(u + 1) * d];
        for i in 0..n_items {
            let hi = &item_factors[i * d..(i + 1) * d];
            let dot: f32 = wu.iter().zip(hi).map(|(a, b)| a * b).sum();
            let gumbel = {
                let v: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                -(-v.ln()).ln()
            };
            let util = config.latent_weight * dot as f64
                + config.popularity_weight * pop_logit[i]
                + gumbel;
            utilities.push((util, i as u32));
        }
        let k = activities[u] as usize;
        // Partial selection of the k largest utilities (Gumbel-top-k).
        utilities.select_nth_unstable_by(k - 1, |a, b| {
            b.0.partial_cmp(&a.0).expect("finite utilities")
        });
        for &(_, item) in &utilities[..k] {
            builder.push(u as u32, item)?;
        }
    }

    Ok(SyntheticDataset {
        interactions: builder.build()?,
        occupations,
        user_factors,
        item_factors,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_users: 60,
            n_items: 120,
            target_interactions: 2_400,
            seed: 7,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn respects_id_space_and_rough_size() {
        let ds = generate(&small_config()).unwrap();
        let x = &ds.interactions;
        assert_eq!(x.n_users(), 60);
        assert_eq!(x.n_items(), 120);
        // Log-normal draws wobble; allow ±40%.
        let target = 2_400f64;
        assert!(
            (x.len() as f64) > target * 0.6 && (x.len() as f64) < target * 1.4,
            "generated {} interactions for target {target}",
            x.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.user_factors, b.user_factors);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config()).unwrap();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = generate(&cfg).unwrap();
        assert_ne!(a.interactions, b.interactions);
    }

    #[test]
    fn every_user_meets_min_activity() {
        let ds = generate(&small_config()).unwrap();
        for u in 0..60 {
            assert!(ds.interactions.degree(u) >= 5, "user {u} too inactive");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let ds = generate(&small_config()).unwrap();
        let pop = crate::popularity::Popularity::from_interactions(&ds.interactions);
        // Zipf base popularity should give a clearly non-uniform profile.
        assert!(pop.gini() > 0.2, "gini = {}", pop.gini());
    }

    #[test]
    fn latent_signal_is_planted() {
        // Interacted pairs should have higher ground-truth affinity than
        // random pairs on average.
        let ds = generate(&small_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut pos_aff = 0.0f64;
        let mut n_pos = 0usize;
        for (u, i) in ds.interactions.iter_pairs() {
            pos_aff += ds.true_affinity(u, i) as f64;
            n_pos += 1;
        }
        let mut rand_aff = 0.0f64;
        let n_rand = 4_000;
        for _ in 0..n_rand {
            let u = rng.random_range(0..60u32);
            let i = rng.random_range(0..120u32);
            rand_aff += ds.true_affinity(u, i) as f64;
        }
        let pos_mean = pos_aff / n_pos as f64;
        let rand_mean = rand_aff / n_rand as f64;
        assert!(
            pos_mean > rand_mean + 0.05,
            "positives mean {pos_mean} not above random mean {rand_mean}"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = small_config();
        c.n_users = 0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.latent_dim = 0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.target_interactions = 0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.occupation_mix = 1.0;
        assert!(generate(&c).is_err());

        let mut c = small_config();
        c.target_interactions = usize::MAX;
        assert!(generate(&c).is_err());
    }
}
