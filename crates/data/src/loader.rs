//! Parsers for the real dataset file formats.
//!
//! Following the paper's protocol (§IV-A1), every rated item is converted to
//! an implicit interaction regardless of the rating value. Raw user/item ids
//! are re-indexed to contiguous `0..n` ranges.
//!
//! Supported formats:
//! * MovieLens-100K `u.data` — `user \t item \t rating \t timestamp`
//! * MovieLens-1M `ratings.dat` — `user::item::rating::timestamp`
//! * Yahoo!-R3 `ydata-*.txt` — `user \t item \t rating` (whitespace-separated)
//!
//! The experiment harness calls [`load_auto`] and falls back to the
//! synthetic presets when no file is present (the offline default).

use crate::interactions::{Interactions, InteractionsBuilder};
use crate::{DataError, Result};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// File formats accepted by [`load_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFormat {
    /// Tab-separated `user item rating [timestamp]` (MovieLens-100K, Yahoo!-R3).
    TabSeparated,
    /// `user::item::rating::timestamp` (MovieLens-1M).
    DoubleColon,
}

/// Parses raw `(user, item)` id pairs from a reader in the given format,
/// dropping the rating (implicit-feedback conversion).
pub fn parse_pairs<R: BufRead>(reader: R, format: FileFormat) -> Result<Vec<(u64, u64)>> {
    let mut pairs = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let pair = match format {
            FileFormat::TabSeparated => parse_whitespace_line(trimmed, line_no)?,
            FileFormat::DoubleColon => parse_double_colon_line(trimmed, line_no)?,
        };
        pairs.push(pair);
    }
    Ok(pairs)
}

fn parse_whitespace_line(line: &str, line_no: usize) -> Result<(u64, u64)> {
    let mut fields = line.split_whitespace();
    let user = field_as_id(fields.next(), line_no, "user")?;
    let item = field_as_id(fields.next(), line_no, "item")?;
    Ok((user, item))
}

fn parse_double_colon_line(line: &str, line_no: usize) -> Result<(u64, u64)> {
    let mut fields = line.split("::");
    let user = field_as_id(fields.next(), line_no, "user")?;
    let item = field_as_id(fields.next(), line_no, "item")?;
    Ok((user, item))
}

fn field_as_id(field: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let raw = field.ok_or_else(|| DataError::Parse {
        line,
        message: format!("missing {what} field"),
    })?;
    raw.trim().parse::<u64>().map_err(|_| DataError::Parse {
        line,
        message: format!("{what} field `{raw}` is not an unsigned integer"),
    })
}

/// Raw→dense id maps produced by [`reindex`].
pub type IdMaps = (HashMap<u64, u32>, HashMap<u64, u32>);

/// Re-indexes raw id pairs to contiguous `0..n_users` / `0..n_items` and
/// builds the [`Interactions`]. Returns the store plus the raw→dense maps.
pub fn reindex(pairs: &[(u64, u64)]) -> Result<(Interactions, IdMaps)> {
    if pairs.is_empty() {
        return Err(DataError::Invalid("no interactions parsed".into()));
    }
    let mut user_map: HashMap<u64, u32> = HashMap::new();
    let mut item_map: HashMap<u64, u32> = HashMap::new();
    let mut dense: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
    for &(u, i) in pairs {
        let next_u = user_map.len() as u32;
        let du = *user_map.entry(u).or_insert(next_u);
        let next_i = item_map.len() as u32;
        let di = *item_map.entry(i).or_insert(next_i);
        dense.push((du, di));
    }
    let n_users = user_map.len() as u32;
    let n_items = item_map.len() as u32;
    let mut builder = InteractionsBuilder::with_capacity(n_users, n_items, dense.len());
    for (u, i) in dense {
        builder.push(u, i)?;
    }
    Ok((builder.build()?, (user_map, item_map)))
}

/// Loads a dataset file, inferring the format from the extension/name:
/// `*.dat` → `::`-separated, anything else → whitespace-separated.
pub fn load_file(path: &Path) -> Result<Interactions> {
    let format = if path.extension().is_some_and(|e| e == "dat") {
        FileFormat::DoubleColon
    } else {
        FileFormat::TabSeparated
    };
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let pairs = parse_pairs(reader, format)?;
    let (interactions, _) = reindex(&pairs)?;
    Ok(interactions)
}

/// Tries `load_file(path)` when `path` exists, otherwise returns `None` so
/// callers can fall back to the synthetic presets.
pub fn load_auto(path: &Path) -> Option<Result<Interactions>> {
    if path.exists() {
        Some(load_file(path))
    } else {
        None
    }
}

/// Writes interactions in the MovieLens `u.data` tab-separated format
/// (`user \t item \t rating \t timestamp`, rating fixed to 1, timestamp 0).
///
/// This makes the synthetic stand-ins inspectable with standard tooling and
/// round-trippable through [`load_file`].
pub fn write_movielens(x: &Interactions, path: &Path) -> Result<()> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for (u, i) in x.iter_pairs() {
        writeln!(w, "{u}\t{i}\t1\t0")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_movielens_100k_format() {
        let data = "196\t242\t3\t881250949\n186\t302\t3\t891717742\n22\t377\t1\t878887116\n";
        let pairs = parse_pairs(Cursor::new(data), FileFormat::TabSeparated).unwrap();
        assert_eq!(pairs, vec![(196, 242), (186, 302), (22, 377)]);
    }

    #[test]
    fn parses_yahoo_format_with_blank_lines() {
        let data = "1 14 5\n\n# comment\n2 99 1\n";
        let pairs = parse_pairs(Cursor::new(data), FileFormat::TabSeparated).unwrap();
        assert_eq!(pairs, vec![(1, 14), (2, 99)]);
    }

    #[test]
    fn rejects_garbage() {
        let data = "1\tnotanumber\t3\t0\n";
        let err = parse_pairs(Cursor::new(data), FileFormat::TabSeparated).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_fields() {
        let data = "42\n";
        assert!(parse_pairs(Cursor::new(data), FileFormat::TabSeparated).is_err());
    }

    #[test]
    fn double_colon_line_parses() {
        assert_eq!(
            parse_double_colon_line("1::1193::5::978300760", 1).unwrap(),
            (1, 1193)
        );
        assert!(parse_double_colon_line("1::", 1).is_err());
    }

    #[test]
    fn reindex_densifies_ids() {
        let pairs = vec![(100, 7), (100, 9), (50, 7)];
        let (x, (users, items)) = reindex(&pairs).unwrap();
        assert_eq!(x.n_users(), 2);
        assert_eq!(x.n_items(), 2);
        assert_eq!(x.len(), 3);
        // First-seen order: user 100 → 0, user 50 → 1; item 7 → 0, item 9 → 1.
        assert_eq!(users[&100], 0);
        assert_eq!(users[&50], 1);
        assert_eq!(items[&7], 0);
        assert_eq!(items[&9], 1);
        assert!(x.contains(0, 0) && x.contains(0, 1) && x.contains(1, 0));
    }

    #[test]
    fn reindex_rejects_empty() {
        assert!(reindex(&[]).is_err());
    }

    #[test]
    fn load_file_round_trip_via_tempfile() {
        let dir = std::env::temp_dir();
        let path = dir.join("bns_loader_test_u.data");
        std::fs::write(&path, "1\t10\t4\t0\n1\t20\t5\t0\n2\t10\t3\t0\n").unwrap();
        let x = load_file(&path).unwrap();
        assert_eq!(x.n_users(), 2);
        assert_eq!(x.n_items(), 2);
        assert_eq!(x.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_auto_missing_file_is_none() {
        assert!(load_auto(Path::new("/definitely/not/here.data")).is_none());
    }

    #[test]
    fn write_then_load_round_trips() {
        let x = Interactions::from_pairs(3, 4, &[(0, 1), (0, 3), (2, 0)]).unwrap();
        let path = std::env::temp_dir().join("bns_writer_test_u.data");
        write_movielens(&x, &path).unwrap();
        let y = load_file(&path).unwrap();
        // Ids are re-densified on load (user 1 had no interactions), so
        // compare interaction structure, not raw equality.
        assert_eq!(y.len(), 3);
        assert_eq!(y.n_users(), 2);
        assert_eq!(y.n_items(), 3);
        std::fs::remove_file(&path).ok();
    }
}
