//! The paper's three datasets as generator presets.
//!
//! Table I of the paper:
//!
//! | dataset        | users | items | train | test |
//! |----------------|-------|-------|-------|------|
//! | MovieLens-100K |   943 | 1,682 |   80k |  20k |
//! | MovieLens-1M   | 6,040 | 3,952 |  800k | 200k |
//! | Yahoo!-R3      | 5,400 | 1,000 |  146k |  36k |
//!
//! Each preset produces a [`SyntheticConfig`] matching those counts, with
//! the MovieLens presets keeping the 20-interaction minimum per user that
//! GroupLens enforces. [`Scale`] shrinks user/item counts linearly and the
//! interaction count quadratically, preserving matrix density so that
//! sampler dynamics (candidate-set hit rates, popularity skew) carry over.

use crate::synthetic::SyntheticConfig;
use serde::{Deserialize, Serialize};

/// Size multiplier applied to a preset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scale {
    /// Full paper-scale counts.
    Paper,
    /// Shrink users/items by this fraction (interactions by its square).
    /// `Fraction(1.0)` equals `Paper`.
    Fraction(f64),
}

impl Scale {
    /// The linear multiplier.
    pub fn factor(&self) -> f64 {
        match self {
            Scale::Paper => 1.0,
            Scale::Fraction(f) => *f,
        }
    }

    /// A small default used by tests and quick harness runs.
    pub fn small() -> Self {
        Scale::Fraction(0.2)
    }
}

/// The paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// MovieLens-100K: 943 × 1,682, 100k interactions.
    Ml100k,
    /// MovieLens-1M: 6,040 × 3,952, 1M interactions.
    Ml1m,
    /// Yahoo!-R3: 5,400 × 1,000, 183k interactions (146k/36k split).
    YahooR3,
}

impl DatasetPreset {
    /// All presets in the paper's order.
    pub const ALL: [DatasetPreset; 3] = [
        DatasetPreset::Ml100k,
        DatasetPreset::Ml1m,
        DatasetPreset::YahooR3,
    ];

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::Ml100k => "MovieLens-100K",
            DatasetPreset::Ml1m => "MovieLens-1M",
            DatasetPreset::YahooR3 => "Yahoo!-R3",
        }
    }

    /// Paper-scale `(users, items, interactions)`.
    pub fn paper_counts(&self) -> (u32, u32, usize) {
        match self {
            DatasetPreset::Ml100k => (943, 1_682, 100_000),
            DatasetPreset::Ml1m => (6_040, 3_952, 1_000_209),
            DatasetPreset::YahooR3 => (5_400, 1_000, 182_954),
        }
    }

    /// Builds the generator config at the requested scale.
    pub fn config(&self, scale: Scale, seed: u64) -> SyntheticConfig {
        let f = scale.factor();
        let (users, items, inter) = self.paper_counts();
        let n_users = ((users as f64 * f).round() as u32).max(8);
        let n_items = ((items as f64 * f).round() as u32).max(16);
        let target = ((inter as f64 * f * f).round() as usize)
            .max(n_users as usize * 4)
            .min(n_users as usize * n_items as usize / 2);
        let (min_activity, activity_sigma) = match self {
            // GroupLens enforces ≥20 ratings/user; keep proportionally.
            DatasetPreset::Ml100k | DatasetPreset::Ml1m => {
                (((20.0 * f).round() as u32).max(3), 0.9)
            }
            // Yahoo!-R3's survey design gives flatter activity.
            DatasetPreset::YahooR3 => (((10.0 * f).round() as u32).max(3), 0.5),
        };
        SyntheticConfig {
            n_users,
            n_items,
            target_interactions: target,
            latent_dim: 8,
            popularity_exponent: match self {
                // Yahoo!-R3's music items have flatter popularity.
                DatasetPreset::YahooR3 => 0.7,
                _ => 1.0,
            },
            popularity_weight: 1.0,
            latent_weight: 4.0,
            activity_sigma,
            min_activity,
            n_occupations: 21,
            occupation_mix: 0.3,
            seed,
            emission: crate::synthetic::EmissionMode::Auto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::generate;

    #[test]
    fn paper_counts_match_table_one() {
        assert_eq!(DatasetPreset::Ml100k.paper_counts(), (943, 1_682, 100_000));
        assert_eq!(
            DatasetPreset::Ml1m.paper_counts(),
            (6_040, 3_952, 1_000_209)
        );
        assert_eq!(
            DatasetPreset::YahooR3.paper_counts(),
            (5_400, 1_000, 182_954)
        );
    }

    #[test]
    fn scale_factor() {
        assert_eq!(Scale::Paper.factor(), 1.0);
        assert_eq!(Scale::Fraction(0.25).factor(), 0.25);
    }

    #[test]
    fn scaled_config_preserves_density_roughly() {
        let full = DatasetPreset::Ml100k.config(Scale::Paper, 1);
        let small = DatasetPreset::Ml100k.config(Scale::Fraction(0.25), 1);
        let density = |c: &crate::synthetic::SyntheticConfig| {
            c.target_interactions as f64 / (c.n_users as f64 * c.n_items as f64)
        };
        let (df, ds) = (density(&full), density(&small));
        assert!(
            (df - ds).abs() / df < 0.25,
            "density drifted: full {df}, small {ds}"
        );
    }

    #[test]
    fn small_scale_generates_quickly_and_validly() {
        for preset in DatasetPreset::ALL {
            let cfg = preset.config(Scale::Fraction(0.1), 3);
            let ds = generate(&cfg).unwrap();
            assert_eq!(ds.interactions.n_users(), cfg.n_users);
            assert_eq!(ds.interactions.n_items(), cfg.n_items);
            assert!(!ds.interactions.is_empty(), "{} empty", preset.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DatasetPreset::Ml100k.name(), "MovieLens-100K");
        assert_eq!(DatasetPreset::Ml1m.name(), "MovieLens-1M");
        assert_eq!(DatasetPreset::YahooR3.name(), "Yahoo!-R3");
    }
}
