#![deny(missing_docs)]

//! # bns-data — dataset substrate for the BNS reproduction
//!
//! The paper evaluates on MovieLens-100K, MovieLens-1M and Yahoo!-R3, all
//! converted to implicit feedback and split 80/20 (§IV-A). This crate
//! provides everything below the model layer:
//!
//! * [`interactions`] — a compact CSR store of user→item interactions with
//!   `O(log deg)` membership tests, the PU-dataset of the paper's §I.
//! * [`loader`] — parsers for the real on-disk formats (`u.data`,
//!   `ratings.dat`, Yahoo!-R3 triples), used when the raw files are present.
//! * [`synthetic`] — a latent-factor generator producing statistically
//!   matched stand-ins for the three datasets (see DESIGN.md §3 for the
//!   substitution argument).
//! * [`split`] — the 80/20 random split with a guarantee that every user
//!   keeps at least one training item.
//! * [`popularity`] — item interaction counts, the PNS `r^0.75` weights and
//!   the BNS prior `P_fn(l) = popₗ / N` (Eq. 17).
//! * [`occupation`] — synthetic occupation side-information for the BNS-4
//!   variant of Table III.
//! * [`presets`] — the three paper datasets at paper scale or scaled down.
//! * [`stats`] — the Table I statistics.
//! * [`serialize`] — binary round-tripping of interaction data, with a
//!   zero-copy mmap-backed load path for large artifacts.
//! * [`storage`] — the byte-buffer substrate behind the zero-copy path:
//!   an owned/mapped [`storage::Storage`] enum plus aligned typed views.

pub mod dataset;
pub mod filter;
pub mod interactions;
pub mod loader;
pub mod occupation;
pub mod popularity;
pub mod presets;
pub mod serialize;
pub mod split;
pub mod stats;
pub mod storage;
pub mod synthetic;

pub use dataset::Dataset;
pub use filter::{k_core, KCoreResult};
pub use interactions::{Interactions, InteractionsBuilder};
pub use occupation::Occupations;
pub use popularity::Popularity;
pub use presets::{DatasetPreset, Scale};
pub use split::{split_leave_one_out, split_random, SplitConfig};
pub use stats::DatasetStats;
pub use storage::{F32Buf, Storage, U32Buf};
pub use synthetic::{SyntheticConfig, SyntheticDataset};

/// Errors produced by the dataset substrate.
#[derive(Debug)]
pub enum DataError {
    /// Parse failure in a dataset file.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// I/O failure while reading a dataset file.
    Io(std::io::Error),
    /// A structural invariant was violated (e.g. empty dataset, id overflow).
    Invalid(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Invalid(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;
