//! Dataset filtering: iterative k-core.
//!
//! Standard implicit-feedback preprocessing (used by LightGCN, SRNS and
//! most of the paper's baselines' original evaluations): repeatedly drop
//! users and items with fewer than `k` interactions until a fixed point,
//! so every remaining row/column supports at least `k` pairwise
//! comparisons. Ids are re-packed to dense ranges.

use crate::interactions::{Interactions, InteractionsBuilder};
use crate::{DataError, Result};

/// Result of a k-core filtering pass.
#[derive(Debug, Clone)]
pub struct KCoreResult {
    /// The filtered, re-indexed interactions.
    pub interactions: Interactions,
    /// Old→new user id map (`None` for dropped users), indexable by old id.
    pub user_map: Vec<Option<u32>>,
    /// Old→new item id map.
    pub item_map: Vec<Option<u32>>,
    /// Number of pruning rounds until the fixed point.
    pub rounds: usize,
}

/// Applies iterative k-core filtering. Errors if nothing survives.
pub fn k_core(x: &Interactions, k: u32) -> Result<KCoreResult> {
    if k == 0 {
        return Err(DataError::Invalid("k-core requires k >= 1".into()));
    }
    let n_users = x.n_users() as usize;
    let n_items = x.n_items() as usize;
    let mut user_alive = vec![true; n_users];
    let mut item_alive = vec![true; n_items];
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        let mut user_deg = vec![0u32; n_users];
        let mut item_deg = vec![0u32; n_items];
        for (u, i) in x.iter_pairs() {
            if user_alive[u as usize] && item_alive[i as usize] {
                user_deg[u as usize] += 1;
                item_deg[i as usize] += 1;
            }
        }
        let mut changed = false;
        for u in 0..n_users {
            if user_alive[u] && user_deg[u] < k {
                user_alive[u] = false;
                changed = true;
            }
        }
        for i in 0..n_items {
            if item_alive[i] && item_deg[i] < k {
                item_alive[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if rounds > n_users + n_items {
            // Each round kills at least one node; this cannot trigger, but
            // guard against accounting bugs rather than looping forever.
            return Err(DataError::Invalid("k-core failed to converge".into()));
        }
    }

    // Compact id maps.
    let mut user_map = vec![None; n_users];
    let mut next_u = 0u32;
    for (u, alive) in user_alive.iter().enumerate() {
        if *alive {
            user_map[u] = Some(next_u);
            next_u += 1;
        }
    }
    let mut item_map = vec![None; n_items];
    let mut next_i = 0u32;
    for (i, alive) in item_alive.iter().enumerate() {
        if *alive {
            item_map[i] = Some(next_i);
            next_i += 1;
        }
    }
    if next_u == 0 || next_i == 0 {
        return Err(DataError::Invalid(format!(
            "{k}-core filtering removed the entire dataset"
        )));
    }
    let mut builder = InteractionsBuilder::new(next_u, next_i);
    for (u, i) in x.iter_pairs() {
        if let (Some(nu), Some(ni)) = (user_map[u as usize], item_map[i as usize]) {
            builder.push(nu, ni)?;
        }
    }
    Ok(KCoreResult {
        interactions: builder.build()?,
        user_map,
        item_map,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_k_zero() {
        let x = Interactions::from_pairs(1, 1, &[(0, 0)]).unwrap();
        assert!(k_core(&x, 0).is_err());
    }

    #[test]
    fn one_core_keeps_everything_connected() {
        let x = Interactions::from_pairs(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let r = k_core(&x, 1).unwrap();
        assert_eq!(r.interactions.len(), 3);
        assert_eq!(r.interactions.n_users(), 3);
    }

    #[test]
    fn two_core_drops_degree_one_nodes() {
        // Users 0, 1 share items 0, 1 (degree 2 everywhere); user 2 has a
        // single interaction with its own item 2.
        let x = Interactions::from_pairs(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap();
        let r = k_core(&x, 2).unwrap();
        assert_eq!(r.interactions.n_users(), 2);
        assert_eq!(r.interactions.n_items(), 2);
        assert_eq!(r.interactions.len(), 4);
        assert_eq!(r.user_map[2], None);
        assert_eq!(r.item_map[2], None);
    }

    #[test]
    fn cascade_removal_iterates() {
        // Chain: user 0 holds items {0,1}; user 1 holds {1,2}; user 2 holds
        // {2}. 2-core: user 2 dies → item 2 drops to degree 1 → dies →
        // user 1 drops to degree 1 → dies → item 1 drops to degree 1 →
        // dies → user 0 drops to degree 1 → everything dies.
        let x = Interactions::from_pairs(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]).unwrap();
        let err = k_core(&x, 2).unwrap_err();
        assert!(err.to_string().contains("removed the entire dataset"));
    }

    #[test]
    fn id_maps_are_consistent() {
        let x = Interactions::from_pairs(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 3), (3, 3)])
            .unwrap();
        let r = k_core(&x, 2).unwrap();
        // Survivors: users 0, 1 and items 0, 1 (item 3 has degree 2 but its
        // users 2, 3 have degree 1 and die, killing it too).
        assert_eq!(r.interactions.n_users(), 2);
        assert_eq!(r.interactions.n_items(), 2);
        for (old_u, new_u) in r.user_map.iter().enumerate() {
            if let Some(nu) = new_u {
                // Every mapped user's row survives with same degree ≥ 2.
                assert!(r.interactions.degree(*nu) >= 2, "user {old_u}");
            }
        }
        assert!(r.rounds >= 2);
    }
}
